#include "btree/btree.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "storage/record_manager.h"  // for PageType tags

namespace xdb {

namespace {

// Shared page layout:
//   [0]  type        u8   (kBtreeLeafPage / kBtreeInternalPage)
//   [1]  flags       u8
//   [2]  nslots      u16
//   [4]  cell_start  u16
//   [6]  pad         u16
//   [8]  next_leaf (leaf) / leftmost_child (internal)  u32
//   [12] slot array: {offset u16, len u16} per slot, in key order
// Leaf cell:     [klen varint][key][vlen varint][value]
// Internal cell: [klen varint][key][vlen varint][value][child u32]
constexpr uint32_t kHeader = 12;
constexpr uint32_t kSlotSize = 4;

uint16_t GetNumSlots(const char* p) { return DecodeFixed16(p + 2); }
void SetNumSlots(char* p, uint16_t n) { EncodeFixed16(p + 2, n); }
uint16_t GetCellStart(const char* p) { return DecodeFixed16(p + 4); }
void SetCellStart(char* p, uint16_t v) { EncodeFixed16(p + 4, v); }
PageId GetLink(const char* p) { return DecodeFixed32(p + 8); }
void SetLink(char* p, PageId id) { EncodeFixed32(p + 8, id); }
bool IsLeaf(const char* p) {
  return static_cast<uint8_t>(p[0]) == kBtreeLeafPage;
}

void ReadSlot(const char* p, uint16_t slot, uint16_t* off, uint16_t* len) {
  const char* s = p + kHeader + slot * kSlotSize;
  *off = DecodeFixed16(s);
  *len = DecodeFixed16(s + 2);
}
void WriteSlot(char* p, uint16_t slot, uint16_t off, uint16_t len) {
  char* s = p + kHeader + slot * kSlotSize;
  EncodeFixed16(s, off);
  EncodeFixed16(s + 2, len);
}

struct CellView {
  Slice key;
  Slice value;
  PageId child = kInvalidPageId;
};

bool ParseCell(const char* p, uint16_t off, uint16_t len, bool leaf,
               CellView* out) {
  const char* q = p + off;
  const char* limit = q + len;
  uint64_t klen;
  size_t n = GetVarint64(q, limit, &klen);
  if (n == 0 || q + n + klen > limit) return false;
  out->key = Slice(q + n, static_cast<size_t>(klen));
  q += n + klen;
  uint64_t vlen;
  n = GetVarint64(q, limit, &vlen);
  if (n == 0 || q + n + vlen > limit) return false;
  out->value = Slice(q + n, static_cast<size_t>(vlen));
  q += n + vlen;
  if (!leaf) {
    if (q + 4 > limit) return false;
    out->child = DecodeFixed32(q);
  }
  return true;
}

void AppendCell(std::string* dst, Slice key, Slice value, bool leaf,
                PageId child) {
  PutLengthPrefixed(dst, key);
  PutLengthPrefixed(dst, value);
  if (!leaf) PutFixed32(dst, child);
}

int CompareComposite(Slice k1, Slice v1, Slice k2, Slice v2) {
  int c = k1.Compare(k2);
  if (c != 0) return c;
  return v1.Compare(v2);
}

uint32_t ContiguousFree(const char* p) {
  uint16_t nslots = GetNumSlots(p);
  uint16_t cell_start = GetCellStart(p);
  uint32_t used_front = kHeader + nslots * kSlotSize;
  return cell_start > used_front ? cell_start - used_front : 0;
}

uint32_t TotalFree(const char* p, uint32_t page_size) {
  uint16_t nslots = GetNumSlots(p);
  uint32_t live = 0;
  for (uint16_t i = 0; i < nslots; i++) {
    uint16_t off, len;
    ReadSlot(p, i, &off, &len);
    live += len;
  }
  return page_size - kHeader - nslots * kSlotSize - live;
}

void CompactPage(char* p, uint32_t page_size) {
  uint16_t nslots = GetNumSlots(p);
  std::string copies;
  std::vector<uint16_t> lens(nslots);
  for (uint16_t i = 0; i < nslots; i++) {
    uint16_t off, len;
    ReadSlot(p, i, &off, &len);
    copies.append(p + off, len);
    lens[i] = len;
  }
  uint32_t write_end = page_size;
  size_t src = 0;
  for (uint16_t i = 0; i < nslots; i++) {
    write_end -= lens[i];
    std::memcpy(p + write_end, copies.data() + src, lens[i]);
    WriteSlot(p, i, static_cast<uint16_t>(write_end), lens[i]);
    src += lens[i];
  }
  SetCellStart(p, static_cast<uint16_t>(write_end));
}

void InitPage(char* p, uint32_t page_size, bool leaf) {
  std::memset(p, 0, kHeader);
  p[0] = static_cast<char>(leaf ? kBtreeLeafPage : kBtreeInternalPage);
  SetNumSlots(p, 0);
  SetCellStart(p, static_cast<uint16_t>(page_size));
  SetLink(p, kInvalidPageId);
}

// First slot whose cell compares >= (key, value); nslots if none.
Result<uint16_t> LowerBound(const char* p, bool leaf, Slice key, Slice value) {
  uint16_t lo = 0, hi = GetNumSlots(p);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    uint16_t off, len;
    ReadSlot(p, mid, &off, &len);
    CellView cell;
    if (!ParseCell(p, off, len, leaf, &cell))
      return Status::Corruption("bad btree cell");
    if (CompareComposite(cell.key, cell.value, key, value) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Inserts a cell at slot position `pos`, shifting later slots. Caller must
// have verified space.
void InsertCellAt(char* p, uint32_t page_size, uint16_t pos, Slice cell_bytes) {
  uint16_t nslots = GetNumSlots(p);
  if (ContiguousFree(p) < cell_bytes.size() + kSlotSize)
    CompactPage(p, page_size);
  uint16_t cell_start = GetCellStart(p);
  uint16_t off = static_cast<uint16_t>(cell_start - cell_bytes.size());
  std::memcpy(p + off, cell_bytes.data(), cell_bytes.size());
  SetCellStart(p, off);
  // Shift slot entries [pos, nslots) up by one.
  char* base = p + kHeader;
  std::memmove(base + (pos + 1) * kSlotSize, base + pos * kSlotSize,
               (nslots - pos) * kSlotSize);
  WriteSlot(p, pos, off, static_cast<uint16_t>(cell_bytes.size()));
  SetNumSlots(p, static_cast<uint16_t>(nslots + 1));
}

void RemoveSlotAt(char* p, uint16_t pos) {
  uint16_t nslots = GetNumSlots(p);
  char* base = p + kHeader;
  std::memmove(base + pos * kSlotSize, base + (pos + 1) * kSlotSize,
               (nslots - pos - 1) * kSlotSize);
  SetNumSlots(p, static_cast<uint16_t>(nslots - 1));
}

}  // namespace

Result<std::unique_ptr<BTree>> BTree::Create(BufferManager* bm) {
  XDB_ASSIGN_OR_RETURN(PageHandle page, bm->NewPage());
  InitPage(page.MutableData(), bm->page_size(), /*leaf=*/true);
  return std::unique_ptr<BTree>(new BTree(bm, page.page_id()));
}

Result<std::unique_ptr<BTree>> BTree::Open(BufferManager* bm, PageId root) {
  XDB_ASSIGN_OR_RETURN(PageHandle page, bm->FixPage(root));
  uint8_t type = static_cast<uint8_t>(page.data()[0]);
  if (type != kBtreeLeafPage && type != kBtreeInternalPage)
    return Status::Corruption("root is not a btree page");
  return std::unique_ptr<BTree>(new BTree(bm, root));
}

Status BTree::InsertRec(PageId page_id, Slice key, Slice value,
                        SplitResult* out) {
  const uint32_t page_size = bm_->page_size();
  out->split = false;

  XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(page_id));
  const bool leaf = IsLeaf(page.data());

  if (!leaf) {
    // Descend: rightmost child whose separator <= (key, value).
    const char* p = page.data();
    XDB_ASSIGN_OR_RETURN(uint16_t pos, LowerBound(p, false, key, value));
    PageId child;
    uint16_t ins_pos;
    // pos = first separator >= target. Check for equality to descend right.
    bool exact = false;
    if (pos < GetNumSlots(p)) {
      uint16_t off, len;
      ReadSlot(p, pos, &off, &len);
      CellView cell;
      if (!ParseCell(p, off, len, false, &cell))
        return Status::Corruption("bad internal cell");
      exact = CompareComposite(cell.key, cell.value, key, value) == 0;
    }
    if (exact) {
      uint16_t off, len;
      ReadSlot(p, pos, &off, &len);
      CellView cell;
      ParseCell(p, off, len, false, &cell);
      child = cell.child;
      ins_pos = static_cast<uint16_t>(pos + 1);
    } else if (pos == 0) {
      child = GetLink(p);
      ins_pos = 0;
    } else {
      uint16_t off, len;
      ReadSlot(p, static_cast<uint16_t>(pos - 1), &off, &len);
      CellView cell;
      if (!ParseCell(p, off, len, false, &cell))
        return Status::Corruption("bad internal cell");
      child = cell.child;
      ins_pos = pos;
    }
    page.Release();

    SplitResult child_split;
    XDB_RETURN_NOT_OK(InsertRec(child, key, value, &child_split));
    if (!child_split.split) return Status::OK();

    // Insert the new separator into this page.
    XDB_ASSIGN_OR_RETURN(page, bm_->FixPage(page_id));
    char* mp = page.MutableData();
    std::string cell_bytes;
    AppendCell(&cell_bytes, child_split.sep_key, child_split.sep_value,
               /*leaf=*/false, child_split.right);
    if (TotalFree(mp, page_size) >= cell_bytes.size() + kSlotSize) {
      InsertCellAt(mp, page_size, ins_pos, cell_bytes);
      return Status::OK();
    }

    // Split this internal page. First place the separator logically by
    // materializing all cells, then redistribute.
    struct Entry {
      std::string key, value;
      PageId child;
    };
    std::vector<Entry> entries;
    uint16_t nslots = GetNumSlots(mp);
    entries.reserve(nslots + 1);
    for (uint16_t i = 0; i < nslots; i++) {
      uint16_t off, len;
      ReadSlot(mp, i, &off, &len);
      CellView cell;
      if (!ParseCell(mp, off, len, false, &cell))
        return Status::Corruption("bad internal cell");
      entries.push_back(
          {cell.key.ToString(), cell.value.ToString(), cell.child});
    }
    entries.insert(entries.begin() + ins_pos,
                   {child_split.sep_key, child_split.sep_value,
                    child_split.right});
    size_t mid = entries.size() / 2;
    // entries[mid] moves up; right page gets entries (mid, end) with
    // leftmost_child = entries[mid].child.
    XDB_ASSIGN_OR_RETURN(PageHandle right, bm_->NewPage());
    char* rp = right.MutableData();
    InitPage(rp, page_size, /*leaf=*/false);
    SetLink(rp, entries[mid].child);
    for (size_t i = mid + 1; i < entries.size(); i++) {
      std::string cb;
      AppendCell(&cb, entries[i].key, entries[i].value, false,
                 entries[i].child);
      InsertCellAt(rp, page_size, static_cast<uint16_t>(i - mid - 1), cb);
    }
    // Rewrite the left (current) page with entries [0, mid).
    PageId leftmost = GetLink(mp);
    InitPage(mp, page_size, /*leaf=*/false);
    SetLink(mp, leftmost);
    for (size_t i = 0; i < mid; i++) {
      std::string cb;
      AppendCell(&cb, entries[i].key, entries[i].value, false,
                 entries[i].child);
      InsertCellAt(mp, page_size, static_cast<uint16_t>(i), cb);
    }
    out->split = true;
    out->sep_key = entries[mid].key;
    out->sep_value = entries[mid].value;
    out->right = right.page_id();
    return Status::OK();
  }

  // Leaf insert.
  char* p = page.MutableData();
  XDB_ASSIGN_OR_RETURN(uint16_t pos, LowerBound(p, true, key, value));
  if (pos < GetNumSlots(p)) {
    uint16_t off, len;
    ReadSlot(p, pos, &off, &len);
    CellView cell;
    if (!ParseCell(p, off, len, true, &cell))
      return Status::Corruption("bad leaf cell");
    if (CompareComposite(cell.key, cell.value, key, value) == 0)
      return Status::OK();  // idempotent
  }
  std::string cell_bytes;
  AppendCell(&cell_bytes, key, value, /*leaf=*/true, kInvalidPageId);
  const uint32_t max_cell = (page_size - kHeader) / 2 - 2 * kSlotSize;
  if (cell_bytes.size() > max_cell)
    return Status::InvalidArgument("btree entry too large for page");
  if (TotalFree(p, page_size) >= cell_bytes.size() + kSlotSize) {
    InsertCellAt(p, page_size, pos, cell_bytes);
    return Status::OK();
  }

  // Split leaf: upper half moves to a new right sibling.
  uint16_t nslots = GetNumSlots(p);
  uint16_t split_at = static_cast<uint16_t>(nslots / 2);
  XDB_ASSIGN_OR_RETURN(PageHandle right, bm_->NewPage());
  char* rp = right.MutableData();
  InitPage(rp, page_size, /*leaf=*/true);
  SetLink(rp, GetLink(p));
  for (uint16_t i = split_at; i < nslots; i++) {
    uint16_t off, len;
    ReadSlot(p, i, &off, &len);
    CellView cell;
    if (!ParseCell(p, off, len, true, &cell))
      return Status::Corruption("bad leaf cell");
    std::string cb;
    AppendCell(&cb, cell.key, cell.value, true, kInvalidPageId);
    InsertCellAt(rp, page_size, static_cast<uint16_t>(i - split_at), cb);
  }
  SetNumSlots(p, split_at);
  CompactPage(p, page_size);
  SetLink(p, right.page_id());

  // Place the pending entry on the correct side.
  if (pos <= split_at) {
    InsertCellAt(p, page_size, pos, cell_bytes);
  } else {
    InsertCellAt(rp, page_size, static_cast<uint16_t>(pos - split_at),
                 cell_bytes);
  }
  // Separator = first composite of the right page.
  uint16_t off, len;
  ReadSlot(rp, 0, &off, &len);
  CellView first;
  if (!ParseCell(rp, off, len, true, &first))
    return Status::Corruption("bad leaf cell after split");
  out->split = true;
  out->sep_key = first.key.ToString();
  out->sep_value = first.value.ToString();
  out->right = right.page_id();
  return Status::OK();
}

Status BTree::SplitRoot(const SplitResult& split) {
  const uint32_t page_size = bm_->page_size();
  // Keep the root page id stable: copy the overflowing root into a fresh
  // left child, then rewrite the root as an internal node over {left, right}.
  XDB_ASSIGN_OR_RETURN(PageHandle root, bm_->FixPage(root_));
  XDB_ASSIGN_OR_RETURN(PageHandle left, bm_->NewPage());
  std::memcpy(left.MutableData(), root.data(), page_size);
  char* rp = root.MutableData();
  InitPage(rp, page_size, /*leaf=*/false);
  SetLink(rp, left.page_id());
  std::string cb;
  AppendCell(&cb, split.sep_key, split.sep_value, false, split.right);
  InsertCellAt(rp, page_size, 0, cb);
  return Status::OK();
}

Status BTree::Insert(Slice key, Slice value) {
  SplitResult split;
  XDB_RETURN_NOT_OK(InsertRec(root_, key, value, &split));
  if (split.split) XDB_RETURN_NOT_OK(SplitRoot(split));
  return Status::OK();
}

Status BTree::Delete(Slice key, Slice value) {
  PageId page_id = root_;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(page_id));
    const char* p = page.data();
    if (IsLeaf(p)) {
      XDB_ASSIGN_OR_RETURN(uint16_t pos, LowerBound(p, true, key, value));
      if (pos >= GetNumSlots(p)) return Status::NotFound();
      uint16_t off, len;
      ReadSlot(p, pos, &off, &len);
      CellView cell;
      if (!ParseCell(p, off, len, true, &cell))
        return Status::Corruption("bad leaf cell");
      if (CompareComposite(cell.key, cell.value, key, value) != 0)
        return Status::NotFound();
      RemoveSlotAt(page.MutableData(), pos);
      return Status::OK();
    }
    XDB_ASSIGN_OR_RETURN(uint16_t pos, LowerBound(p, false, key, value));
    bool exact = false;
    if (pos < GetNumSlots(p)) {
      uint16_t off, len;
      ReadSlot(p, pos, &off, &len);
      CellView cell;
      if (!ParseCell(p, off, len, false, &cell))
        return Status::Corruption("bad internal cell");
      exact = CompareComposite(cell.key, cell.value, key, value) == 0;
      if (exact) page_id = cell.child;
    }
    if (!exact) {
      if (pos == 0) {
        page_id = GetLink(p);
      } else {
        uint16_t off, len;
        ReadSlot(p, static_cast<uint16_t>(pos - 1), &off, &len);
        CellView cell;
        if (!ParseCell(p, off, len, false, &cell))
          return Status::Corruption("bad internal cell");
        page_id = cell.child;
      }
    }
  }
}

Result<BTree::Iterator> BTree::Seek(Slice key, Slice value) {
  Iterator it;
  it.tree_ = this;
  PageId page_id = root_;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(page_id));
    const char* p = page.data();
    if (IsLeaf(p)) {
      XDB_ASSIGN_OR_RETURN(uint16_t pos, LowerBound(p, true, key, value));
      it.page_ = std::move(page);
      it.slot_ = pos;
      it.valid_ = true;
      if (pos >= GetNumSlots(it.page_.data())) {
        XDB_RETURN_NOT_OK(it.AdvanceLeaf());
      } else {
        XDB_RETURN_NOT_OK(it.LoadSlot());
      }
      return it;
    }
    XDB_ASSIGN_OR_RETURN(uint16_t pos, LowerBound(p, false, key, value));
    bool exact = false;
    if (pos < GetNumSlots(p)) {
      uint16_t off, len;
      ReadSlot(p, pos, &off, &len);
      CellView cell;
      if (!ParseCell(p, off, len, false, &cell))
        return Status::Corruption("bad internal cell");
      exact = CompareComposite(cell.key, cell.value, key, value) == 0;
      if (exact) page_id = cell.child;
    }
    if (!exact) {
      if (pos == 0) {
        page_id = GetLink(p);
      } else {
        uint16_t off, len;
        ReadSlot(p, static_cast<uint16_t>(pos - 1), &off, &len);
        CellView cell;
        if (!ParseCell(p, off, len, false, &cell))
          return Status::Corruption("bad internal cell");
        page_id = cell.child;
      }
    }
  }
}

Result<BTree::Iterator> BTree::SeekToFirst() { return Seek(Slice(), Slice()); }

Status BTree::Iterator::LoadSlot() {
  const char* p = page_.data();
  uint16_t off, len;
  ReadSlot(p, slot_, &off, &len);
  CellView cell;
  if (!ParseCell(p, off, len, true, &cell))
    return Status::Corruption("bad leaf cell in iterator");
  key_ = cell.key;
  value_ = cell.value;
  return Status::OK();
}

Status BTree::Iterator::AdvanceLeaf() {
  // Move to the first non-empty following leaf.
  for (;;) {
    PageId next = GetLink(page_.data());
    if (next == kInvalidPageId) {
      valid_ = false;
      page_.Release();
      return Status::OK();
    }
    XDB_ASSIGN_OR_RETURN(PageHandle page, tree_->bm_->FixPage(next));
    page_ = std::move(page);
    slot_ = 0;
    if (GetNumSlots(page_.data()) > 0) return LoadSlot();
  }
}

Status BTree::Iterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  slot_++;
  if (slot_ >= GetNumSlots(page_.data())) return AdvanceLeaf();
  return LoadSlot();
}

Result<bool> BTree::Contains(Slice key) {
  XDB_ASSIGN_OR_RETURN(Iterator it, Seek(key));
  return it.Valid() && it.key() == key;
}

Result<BtreeStats> BTree::ComputeStats() {
  BtreeStats stats;
  // Walk levels: gather pages breadth-first.
  std::vector<PageId> level{root_};
  uint32_t height = 0;
  while (!level.empty()) {
    height++;
    std::vector<PageId> next;
    bool leaf_level = false;
    for (PageId id : level) {
      XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(id));
      const char* p = page.data();
      if (IsLeaf(p)) {
        leaf_level = true;
        stats.leaf_pages++;
        stats.entries += GetNumSlots(p);
      } else {
        stats.internal_pages++;
        next.push_back(GetLink(p));
        uint16_t nslots = GetNumSlots(p);
        for (uint16_t i = 0; i < nslots; i++) {
          uint16_t off, len;
          ReadSlot(p, i, &off, &len);
          CellView cell;
          if (!ParseCell(p, off, len, false, &cell))
            return Status::Corruption("bad internal cell");
          next.push_back(cell.child);
        }
      }
    }
    if (leaf_level) break;
    level = std::move(next);
  }
  stats.height = height;
  return stats;
}

}  // namespace xdb
