// Index-layer tests: typed key codecs, value index range probes, and the
// NodeID index interval behaviour at scale.
#include <gtest/gtest.h>

#include "btree/btree.h"
#include "common/coding.h"
#include "common/random.h"
#include "index/key_codec.h"
#include "index/nodeid_index.h"
#include "index/value_index.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"
#include "xml/node_id.h"

namespace xdb {
namespace {

TEST(KeyCodecTest, TypeNames) {
  EXPECT_EQ(ValueTypeFromName("double").value(), ValueType::kDouble);
  EXPECT_EQ(ValueTypeFromName("string").value(), ValueType::kString);
  EXPECT_EQ(ValueTypeFromName("decimal").value(), ValueType::kDecimal);
  EXPECT_EQ(ValueTypeFromName("date").value(), ValueType::kDate);
  EXPECT_FALSE(ValueTypeFromName("float").ok());
  EXPECT_STREQ(ValueTypeName(ValueType::kDate), "date");
}

TEST(KeyCodecTest, DoubleKeysOrder) {
  auto key = [](const char* v) {
    std::string k;
    EXPECT_TRUE(EncodeTypedKey(ValueType::kDouble, v, 128, &k).ok());
    return k;
  };
  EXPECT_LT(Slice(key("-10")).Compare(Slice(key("-2"))), 0);
  EXPECT_LT(Slice(key("-2")).Compare(Slice(key("0"))), 0);
  EXPECT_LT(Slice(key("0")).Compare(Slice(key("3.5"))), 0);
  EXPECT_LT(Slice(key("3.5")).Compare(Slice(key("100"))), 0);
  std::string k;
  EXPECT_FALSE(EncodeTypedKey(ValueType::kDouble, "abc", 128, &k).ok());
  EXPECT_FALSE(EncodeTypedKey(ValueType::kDouble, "", 128, &k).ok());
}

TEST(KeyCodecTest, DecimalKeysExact) {
  auto key = [](const char* v) {
    std::string k;
    EXPECT_TRUE(EncodeTypedKey(ValueType::kDecimal, v, 128, &k).ok()) << v;
    return k;
  };
  EXPECT_LT(Slice(key("99.99")).Compare(Slice(key("100.00"))), 0);
  EXPECT_EQ(Slice(key("100")).Compare(Slice(key("100.00"))), 0);
  // Precision beyond double.
  EXPECT_LT(Slice(key("100000000000000.01"))
                .Compare(Slice(key("100000000000000.02"))),
            0);
}

TEST(KeyCodecTest, DateParsingAndOrder) {
  EXPECT_EQ(ParseDateDays("1970-01-01").value(), 0);
  EXPECT_EQ(ParseDateDays("1970-01-02").value(), 1);
  EXPECT_EQ(ParseDateDays("1969-12-31").value(), -1);
  EXPECT_EQ(ParseDateDays("2000-03-01").value(), 11017);
  EXPECT_FALSE(ParseDateDays("2000-13-01").ok());
  EXPECT_FALSE(ParseDateDays("2000-02-41").ok());
  EXPECT_FALSE(ParseDateDays("not-a-date").ok());
  EXPECT_FALSE(ParseDateDays("2000-02-01x").ok());

  auto key = [](const char* v) {
    std::string k;
    EXPECT_TRUE(EncodeTypedKey(ValueType::kDate, v, 128, &k).ok());
    return k;
  };
  EXPECT_LT(Slice(key("1999-12-31")).Compare(Slice(key("2000-01-01"))), 0);
  EXPECT_LT(Slice(key("1960-06-15")).Compare(Slice(key("1980-06-15"))), 0);
}

TEST(KeyCodecTest, StringKeysTruncateAtLimit) {
  std::string k;
  ASSERT_TRUE(EncodeTypedKey(ValueType::kString, "abcdefghij", 4, &k).ok());
  EXPECT_EQ(k, "abcd");
}

TEST(KeyCodecTest, PostingRoundTrip) {
  std::string posting;
  std::string node_id = nodeid::ChildId(1) + nodeid::ChildId(3);
  EncodePosting(42, node_id, Rid{7, 3}.Pack(), &posting);
  uint64_t doc;
  Slice node;
  uint64_t rid;
  ASSERT_TRUE(DecodePosting(posting, &doc, &node, &rid).ok());
  EXPECT_EQ(doc, 42u);
  EXPECT_EQ(node.ToString(), node_id);
  EXPECT_EQ(Rid::Unpack(rid), (Rid{7, 3}));
}

class ValueIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 128);
    tree_ = BTree::Create(bm_.get()).MoveValue();
    ValueIndexDef def;
    def.name = "price_idx";
    def.path = "/cat/p/price";
    def.type = ValueType::kDouble;
    index_ = std::make_unique<ValueIndex>(def, tree_.get());
  }

  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<ValueIndex> index_;
};

TEST_F(ValueIndexTest, AddAndEqualityProbe) {
  ASSERT_TRUE(index_->Add("100", 1, nodeid::ChildId(1), Rid{2, 0}).ok());
  ASSERT_TRUE(index_->Add("250", 1, nodeid::ChildId(2), Rid{2, 0}).ok());
  ASSERT_TRUE(index_->Add("100", 2, nodeid::ChildId(1), Rid{3, 1}).ok());
  std::vector<Posting> hits;
  ASSERT_TRUE(index_->ScanEqual("100", &hits).ok());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc_id, 1u);
  EXPECT_EQ(hits[1].doc_id, 2u);
}

TEST_F(ValueIndexTest, RangeProbesRespectBounds) {
  for (int v = 10; v <= 100; v += 10) {
    ASSERT_TRUE(index_->Add(std::to_string(v), static_cast<uint64_t>(v),
                            nodeid::ChildId(1), Rid{1, 0})
                    .ok());
  }
  auto probe = [&](const char* lo, bool lo_inc, const char* hi, bool hi_inc) {
    std::optional<KeyBound> lob, hib;
    if (lo != nullptr) {
      std::string k;
      EXPECT_TRUE(index_->EncodeKey(lo, &k).ok());
      lob = KeyBound{k, lo_inc};
    }
    if (hi != nullptr) {
      std::string k;
      EXPECT_TRUE(index_->EncodeKey(hi, &k).ok());
      hib = KeyBound{k, hi_inc};
    }
    std::vector<Posting> hits;
    EXPECT_TRUE(index_->Scan(lob, hib, &hits).ok());
    return hits.size();
  };
  EXPECT_EQ(probe("30", true, "60", true), 4u);     // 30,40,50,60
  EXPECT_EQ(probe("30", false, "60", true), 3u);    // 40,50,60
  EXPECT_EQ(probe("30", true, "60", false), 3u);    // 30,40,50
  EXPECT_EQ(probe(nullptr, true, "25", true), 2u);  // 10,20
  EXPECT_EQ(probe("95", true, nullptr, true), 1u);  // 100
  EXPECT_EQ(probe(nullptr, true, nullptr, true), 10u);
}

TEST_F(ValueIndexTest, UncastableValuesProduceNoEntry) {
  ASSERT_TRUE(
      index_->Add("not a number", 1, nodeid::ChildId(1), Rid{1, 0}).ok());
  EXPECT_EQ(tree_->ComputeStats().value().entries, 0u);
}

TEST_F(ValueIndexTest, RemoveDropsExactEntry) {
  ASSERT_TRUE(index_->Add("5", 1, nodeid::ChildId(1), Rid{1, 0}).ok());
  ASSERT_TRUE(index_->Add("5", 1, nodeid::ChildId(2), Rid{1, 0}).ok());
  ASSERT_TRUE(index_->Remove("5", 1, nodeid::ChildId(1), Rid{1, 0}).ok());
  std::vector<Posting> hits;
  ASSERT_TRUE(index_->ScanEqual("5", &hits).ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node_id, nodeid::ChildId(2));
}

TEST_F(ValueIndexTest, StringTypeIndexOrdersLexically) {
  ValueIndexDef def;
  def.name = "name_idx";
  def.path = "//name";
  def.type = ValueType::kString;
  auto tree = BTree::Create(bm_.get()).MoveValue();
  ValueIndex sidx(def, tree.get());
  ASSERT_TRUE(sidx.Add("banana", 1, nodeid::ChildId(1), Rid{1, 0}).ok());
  ASSERT_TRUE(sidx.Add("apple", 2, nodeid::ChildId(1), Rid{1, 0}).ok());
  ASSERT_TRUE(sidx.Add("cherry", 3, nodeid::ChildId(1), Rid{1, 0}).ok());
  std::string lo_k;
  ASSERT_TRUE(sidx.EncodeKey("b", &lo_k).ok());
  std::vector<Posting> hits;
  ASSERT_TRUE(sidx.Scan(KeyBound{lo_k, true}, std::nullopt, &hits).ok());
  ASSERT_EQ(hits.size(), 2u);  // banana, cherry
  EXPECT_EQ(hits[0].doc_id, 1u);
  EXPECT_EQ(hits[1].doc_id, 3u);
}

TEST(NodeIdIndexScaleTest, ManyDocsLookupsStayScoped) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), 256);
  auto tree = BTree::Create(&bm).MoveValue();
  NodeIdIndex index(tree.get());
  for (uint64_t doc = 1; doc <= 100; doc++) {
    for (int rec = 0; rec < 3; rec++) {
      std::string upper1 = nodeid::ChildId(static_cast<uint32_t>(rec * 2 + 1));
      std::string upper2 = nodeid::ChildId(static_cast<uint32_t>(rec * 2 + 2));
      std::string key1, key2, value;
      EncodeNodeIdKey(doc, upper1, &key1);
      EncodeNodeIdKey(doc, upper2, &key2);
      PutFixed64(&value, Rid{static_cast<PageId>(rec + 1), 0}.Pack());
      ASSERT_TRUE(tree->Insert(key1, value).ok());
      ASSERT_TRUE(tree->Insert(key2, value).ok());
    }
  }
  EXPECT_EQ(tree->ComputeStats().value().entries, 600u);
  // Lookup lands inside the right document and never crosses into the next.
  auto rid = index.Lookup(50, nodeid::ChildId(3));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid.value().page_id, 2u);
  EXPECT_FALSE(index.Lookup(50, nodeid::ChildId(7)).ok());  // past the last
  std::vector<Rid> recs;
  ASSERT_TRUE(index.ListDocRecords(50, &recs).ok());
  EXPECT_EQ(recs.size(), 3u);
  ASSERT_TRUE(index.RemoveDocEntries(50).ok());
  EXPECT_FALSE(index.Lookup(50, nodeid::ChildId(1)).ok());
  EXPECT_TRUE(index.Lookup(51, nodeid::ChildId(1)).ok());
}

}  // namespace
}  // namespace xdb
