// Replication tests: the WAL-shipping pipeline end to end — durable-prefix
// tailing (WalLog::ReadDurable), the segment codec, both transports, the
// replica apply path with its CSN watermark, freshness-bounded reads,
// WAL retention across primary checkpoints, replica restart/checkpoint
// resume, DDL replication, and the promotion path.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"

#include "engine/engine.h"
#include "leak_check.h"
#include "obs/event_log.h"
#include "repl/replica_applier.h"
#include "repl/ship_transport.h"
#include "repl/wal_segment.h"
#include "repl/wal_shipper.h"
#include "storage/wal_log.h"
#include "testing/fault_injector.h"
#include "util/workload.h"

namespace xdb {
namespace repl {
namespace {

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("xdb_repl_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter_++)))
            .string();
    primary_dir_ = stem + "_p";
    replica_dir_ = stem + "_r";
    spool_dir_ = stem + "_s";
    for (const std::string& d : {primary_dir_, replica_dir_, spool_dir_}) {
      std::filesystem::remove_all(d);
      std::filesystem::create_directories(d);
    }
  }
  void TearDown() override {
    for (const std::string& d : {primary_dir_, replica_dir_, spool_dir_})
      std::filesystem::remove_all(d);
  }

  EngineOptions PrimaryOptions() {
    EngineOptions opts;
    opts.dir = primary_dir_;
    return opts;
  }
  EngineOptions ReplicaOptions() {
    EngineOptions opts;
    opts.dir = replica_dir_;
    opts.replica = true;
    return opts;
  }

  /// Ship/apply rounds until both sides go idle. Multiple rounds let
  /// resync requests (which need another shipper pass) converge.
  static void Pump(WalShipper* shipper, ReplicaApplier* applier,
                   int rounds = 8) {
    for (int i = 0; i < rounds; i++) {
      Status s = shipper->ShipAll();
      ASSERT_TRUE(s.ok()) << s.ToString();
      s = applier->CatchUp();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }

  std::string primary_dir_, replica_dir_, spool_dir_;
  static int counter_;
};
int ReplTest::counter_ = 0;

// --- segment codec ---

TEST(WalSegmentTest, RoundTripsAndRejectsDamage) {
  WalSegment seg;
  seg.stream_offset = 12345;
  seg.wal_gen = 3;
  seg.record_count = 7;
  seg.payload = "framed-record-bytes-go-here";
  std::string wire;
  EncodeSegment(seg, &wire);

  auto back = DecodeSegment(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().stream_offset, 12345u);
  EXPECT_EQ(back.value().wal_gen, 3u);
  EXPECT_EQ(back.value().record_count, 7u);
  EXPECT_EQ(back.value().payload, seg.payload);
  EXPECT_EQ(back.value().end_csn(), 12345u + seg.payload.size());

  // Truncated at every length: never OK, never a crash.
  for (size_t n = 0; n < wire.size(); n++) {
    auto r = DecodeSegment(Slice(wire.data(), n));
    EXPECT_TRUE(r.status().IsCorruption()) << "len=" << n;
  }
  // A flipped payload byte fails the CRC; a flipped magic byte the magic.
  std::string flipped = wire;
  flipped[kSegmentHeaderSize + 3] ^= 0x40;
  EXPECT_TRUE(DecodeSegment(flipped).status().IsCorruption());
  flipped = wire;
  flipped[0] ^= 0x01;
  EXPECT_TRUE(DecodeSegment(flipped).status().IsCorruption());
}

// --- ReadDurable: the durable-prefix tailing contract ---

TEST(ReadDurableTest, StopsAtDurableBoundaryAndPaginates) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("xdb_repl_wal_" + std::to_string(::getpid())))
          .string();
  std::remove(path.c_str());
  auto wal = WalLog::Open(path).MoveValue();

  ASSERT_TRUE(wal->Append(WalRecordType::kCommit, "one").ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kCommit, "two").ok());

  // Nothing synced yet: a tailer sees an empty durable prefix.
  std::string out;
  uint64_t end = 99;
  uint32_t count = 99;
  ASSERT_TRUE(wal->ReadDurable(0, 1 << 20, &out, &end, &count).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(end, 0u);
  EXPECT_EQ(count, 0u);

  ASSERT_TRUE(wal->Commit().ok());
  uint64_t third = wal->Append(WalRecordType::kCommit, "three").value();
  // "three" is appended but not yet synced: only two records are readable.
  ASSERT_TRUE(wal->ReadDurable(0, 1 << 20, &out, &end, &count).ok());
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(end, third);
  EXPECT_EQ(out.size(), third);

  // max_bytes = 1 still returns the first record whole (always progress),
  // and the second call resumes exactly where the first stopped.
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->ReadDurable(0, 1, &out, &end, &count).ok());
  EXPECT_EQ(count, 1u);
  uint64_t resume = end;
  ASSERT_TRUE(wal->ReadDurable(resume, 1 << 20, &out, &end, &count).ok());
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(end, wal->size());

  // Raw bytes re-append verbatim into another log and replay identically —
  // the exact path a replica's ApplyReplicatedRecords takes.
  ASSERT_TRUE(wal->ReadDurable(0, 1 << 20, &out, &end, &count).ok());
  const std::string path2 = path + "2";
  std::remove(path2.c_str());
  auto wal2 = WalLog::Open(path2).MoveValue();
  ASSERT_TRUE(wal2->AppendRaw(out).ok());
  std::vector<std::string> payloads;
  WalReplayInfo info;
  ASSERT_TRUE(wal2->Replay(
                      [&](uint64_t, WalRecordType, Slice p) {
                        payloads.push_back(p.ToString());
                        return Status::OK();
                      },
                      &info)
                  .ok());
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "one");
  EXPECT_EQ(payloads[1], "two");
  EXPECT_EQ(payloads[2], "three");
  EXPECT_FALSE(info.torn_tail);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

// --- end to end over the in-process transport ---

TEST_F(ReplTest, ShipsDocumentsAndServesFreshReads) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();

  Collection* coll = primary->CreateCollection("docs").value();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<d><n>" + std::to_string(i) +
                                                  "</n></d>")
                    .ok());
  }
  Pump(&shipper, applier.get());

  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 20u);
  EXPECT_EQ(rcoll->GetDocumentText(nullptr, 5).value(), "<d><n>4</n></d>");

  // Read-your-writes: a query demanding the shipped CSN succeeds with no
  // timeout budget at all, because the replica is caught up.
  QueryOptions fresh;
  fresh.min_csn = shipper.shipped_csn();
  auto res = rcoll->Query(nullptr, "/d/n", fresh);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().nodes.size(), 20u);

  const auto snap = replica->MetricsSnapshot();
  EXPECT_GT(snap.Value("repl.apply.segments"), 0u);
  EXPECT_EQ(snap.Value("repl.apply.csn"), replica->applied_csn());
  EXPECT_EQ(snap.Value("repl.apply.gaps"), 0u);
}

TEST_F(ReplTest, StaleReplicaFailsFreshReadsUntilCaughtUp) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();

  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>1</a>").ok());
  Pump(&shipper, applier.get());
  Collection* rcoll = replica->GetCollection("docs").value();

  // More primary writes that never ship.
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>2</a>").ok());
  ASSERT_TRUE(shipper.ShipAll().ok());  // queued on the transport...
  // ...but not applied. A bounded wait times out as kStale.
  QueryOptions fresh;
  fresh.min_csn = shipper.shipped_csn();
  fresh.freshness_timeout_us = 2000;
  EXPECT_TRUE(rcoll->Query(nullptr, "/a", fresh).status().IsStale());
  // And an unbounded-past read (min_csn = 0) still serves the stale image.
  EXPECT_EQ(rcoll->Query(nullptr, "/a").value().nodes.size(), 1u);

  ASSERT_TRUE(applier->CatchUp().ok());
  auto res = rcoll->Query(nullptr, "/a", fresh);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().nodes.size(), 2u);

  // WaitForFreshness on the *primary* never blocks: its reads are fresh by
  // definition.
  EXPECT_TRUE(primary->WaitForFreshness(1 << 30, 0).ok());
}

TEST_F(ReplTest, ReplicaRejectsEveryLocalMutation) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>x</b></a>").ok());
  Pump(&shipper, applier.get());

  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_TRUE(
      rcoll->InsertDocument(nullptr, "<a/>").status().IsNotSupported());
  EXPECT_TRUE(rcoll->DeleteDocument(nullptr, 1).IsNotSupported());
  EXPECT_TRUE(rcoll->UpdateTextNode(nullptr, 1, "\x01", "y")
                  .IsNotSupported());
  EXPECT_TRUE(
      rcoll->CreateValueIndex({"i", "/a/b", ValueType::kString, 64})
          .IsNotSupported());
  EXPECT_TRUE(rcoll->DropValueIndex("i").IsNotSupported());
  EXPECT_TRUE(
      rcoll->CreateStructuralIndex({"structure", ""}).IsNotSupported());
  EXPECT_TRUE(rcoll->DropStructuralIndex("structure").IsNotSupported());
  EXPECT_TRUE(
      replica->CreateCollection("nope").status().IsNotSupported());
  EXPECT_TRUE(replica->DropCollection("docs").IsNotSupported());
  EXPECT_TRUE(
      replica->RegisterSchema("s", "<schema/>").IsNotSupported());
  // Reads still fine.
  EXPECT_EQ(rcoll->DocCount().value(), 1u);
}

// --- WAL retention vs checkpoints, and the stream-base fold ---

TEST_F(ReplTest, CheckpointRetainsUnackedWalThenTruncatesAfterAck) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();

  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>pre</a>").ok());

  // Nothing shipped yet: the checkpoint must NOT truncate the WAL.
  const uint64_t before = primary->wal()->size();
  ASSERT_GT(before, 0u);
  ASSERT_TRUE(primary->Checkpoint().ok());
  EXPECT_EQ(primary->wal()->size(), before)
      << "checkpoint truncated WAL bytes the replica never received";

  Pump(&shipper, applier.get());
  // Fully shipped and acked: now the checkpoint may truncate.
  ASSERT_TRUE(primary->Checkpoint().ok());
  EXPECT_EQ(primary->wal()->size(), 0u);

  // Writes after the truncation keep the stream CSN monotonic (base fold)
  // and keep replicating.
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>post</a>").ok());
  const uint64_t before_csn = shipper.shipped_csn();
  Pump(&shipper, applier.get());
  EXPECT_GT(shipper.shipped_csn(), before_csn);
  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 2u);
}

// --- replica durability: restart resumes from the watermark ---

TEST_F(ReplTest, ReplicaRestartResumesExactlyOnce) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  Collection* coll = primary->CreateCollection("docs").value();

  {
    Engine* replica = IntentionallyLeaked(
        Engine::Open(ReplicaOptions()).MoveValue().release());
    auto applier = ReplicaApplier::Attach(replica, &transport).MoveValue();
    for (int i = 0; i < 10; i++)
      ASSERT_TRUE(
          coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
              .ok());
    Pump(&shipper, applier.get());
    ASSERT_EQ(replica->applied_csn(), shipper.shipped_csn());
    // Crash the replica: no checkpoint, no clean shutdown.
  }

  // More primary traffic while the replica is down.
  for (int i = 10; i < 15; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
            .ok());

  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  // The reopened watermark equals base + intact local WAL: everything the
  // dead applier acknowledged survived in the replica's own log.
  EXPECT_GT(replica->applied_csn(), 0u);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Pump(&shipper, applier.get());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 15u);
  for (uint64_t d = 1; d <= 15; d++)
    EXPECT_EQ(rcoll->GetDocumentText(nullptr, d).value(),
              "<a>" + std::to_string(d - 1) + "</a>");
}

TEST_F(ReplTest, ReplicaCheckpointFoldsWalIntoBaseAndSurvivesRestart) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  Collection* coll = primary->CreateCollection("docs").value();

  // Tiny checkpoint threshold: the replica checkpoints (and truncates its
  // local WAL, moving the catalog's stream base) mid-stream.
  ApplierOptions aopts;
  aopts.checkpoint_every_bytes = 1;
  uint64_t mid_csn = 0;
  {
    Engine* replica = IntentionallyLeaked(
        Engine::Open(ReplicaOptions()).MoveValue().release());
    auto applier =
        ReplicaApplier::Attach(replica, &transport, aopts).MoveValue();
    for (int i = 0; i < 8; i++)
      ASSERT_TRUE(
          coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
              .ok());
    Pump(&shipper, applier.get());
    mid_csn = replica->applied_csn();
    ASSERT_EQ(mid_csn, shipper.shipped_csn());
    // Local WAL was truncated by the applier-driven checkpoints; the
    // watermark now lives (mostly) in the catalog's stream base.
    EXPECT_LT(replica->wal()->size(), mid_csn);
  }

  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  EXPECT_EQ(replica->applied_csn(), mid_csn)
      << "stream base + local WAL must reconstruct the exact watermark";
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport, aopts).MoveValue();
  for (int i = 8; i < 12; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
            .ok());
  Pump(&shipper, applier.get());
  EXPECT_EQ(replica->GetCollection("docs").value()->DocCount().value(), 12u);
}

// --- DDL over the stream ---

TEST_F(ReplTest, DdlReplicates) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();

  ASSERT_TRUE(
      primary->RegisterSchema("catalog", workload::CatalogSchemaText()).ok());
  CollectionOptions copts;
  copts.schema = "catalog";
  Collection* coll = primary->CreateCollection("cat", copts).value();
  Collection* doomed = primary->CreateCollection("doomed").value();
  ASSERT_TRUE(doomed->InsertDocument(nullptr, "<x/>").ok());
  ASSERT_TRUE(
      coll->CreateValueIndex({"pidx", "/catalog/product/price",
                              ValueType::kDouble, 128})
          .ok());
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  Random rng(7);
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, {})).ok());
  ASSERT_TRUE(primary->DropCollection("doomed").ok());

  Pump(&shipper, applier.get());

  // Collection, schema, index and drop all arrived.
  Collection* rcoll = replica->GetCollection("cat").value();
  EXPECT_EQ(rcoll->DocCount().value(), 5u);
  EXPECT_TRUE(replica->GetCollection("doomed").status().IsNotFound());
  EXPECT_TRUE(replica->FindSchema("catalog").ok());
  EXPECT_NE(rcoll->FindValueIndex("pidx"), nullptr);

  // The replicated index actually serves queries: planner-picked access
  // (which may probe pidx) agrees with a forced full scan.
  QueryOptions force_scan;
  force_scan.force = ForceMethod::kScan;
  auto planned = rcoll->Query(nullptr, "/catalog/product[price >= 0]");
  auto scan = rcoll->Query(nullptr, "/catalog/product[price >= 0]",
                           force_scan);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(planned.value().nodes.size(), scan.value().nodes.size());

  // The structural index arrived too, was backfilled over the replicated
  // documents, and a forced interval scan matches the full scan.
  ASSERT_NE(rcoll->FindStructuralIndex("structure"), nullptr);
  QueryOptions force_structural;
  force_structural.force = ForceMethod::kStructural;
  auto structural =
      rcoll->Query(nullptr, "//product", force_structural);
  auto sscan = rcoll->Query(nullptr, "//product", force_scan);
  ASSERT_TRUE(structural.ok()) << structural.status().ToString();
  ASSERT_TRUE(sscan.ok());
  ASSERT_EQ(structural.value().nodes.size(), sscan.value().nodes.size());
  for (size_t i = 0; i < structural.value().nodes.size(); i++) {
    EXPECT_EQ(structural.value().nodes[i].doc_id,
              sscan.value().nodes[i].doc_id);
    EXPECT_EQ(structural.value().nodes[i].node_id,
              sscan.value().nodes[i].node_id);
  }
}

// The DDL WAL records also close a latent single-node hole: DDL after the
// last checkpoint used to vanish on crash (the catalog only persists at
// checkpoint), taking every subsequent document record down with it.
TEST_F(ReplTest, PostCheckpointDdlSurvivesCrash) {
  {
    Engine* crashed = IntentionallyLeaked(
        Engine::Open(PrimaryOptions()).MoveValue().release());
    Collection* old = crashed->CreateCollection("old").value();
    ASSERT_TRUE(old->InsertDocument(nullptr, "<o/>").ok());
    ASSERT_TRUE(crashed->Checkpoint().ok());
    // Everything below is post-checkpoint and must be rebuilt from the WAL.
    ASSERT_TRUE(
        crashed->RegisterSchema("catalog", workload::CatalogSchemaText())
            .ok());
    CollectionOptions copts;
    copts.schema = "catalog";
    Collection* fresh = crashed->CreateCollection("fresh", copts).value();
    ASSERT_TRUE(
        fresh->CreateValueIndex({"pidx", "/catalog/product/price",
                                 ValueType::kDouble, 128})
            .ok());
    Random rng(11);
    ASSERT_TRUE(
        fresh->InsertDocument(nullptr, workload::GenCatalogXml(&rng, {}))
            .ok());
    ASSERT_TRUE(crashed->DropCollection("old").ok());
  }
  auto engine = Engine::Open(PrimaryOptions()).MoveValue();
  Collection* fresh = engine->GetCollection("fresh").value();
  EXPECT_EQ(fresh->DocCount().value(), 1u);
  EXPECT_NE(fresh->FindValueIndex("pidx"), nullptr);
  EXPECT_TRUE(engine->FindSchema("catalog").ok());
  EXPECT_TRUE(engine->GetCollection("old").status().IsNotFound());
  // The recovered index is consistent with a forced scan.
  QueryOptions force_scan;
  force_scan.force = ForceMethod::kScan;
  EXPECT_EQ(fresh->Query(nullptr, "/catalog/product[price >= 0]")
                .value()
                .nodes.size(),
            fresh->Query(nullptr, "/catalog/product[price >= 0]", force_scan)
                .value()
                .nodes.size());
}

// --- promotion ---

TEST_F(ReplTest, PromoteLiftsReadOnlyGateAndRefusesFurtherSegments) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>1</a>").ok());
  Pump(&shipper, applier.get());

  // Promoting a primary is nonsense.
  EXPECT_FALSE(primary->Promote().ok());

  ASSERT_TRUE(applier->Promote().ok());
  EXPECT_FALSE(replica->is_replica());
  bool saw_promoted = false;
  for (const auto& e : replica->RecentEvents())
    if (e.kind == obs::EventKind::kPromoted) saw_promoted = true;
  EXPECT_TRUE(saw_promoted);

  // The promoted node accepts writes...
  Collection* rcoll = replica->GetCollection("docs").value();
  ASSERT_TRUE(rcoll->InsertDocument(nullptr, "<a>promoted</a>").ok());
  EXPECT_EQ(rcoll->DocCount().value(), 2u);

  // ...and refuses segments from the stale primary: the old timeline can
  // never overwrite the new one.
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>stale</a>").ok());
  ASSERT_TRUE(shipper.ShipAll().ok());
  EXPECT_TRUE(applier->CatchUp().IsNotSupported());
  EXPECT_EQ(rcoll->DocCount().value(), 2u);
}

// --- the file-spool transport ---

TEST_F(ReplTest, FileTransportShipsThroughSpoolFiles) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  auto transport = FileTransport::Open(spool_dir_).MoveValue();
  WalShipper shipper(primary.get(), transport.get());
  auto applier =
      ReplicaApplier::Attach(replica.get(), transport.get()).MoveValue();

  Collection* coll = primary->CreateCollection("docs").value();
  for (int i = 0; i < 6; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<f>" + std::to_string(i) + "</f>")
            .ok());
  Pump(&shipper, applier.get());

  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 6u);
  // The spool retained its segments (it doubles as a shipping archive).
  EXPECT_GT(transport->next_write_seq(), 0u);
  size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(spool_dir_))
    files += e.is_regular_file() ? 1 : 0;
  EXPECT_EQ(files, transport->next_write_seq());
}

// --- injected network faults heal without data loss ---

TEST_F(ReplTest, DuplicateReorderAndDropDeliveriesAllConverge) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  ShipperOptions sopts;
  sopts.max_segment_bytes = 64;  // many small segments → many deliveries
  WalShipper shipper(primary.get(), &transport, sopts);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();

  testing::ScopedFaultInjector fi;
  // 2nd delivery duplicated, 4th reordered behind the 5th, 6th dropped.
  fi->Arm(testing::FaultPoint::kShipTransport, 2,
          testing::FaultKind::kNetworkError, 2);
  fi->Arm(testing::FaultPoint::kShipTransport, 4,
          testing::FaultKind::kNetworkError, 3);
  fi->Arm(testing::FaultPoint::kShipTransport, 6,
          testing::FaultKind::kNetworkError, 1);

  for (int i = 0; i < 30; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
            .ok());
  Pump(&shipper, applier.get(), /*rounds=*/12);

  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 30u);
  for (uint64_t d = 1; d <= 30; d++)
    EXPECT_EQ(rcoll->GetDocumentText(nullptr, d).value(),
              "<a>" + std::to_string(d - 1) + "</a>");

  const auto snap = replica->MetricsSnapshot();
  EXPECT_GT(snap.Value("repl.apply.duplicates") +
                snap.Value("repl.apply.gaps"),
            0u);
}

// Regression: the retention hook is generation-aware. After a checkpoint
// truncates the WAL, the shipper's position stays in the OLD log's
// coordinates until its next ShipOnce folds the reset into the stream base.
// A second checkpoint arriving inside that window used to compare the stale
// position (old log size) against the new log and truncate unshipped bytes
// whenever fewer bytes had been appended than the old log held — they
// vanished from the stream with no error and the replica silently diverged.
TEST_F(ReplTest, SecondCheckpointBeforeNextShipRetainsUnshippedBytes) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();

  Collection* coll = primary->CreateCollection("docs").value();
  // A fat first epoch: its size is the stale retain floor the bug compares
  // against the new log.
  for (int i = 0; i < 5; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<d><pad>" +
                                                  std::string(200, 'x') +
                                                  "</pad></d>")
                    .ok());
  Pump(&shipper, applier.get());

  // Fully shipped + acked: this checkpoint truncates and bumps the reset
  // generation. The shipper has NOT run since, so it has not folded.
  ASSERT_TRUE(primary->Checkpoint().ok());
  ASSERT_EQ(primary->wal()->size(), 0u);

  // Fewer bytes than the old log held, all unshipped.
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<d>tail</d>").ok());
  const uint64_t unshipped = primary->wal()->size();
  ASSERT_GT(unshipped, 0u);

  // The second checkpoint must refuse to truncate: the only copy of the new
  // bytes is this log.
  ASSERT_TRUE(primary->Checkpoint().ok());
  EXPECT_EQ(primary->wal()->size(), unshipped)
      << "checkpoint truncated unshipped bytes behind the stale retain floor";

  Pump(&shipper, applier.get());
  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 6u);
  EXPECT_EQ(rcoll->GetDocumentText(nullptr, 6).value(), "<d>tail</d>");
}

// Regression: a segment whose bytes land in the replica's local WAL but then
// fail to apply must be truncated back out. Leaving them appended breaks the
// `applied_csn == base + local-WAL-bytes` reconstruction at reopen: the
// resync re-ships the same stream bytes, they get appended AGAIN, and the
// replica starts skipping real segments.
TEST_F(ReplTest, FailedSegmentApplyRollsBackLocalWal) {
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();

  // A framed, CRC-intact record whose PAYLOAD is semantically corrupt: a
  // name-dictionary entry far ahead of the dictionary ("out of order").
  std::string payload;
  PutFixed32(&payload, 7);
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed.push_back(static_cast<char>(WalRecordType::kDefineName));
  PutFixed32(&framed, Crc32(payload.data(), payload.size()));
  framed.append(payload);

  Status s = replica->ApplyReplicatedRecords(framed, framed.size());
  ASSERT_FALSE(s.ok());
  // The failed segment left no trace: watermark unmoved, local WAL empty.
  EXPECT_EQ(replica->applied_csn(), 0u);
  EXPECT_EQ(replica->wal()->size(), 0u)
      << "failed apply left unacknowledged bytes in the local WAL";

  // The stream accounting is intact: a real pipeline attaches at CSN 0 and
  // converges normally.
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>ok</a>").ok());
  Pump(&shipper, applier.get());
  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  EXPECT_EQ(
      replica->GetCollection("docs").value()->DocCount().value(), 1u);
}

// Regression: a replica recovering a local WAL with mid-log damage (CRC-dead
// records with intact ones after them) must NOT count the skipped records as
// applied — acking them would lose their updates forever with no resync. The
// watermark stops at the first damaged record and the range is re-shipped.
TEST_F(ReplTest, ReplicaRecoveryAfterMidLogDamageResyncsInsteadOfAcking) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary.get(), &transport);
  Collection* coll = primary->CreateCollection("docs").value();

  uint64_t total = 0;
  {
    Engine* replica = IntentionallyLeaked(
        Engine::Open(ReplicaOptions()).MoveValue().release());
    auto applier = ReplicaApplier::Attach(replica, &transport).MoveValue();
    for (int i = 0; i < 10; i++)
      ASSERT_TRUE(
          coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
              .ok());
    Pump(&shipper, applier.get());
    total = replica->applied_csn();
    ASSERT_EQ(total, shipper.shipped_csn());
    // Crash: no checkpoint, the whole stream still lives in the local WAL.
  }

  // Flip one payload byte of a middle record: mid-log corruption (intact
  // records follow), the signature recovery used to ack right through.
  const std::string wal_path = replica_dir_ + "/wal.log";
  std::string buf;
  {
    std::ifstream in(wal_path, std::ios::binary);
    buf.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }
  std::vector<size_t> payload_offsets;
  ASSERT_TRUE(ScanWalRecords(
                  Slice(buf),
                  0,
                  [&](uint64_t, WalRecordType, Slice p) {
                    payload_offsets.push_back(
                        static_cast<size_t>(p.data() - buf.data()));
                    return Status::OK();
                  },
                  nullptr)
                  .ok());
  ASSERT_GT(payload_offsets.size(), 4u);
  const size_t flip_at = payload_offsets[payload_offsets.size() / 2];
  {
    std::fstream f(wal_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(flip_at));
    char c = static_cast<char>(f.get());
    f.seekp(static_cast<std::streamoff>(flip_at));
    f.put(static_cast<char>(c ^ 0x20));
  }

  // Reopen: never fails to open, and the watermark stops BEFORE the damaged
  // record (its start precedes the flipped payload byte).
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  EXPECT_LT(replica->applied_csn(), total)
      << "damaged stream bytes were acknowledged as applied";
  EXPECT_LE(replica->applied_csn(), flip_at);

  // New primary traffic makes the replica see the gap, resync, and converge
  // — including the re-shipped damaged range.
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>post</a>").ok());
  Pump(&shipper, applier.get(), /*rounds=*/12);
  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->DocCount().value(), 11u);
  for (uint64_t d = 1; d <= 10; d++)
    EXPECT_EQ(rcoll->GetDocumentText(nullptr, d).value(),
              "<a>" + std::to_string(d - 1) + "</a>");
}

// Regression: the replica read-only gate is thread-scoped. While the applier
// thread is mid-ApplyReplicatedRecords, client mutations on other threads
// used to slip past the engine-wide "replaying" flag (TOCTOU) and append
// local writes to the replica's WAL. Every attempt must fail kNotSupported,
// no matter how it interleaves with the apply.
TEST_F(ReplTest, ClientMutationsDuringApplyAlwaysRejected) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  ShipperOptions sopts;
  sopts.max_segment_bytes = 64;  // many segments → a wide apply window
  WalShipper shipper(primary.get(), &transport, sopts);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>seed</a>").ok());
  Pump(&shipper, applier.get());
  Collection* rcoll = replica->GetCollection("docs").value();

  for (int i = 0; i < 50; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
            .ok());
  ASSERT_TRUE(shipper.ShipAll().ok());  // queue everything, apply nothing

  const uint64_t wal_before_storm = replica->wal()->size();
  std::atomic<bool> done{false};
  std::atomic<int> rejected{0};
  std::atomic<int> leaked_writes{0};
  std::thread writer([&] {
    while (!done.load(std::memory_order_acquire)) {
      Status s = rcoll->InsertDocument(nullptr, "<a>local</a>").status();
      if (s.IsNotSupported())
        rejected.fetch_add(1, std::memory_order_relaxed);
      else
        leaked_writes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Don't let a fast apply win by default: the storm is provably underway
  // before the first segment is applied.
  while (rejected.load(std::memory_order_relaxed) +
             leaked_writes.load(std::memory_order_relaxed) ==
         0)
    std::this_thread::yield();
  Status apply_status = applier->CatchUp();
  done.store(true, std::memory_order_release);
  writer.join();
  ASSERT_TRUE(apply_status.ok()) << apply_status.ToString();

  EXPECT_EQ(leaked_writes.load(), 0)
      << "a client write slipped past the replica read-only gate mid-apply";
  EXPECT_GT(rejected.load(), 0);
  // Stream accounting intact: local WAL grew by exactly the shipped bytes.
  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  EXPECT_GT(replica->wal()->size(), wal_before_storm);
  EXPECT_EQ(rcoll->DocCount().value(), 51u);
}

// Regression: value-index DDL and its WAL record are atomic. Concurrent
// create+drop of the same index used to be able to log in the opposite order
// of their application, so crash replay (and any replica) converged to the
// opposite final state from the primary.
TEST_F(ReplTest, ConcurrentIndexDdlReplayConvergesToPrimaryState) {
  Engine* primary = IntentionallyLeaked(
      Engine::Open(PrimaryOptions()).MoveValue().release());
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;
  WalShipper shipper(primary, &transport);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());

  const ValueIndexDef def{"i", "/a/b", ValueType::kString, 64};
  std::thread creator([&] {
    for (int i = 0; i < 40; i++) (void)coll->CreateValueIndex(def);
  });
  std::thread dropper([&] {
    for (int i = 0; i < 40; i++) (void)coll->DropValueIndex("i");
  });
  creator.join();
  dropper.join();

  const bool on_primary = coll->FindValueIndex("i") != nullptr;
  Pump(&shipper, applier.get());
  Collection* rcoll = replica->GetCollection("docs").value();
  EXPECT_EQ(rcoll->FindValueIndex("i") != nullptr, on_primary)
      << "replica converged to the opposite index state (log order inverted "
         "against application order)";

  // Crash (no clean close, so no catalog save): the reopened engine rebuilds
  // the index state purely from WAL replay — the log IS the application
  // order, so it must land on the same final state.
  auto reopened = Engine::Open(PrimaryOptions()).MoveValue();
  Collection* rcoll2 = reopened->GetCollection("docs").value();
  EXPECT_EQ(rcoll2->FindValueIndex("i") != nullptr, on_primary);
}

TEST_F(ReplTest, TransientShipErrorsAreRetriedWithBackoff) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  InProcessTransport transport;

  /// Records sleeps instead of sleeping (same trick as the io_retry tests).
  class FakeClock : public IoClock {
   public:
    void SleepMicros(uint64_t us) override { sleeps.push_back(us); }
    std::vector<uint64_t> sleeps;
  };
  FakeClock clock;
  ShipperOptions sopts;
  sopts.clock = &clock;
  WalShipper shipper(primary.get(), &transport, sopts);
  auto applier =
      ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>x</a>").ok());

  testing::ScopedFaultInjector fi;
  fi->Arm(testing::FaultPoint::kShipTransport, 1,
          testing::FaultKind::kNetworkError, 0);  // one transient send error
  Pump(&shipper, applier.get());

  EXPECT_GE(clock.sleeps.size(), 1u) << "retry should have backed off";
  EXPECT_EQ(replica->GetCollection("docs").value()->DocCount().value(), 1u);
}

}  // namespace
}  // namespace repl
}  // namespace xdb
