// Constructor-function tests: tagging-template compilation, equivalence
// with the naive evaluation, escaping, token emission, and XMLAGG with the
// linked-list quicksort vs the external-sort baseline.
#include <gtest/gtest.h>

#include "common/random.h"
#include "construct/constructor.h"
#include "construct/xml_agg.h"
#include "util/workload.h"
#include "xml/name_dictionary.h"
#include "xml/parser.h"

namespace xdb {
namespace construct {
namespace {

// The paper's running example:
// XMLELEMENT(NAME "Emp", XMLATTRIBUTES(e.id AS "id",
//                                      e.fname||' '||e.lname AS "name"),
//            XMLFOREST(e.hire, e.dept AS "department"))
CtorExpr PaperEmpConstructor() {
  std::vector<CtorExpr> children;
  children.push_back(XmlAttribute("id", 0));
  children.push_back(XmlAttribute("name", 1));
  children.push_back(XmlForestItem("HIRE", 2));
  children.push_back(XmlForestItem("department", 3));
  return XmlElement("Emp", std::move(children));
}

TEST(ConstructorTest, PaperExampleOutput) {
  auto cc = CompiledConstructor::Compile(PaperEmpConstructor()).MoveValue();
  EXPECT_EQ(cc.arg_count(), 4);
  std::string out;
  ASSERT_TRUE(cc.SerializeRow({"1234", "John Doe", "1998-02-01", "Accting"},
                              &out)
                  .ok());
  EXPECT_EQ(out,
            "<Emp id=\"1234\" name=\"John Doe\">"
            "<HIRE>1998-02-01</HIRE>"
            "<department>Accting</department></Emp>");
}

TEST(ConstructorTest, MatchesNaiveEvaluation) {
  CtorExpr expr = PaperEmpConstructor();
  auto cc = CompiledConstructor::Compile(expr).MoveValue();
  Random rng(3);
  auto rows = workload::GenEmployees(&rng, 50);
  for (const auto& row : rows) {
    std::string name = row.fname + " " + row.lname;
    std::vector<Slice> args = {row.id, name, row.hire, row.dept};
    std::string fast, naive;
    ASSERT_TRUE(cc.SerializeRow(args, &fast).ok());
    ASSERT_TRUE(NaiveEvaluate(expr, args, &naive).ok());
    EXPECT_EQ(fast, naive);
  }
}

TEST(ConstructorTest, EscapingInBothPaths) {
  CtorExpr expr = XmlElement(
      "e", [] {
        std::vector<CtorExpr> v;
        v.push_back(XmlAttribute("a", 0));
        v.push_back(Arg(1));
        return v;
      }());
  auto cc = CompiledConstructor::Compile(expr).MoveValue();
  std::vector<Slice> args = {"say \"hi\" & <bye>", "body <&> text"};
  std::string fast, naive;
  ASSERT_TRUE(cc.SerializeRow(args, &fast).ok());
  ASSERT_TRUE(NaiveEvaluate(expr, args, &naive).ok());
  EXPECT_EQ(fast, naive);
  EXPECT_EQ(fast,
            "<e a=\"say &quot;hi&quot; &amp; &lt;bye&gt;\">"
            "body &lt;&amp;&gt; text</e>");
}

TEST(ConstructorTest, NestedElementsAndConcat) {
  std::vector<CtorExpr> inner;
  inner.push_back(ConstText("prefix-"));
  inner.push_back(Arg(0));
  std::vector<CtorExpr> outer;
  outer.push_back(XmlElement("inner", std::move(inner)));
  outer.push_back(XmlElement("other", {}));
  CtorExpr expr = XmlConcat([&] {
    std::vector<CtorExpr> v;
    v.push_back(XmlElement("outer", std::move(outer)));
    return v;
  }());
  auto cc = CompiledConstructor::Compile(expr).MoveValue();
  std::string out;
  ASSERT_TRUE(cc.SerializeRow({"V"}, &out).ok());
  EXPECT_EQ(out, "<outer><inner>prefix-V</inner><other></other></outer>");
}

TEST(ConstructorTest, InvalidShapesRejected) {
  // Attribute outside an element.
  EXPECT_FALSE(CompiledConstructor::Compile(XmlAttribute("x", 0)).ok());
  // Too few arguments at evaluation time.
  auto cc = CompiledConstructor::Compile(PaperEmpConstructor()).MoveValue();
  std::string out;
  EXPECT_FALSE(cc.SerializeRow({"only", "two"}, &out).ok());
}

TEST(ConstructorTest, EmitTokensParsesIdentically) {
  auto cc = CompiledConstructor::Compile(PaperEmpConstructor()).MoveValue();
  NameDictionary dict;
  TokenWriter via_tokens;
  ASSERT_TRUE(cc.EmitTokens({"1", "N N", "2001-05-05", "Sales"}, &dict,
                            &via_tokens)
                  .ok());
  // Parsing the serialized XML must produce the same token stream (the
  // pipeline skips the text round trip).
  std::string xml;
  ASSERT_TRUE(cc.SerializeRow({"1", "N N", "2001-05-05", "Sales"}, &xml).ok());
  Parser parser(&dict);
  TokenWriter via_text;
  ASSERT_TRUE(parser.Parse(xml, &via_text).ok());
  // via_text has document wrapper events; strip them for comparison.
  std::string body = via_text.buffer().substr(1, via_text.buffer().size() - 2);
  EXPECT_EQ(via_tokens.buffer(), body);
}

TEST(ArgRecordTest, RoundTrip) {
  std::string record = MakeArgRecord({"one", "", "three"});
  std::vector<Slice> out;
  ASSERT_TRUE(SplitArgRecord(record, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].ToString(), "one");
  EXPECT_TRUE(out[1].empty());
  EXPECT_EQ(out[2].ToString(), "three");
}

class XmlAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tmpl_ = std::make_unique<CompiledConstructor>(
        CompiledConstructor::Compile(PaperEmpConstructor()).MoveValue());
  }

  std::string RowRecord(const workload::EmployeeRow& row) {
    std::string name = row.fname + " " + row.lname;
    return MakeArgRecord({row.id, name, row.hire, row.dept});
  }

  std::unique_ptr<CompiledConstructor> tmpl_;
};

TEST_F(XmlAggTest, SortsByKey) {
  XmlAgg agg(tmpl_.get());
  agg.Add("b", MakeArgRecord({"2", "B B", "2000-01-01", "HR"}));
  agg.Add("a", MakeArgRecord({"1", "A A", "2000-01-01", "HR"}));
  agg.Add("c", MakeArgRecord({"3", "C C", "2000-01-01", "HR"}));
  EXPECT_EQ(agg.row_count(), 3u);
  std::string out;
  ASSERT_TRUE(agg.Finish(&out).ok());
  EXPECT_LT(out.find("id=\"1\""), out.find("id=\"2\""));
  EXPECT_LT(out.find("id=\"2\""), out.find("id=\"3\""));
}

TEST_F(XmlAggTest, QuicksortMatchesExternalSortBaseline) {
  Random rng(9);
  auto rows = workload::GenEmployees(&rng, 500);
  XmlAgg agg(tmpl_.get());
  ExternalSortAgg ext(tmpl_.get(), /*run_limit=*/64);
  for (const auto& row : rows) {
    // Sort by hire date; duplicates exercise stability-independence (equal
    // keys may order differently, so make keys unique with the id).
    std::string key = row.hire + "#" + row.id;
    agg.Add(key, RowRecord(row));
    ext.Add(key, RowRecord(row));
  }
  std::string fast, baseline;
  ASSERT_TRUE(agg.Finish(&fast).ok());
  ASSERT_TRUE(ext.Finish(&baseline).ok());
  EXPECT_EQ(fast, baseline);
}

TEST_F(XmlAggTest, PresortedAndReversedInputs) {
  for (bool reversed : {false, true}) {
    XmlAgg agg(tmpl_.get());
    const int kN = 2000;
    for (int i = 0; i < kN; i++) {
      int v = reversed ? kN - i : i;
      char key[16];
      std::snprintf(key, sizeof(key), "%08d", v);
      agg.Add(key, MakeArgRecord({std::to_string(v), "N N", "2000-01-01",
                                  "HR"}));
    }
    std::string out;
    ASSERT_TRUE(agg.Finish(&out).ok());
    // Spot-check global order.
    EXPECT_LT(out.find(reversed ? "id=\"1\"" : "id=\"0\""),
              out.find("id=\"1999\""));
  }
}

TEST_F(XmlAggTest, EmptyGroupProducesEmptyOutput) {
  XmlAgg agg(tmpl_.get());
  std::string out;
  ASSERT_TRUE(agg.Finish(&out).ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace construct
}  // namespace xdb
