// XPath tests: lexer/parser, parent rewrite, containment, QueryTree
// compilation, QuickXScan correctness (fixed cases, Table 1 propagation
// scenarios, and randomized differential testing against the DOM
// evaluator), and the naive streaming baseline.
#include <gtest/gtest.h>

#include "common/random.h"
#include "runtime/virtual_sax.h"
#include "util/workload.h"
#include "xdm/dom_tree.h"
#include "xml/node_id.h"
#include "xml/parser.h"
#include "xpath/dom_evaluator.h"
#include "xpath/naive_stream.h"
#include "xpath/parser.h"
#include "xpath/path_containment.h"
#include "xpath/quickxscan.h"

namespace xdb {
namespace xpath {
namespace {

TEST(XPathParserTest, BasicPaths) {
  auto p = ParsePath("/a/b/c").MoveValue();
  EXPECT_TRUE(p.absolute);
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[0].name, "a");

  p = ParsePath("//s").MoveValue();
  EXPECT_TRUE(p.absolute);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);

  p = ParsePath("/a//b/@id").MoveValue();
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, Axis::kAttribute);
  EXPECT_EQ(p.steps[2].name, "id");
}

TEST(XPathParserTest, KindTestsAndWildcards) {
  auto p = ParsePath("/a/*/text()").MoveValue();
  EXPECT_EQ(p.steps[1].test, NodeTest::kAnyName);
  EXPECT_EQ(p.steps[2].test, NodeTest::kText);
  p = ParsePath("/a/node()").MoveValue();
  EXPECT_EQ(p.steps[1].test, NodeTest::kAnyKind);
  p = ParsePath("/a/comment()").MoveValue();
  EXPECT_EQ(p.steps[1].test, NodeTest::kComment);
}

TEST(XPathParserTest, ExplicitAxes) {
  auto p = ParsePath("/child::a/descendant::b/self::c").MoveValue();
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, Axis::kSelf);
}

TEST(XPathParserTest, DoubleSlashAttribute) {
  auto p = ParsePath("//@id").MoveValue();
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(p.steps[0].test, NodeTest::kAnyKind);
  EXPECT_EQ(p.steps[1].axis, Axis::kAttribute);
}

TEST(XPathParserTest, Predicates) {
  auto p = ParsePath("//s[.//t = \"XML\" and f/@w > 300]").MoveValue();
  ASSERT_EQ(p.steps.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  const Expr& e = *p.steps[0].predicates[0];
  EXPECT_EQ(e.kind, Expr::Kind::kAnd);
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kCompare);
  EXPECT_EQ(e.lhs->op, CompOp::kEq);
  EXPECT_EQ(e.lhs->string, "XML");
  EXPECT_EQ(e.rhs->kind, Expr::Kind::kCompare);
  EXPECT_EQ(e.rhs->op, CompOp::kGt);
  EXPECT_TRUE(e.rhs->literal_is_number);
  EXPECT_DOUBLE_EQ(e.rhs->number, 300);
}

TEST(XPathParserTest, NotAndOrNesting) {
  auto p = ParsePath("/a[not(b) or (c and d > 1)]").MoveValue();
  const Expr& e = *p.steps[0].predicates[0];
  EXPECT_EQ(e.kind, Expr::Kind::kOr);
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kNot);
  EXPECT_EQ(e.rhs->kind, Expr::Kind::kAnd);
}

TEST(XPathParserTest, ReversedComparison) {
  auto p = ParsePath("/a[100 < b]").MoveValue();
  const Expr& e = *p.steps[0].predicates[0];
  EXPECT_EQ(e.kind, Expr::Kind::kCompare);
  EXPECT_EQ(e.op, CompOp::kGt);  // mirrored: b > 100
  EXPECT_DOUBLE_EQ(e.number, 100);
}

TEST(XPathParserTest, ParentRewrite) {
  // "/a/b/.." == "/a[b]"
  auto p = ParsePath("/a/b/..").MoveValue();
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].name, "a");
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  EXPECT_EQ(p.steps[0].predicates[0]->kind, Expr::Kind::kExists);
  // Not rewritable: leading or after-descendant parent steps.
  EXPECT_FALSE(ParsePath("../x").ok());
  EXPECT_FALSE(ParsePath("//a/..").ok());
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("/a[").ok());
  EXPECT_FALSE(ParsePath("/a]").ok());
  EXPECT_FALSE(ParsePath("/a[b >]").ok());
  EXPECT_FALSE(ParsePath("/a/following::b").ok());
  EXPECT_FALSE(ParsePath("/a b").ok());
}

TEST(XPathParserTest, ToStringReparses) {
  for (const char* expr :
       {"/a/b/c", "//s", "/a//b/@id",
        "/Catalog/Categories/Product[RegPrice > 100]",
        "//s[.//t = \"XML\" and f/@w > 300]", "/a[not(b)]/*"}) {
    auto p1 = ParsePath(expr).MoveValue();
    std::string rendered = p1.ToString();
    auto p2 = ParsePath(rendered);
    ASSERT_TRUE(p2.ok()) << expr << " -> " << rendered;
    EXPECT_EQ(p2.value().ToString(), rendered) << expr;
  }
}

TEST(ContainmentTest, Table2Examples) {
  auto P = [](const char* s) { return ParsePath(s).MoveValue(); };
  // Case 1: exact match.
  EXPECT_EQ(ClassifyIndexMatch(P("/Catalog/Categories/Product/RegPrice"),
                               P("/Catalog/Categories/Product/RegPrice")),
            IndexMatch::kExact);
  // Case 2: containment -> filtering.
  EXPECT_EQ(ClassifyIndexMatch(P("//Discount"),
                               P("/Catalog/Categories/Product/Discount")),
            IndexMatch::kContains);
  // Non-containment.
  EXPECT_EQ(ClassifyIndexMatch(P("/Catalog/Categories/Product/RegPrice"),
                               P("/Catalog/Categories/Product/Discount")),
            IndexMatch::kNone);
}

TEST(ContainmentTest, DescendantAndWildcardCases) {
  auto P = [](const char* s) { return ParsePath(s).MoveValue(); };
  EXPECT_TRUE(PathContains(P("//b"), P("/a/b")));
  EXPECT_TRUE(PathContains(P("//b"), P("/a//c/b")));
  EXPECT_TRUE(PathContains(P("/a//b"), P("/a/x/y/b")));
  EXPECT_FALSE(PathContains(P("/a/b"), P("/a//b")));  // // is wider
  EXPECT_TRUE(PathContains(P("/a/*"), P("/a/b")));
  EXPECT_FALSE(PathContains(P("/a/b"), P("/a/*")));
  EXPECT_TRUE(PathContains(P("//*/b"), P("/a/c/b")));
  EXPECT_FALSE(PathContains(P("//c//b"), P("/a/c/x")));
  // Attributes only match attributes.
  EXPECT_TRUE(PathContains(P("//@id"), P("/a/b/@id")));
  EXPECT_FALSE(PathContains(P("//id"), P("/a/b/@id")));
}

TEST(ContainmentTest, IndexablePathShapes) {
  auto P = [](const char* s) { return ParsePath(s).MoveValue(); };
  EXPECT_TRUE(IsIndexablePath(P("/catalog//productname")));
  EXPECT_TRUE(IsIndexablePath(P("//Discount")));
  EXPECT_TRUE(IsIndexablePath(P("/a/b/@id")));
  EXPECT_FALSE(IsIndexablePath(P("/a[b]/c")));     // predicate
  EXPECT_FALSE(IsIndexablePath(P("/a/text()")));   // kind test
}

// --- evaluation harness ---

struct EvalHarness {
  NameDictionary dict;

  // Evaluate with QuickXScan over a parsed token stream.
  NodeSequence Quick(const std::string& xml, const std::string& expr,
                     bool want_values = false,
                     QuickXScanStats* stats = nullptr) {
    Parser parser(&dict);
    TokenWriter tokens;
    Status st = parser.Parse(xml, &tokens);
    EXPECT_TRUE(st.ok()) << st.ToString();
    TokenStreamSource source(tokens.data());
    auto res = EvaluateXPath(expr, dict, &source, 1, want_values, stats);
    EXPECT_TRUE(res.ok()) << expr << ": " << res.status().ToString();
    return res.ok() ? res.MoveValue() : NodeSequence{};
  }

  NodeSequence Dom(const std::string& xml, const std::string& expr,
                   bool want_values = false) {
    Parser parser(&dict);
    TokenWriter tokens;
    Status st = parser.Parse(xml, &tokens);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto tree = DomTree::FromTokens(tokens.data()).MoveValue();
    auto path = ParsePath(expr).MoveValue();
    DomEvaluator eval(tree.get(), &dict, 1);
    auto res = eval.Evaluate(path, want_values);
    EXPECT_TRUE(res.ok()) << expr << ": " << res.status().ToString();
    return res.ok() ? res.MoveValue() : NodeSequence{};
  }

  // Both evaluators must agree.
  NodeSequence Both(const std::string& xml, const std::string& expr) {
    NodeSequence q = Quick(xml, expr);
    NodeSequence d = Dom(xml, expr);
    EXPECT_EQ(Render(q), Render(d)) << "query: " << expr << "\nxml: " << xml;
    return q;
  }

  static std::string Render(const NodeSequence& seq) {
    std::string out;
    for (const auto& r : seq) {
      out += nodeid::ToString(r.node_id);
      out += " ";
    }
    return out;
  }
};

TEST(QuickXScanTest, SimpleChildPaths) {
  EvalHarness h;
  EXPECT_EQ(h.Both("<a><b/><c/><b/></a>", "/a/b").size(), 2u);
  EXPECT_EQ(h.Both("<a><b/><c/></a>", "/a/c").size(), 1u);
  EXPECT_EQ(h.Both("<a><b/></a>", "/x").size(), 0u);
  EXPECT_EQ(h.Both("<a><b><c/></b></a>", "/a/b/c").size(), 1u);
  EXPECT_EQ(h.Both("<a><b><c/></b></a>", "/a/c").size(), 0u);
}

TEST(QuickXScanTest, DescendantPaths) {
  EvalHarness h;
  EXPECT_EQ(h.Both("<a><b/><x><b/><y><b/></y></x></a>", "//b").size(), 3u);
  EXPECT_EQ(h.Both("<a><x><b><b/></b></x></a>", "/a//b").size(), 2u);
  EXPECT_EQ(h.Both("<a><b><a><b/></a></b></a>", "//a//b").size(), 2u);
}

TEST(QuickXScanTest, AttributesAndKindTests) {
  EvalHarness h;
  EXPECT_EQ(h.Both("<a id=\"1\"><b id=\"2\"/><c x=\"3\"/></a>", "//@id").size(),
            2u);
  EXPECT_EQ(h.Both("<a id=\"1\"><b id=\"2\"/></a>", "/a/@id").size(), 1u);
  EXPECT_EQ(h.Both("<a>t1<b>t2</b>t3</a>", "/a/text()").size(), 2u);
  EXPECT_EQ(h.Both("<a>t1<b>t2</b></a>", "//text()").size(), 2u);
  EXPECT_EQ(h.Both("<a><b/><!--c--></a>", "/a/node()").size(), 2u);
  EXPECT_EQ(h.Both("<a><!--one--><b><!--two--></b></a>", "//comment()").size(),
            2u);
  EXPECT_EQ(h.Both("<a><b/><c/></a>", "/a/*").size(), 2u);
}

TEST(QuickXScanTest, ExistencePredicates) {
  EvalHarness h;
  EXPECT_EQ(h.Both("<a><s><t/></s><s/></a>", "//s[t]").size(), 1u);
  EXPECT_EQ(
      h.Both("<a><s><x><t/></x></s><s><t/></s><s/></a>", "//s[.//t]").size(),
      2u);
  EXPECT_EQ(h.Both("<a><s b=\"1\"/><s/></a>", "//s[@b]").size(), 1u);
  EXPECT_EQ(h.Both("<a><s><t/></s><s/></a>", "//s[not(t)]").size(), 1u);
}

TEST(QuickXScanTest, ComparisonPredicates) {
  EvalHarness h;
  const char* doc =
      "<cat><p><price>100</price><name>alpha</name></p>"
      "<p><price>250</price><name>beta</name></p>"
      "<p><price>50</price></p></cat>";
  EXPECT_EQ(h.Both(doc, "/cat/p[price > 90]").size(), 2u);
  EXPECT_EQ(h.Both(doc, "/cat/p[price >= 250]").size(), 1u);
  EXPECT_EQ(h.Both(doc, "/cat/p[price < 60]").size(), 1u);
  EXPECT_EQ(h.Both(doc, "/cat/p[price = 100]").size(), 1u);
  EXPECT_EQ(h.Both(doc, "/cat/p[name = \"beta\"]").size(), 1u);
  EXPECT_EQ(h.Both(doc, "/cat/p[name != \"beta\"]").size(), 1u);
  EXPECT_EQ(h.Both(doc, "/cat/p[price > 90 and name = \"alpha\"]").size(), 1u);
  EXPECT_EQ(h.Both(doc, "/cat/p[price > 1000 or name = \"alpha\"]").size(),
            1u);
}

TEST(QuickXScanTest, PaperFigure6Query) {
  EvalHarness h;
  // //s[.//t = "XML" and f/@w > 300] over a document shaped like Fig 6(b).
  const char* doc =
      "<r><x><s><p><t>XML</t></p><f w=\"400\"/></s></x>"
      "<s><t>other</t><f w=\"500\"/></s>"
      "<s><t>XML</t><f w=\"100\"/></s></r>";
  NodeSequence res = h.Both(doc, "//s[.//t = \"XML\" and f/@w > 300]");
  EXPECT_EQ(res.size(), 1u);
}

TEST(QuickXScanTest, RecursiveNestingTransitivity) {
  EvalHarness h;
  const char* doc = "<a><b><a><b/></a></b><b/></a>";
  EXPECT_EQ(h.Both(doc, "//a//b").size(), 3u);
  EXPECT_EQ(h.Both(doc, "//a/b").size(), 3u);
  EXPECT_EQ(h.Both(doc, "//a[.//b]").size(), 2u);
  // Deeply recursive //a//a//a.
  std::string deep = workload::GenRecursiveXml(8, 1);
  h.Both(deep, "//a//a//a");
  h.Both(deep, "//a//a//a//a//a");
}

TEST(QuickXScanTest, Table1PropagationScenarios) {
  EvalHarness h;
  // Case 1/2 (a/b with one or more a's).
  EXPECT_EQ(h.Both("<r><a><b/><b/></a></r>", "//a/b").size(), 2u);
  EXPECT_EQ(h.Both("<r><a><b/></a><a><b/></a></r>", "//a/b").size(), 2u);
  // Case 3 (a//b, nested b's: t propagates sideways then up).
  EXPECT_EQ(h.Both("<r><a><b><b/></b></a></r>", "//a//b").size(), 2u);
  // Case 4 (both a and b nested).
  EXPECT_EQ(h.Both("<r><a><b><a><b/></a><b/></b></a></r>", "//a//b").size(),
            3u);
  // Values used in predicates across nesting.
  EXPECT_EQ(
      h.Both("<r><a><b>no</b><a><b>XML</b></a></a></r>", "//a[.//b = \"XML\"]")
          .size(),
      2u);
  EXPECT_EQ(
      h.Both("<r><a><b>XML</b><a><b>no</b></a></a></r>", "//a[.//b = \"XML\"]")
          .size(),
      1u);
}

TEST(QuickXScanTest, SelfAndDescendantOrSelfAxes) {
  EvalHarness h;
  EXPECT_EQ(h.Both("<a><b/></a>", "/a/self::a").size(), 1u);
  EXPECT_EQ(h.Both("<a><b/></a>", "/a/self::b").size(), 0u);
  EXPECT_EQ(h.Both("<a><a><a/></a></a>", "/a/descendant-or-self::a").size(),
            3u);
}

TEST(QuickXScanTest, ResultValues) {
  EvalHarness h;
  NodeSequence res = h.Quick("<a><b>one<c>two</c></b></a>", "/a/b",
                             /*want_values=*/true);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].string_value, "onetwo");
  res = h.Quick("<a i=\"42\"/>", "/a/@i", true);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].string_value, "42");
}

TEST(QuickXScanTest, RelativePathsUseContext) {
  EvalHarness h;
  // Relative path over a whole-document stream: context = root element.
  NodeSequence res = h.Quick("<p><price>10</price></p>", "price");
  EXPECT_EQ(res.size(), 1u);
  res = h.Quick("<p><price>10</price></p>", ".");
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].node_id, nodeid::ChildId(1));
}

TEST(QuickXScanTest, StateBoundIsQTimesR) {
  EvalHarness h;
  QuickXScanStats stats;
  std::string deep = workload::GenRecursiveXml(20, 2);
  h.Quick(deep, "//a//a", false, &stats);
  // Live instances stay around |Q| * r, far below total instances created.
  EXPECT_GT(stats.instances_created, 40u);
  EXPECT_LE(stats.peak_live_instances, 4u * 21u);
}

TEST(QuickXScanTest, RandomizedDifferentialAgainstDom) {
  EvalHarness h;
  Random rng(2024);
  const char* queries[] = {
      "//a",            "//a/b",       "/a//b",         "//a//b",
      "//*",            "//a/@v",      "//@w",          "/a/*/c",
      "//b[c]",         "//a[.//b]",   "//a[@v]",       "//b[not(d)]",
      "//a[b and c]",   "//a[b or d]", "//*[@x > 500]", "//a//b//c",
      "//b[. = \"7\"]", "//a[b]/c",    "//a/text()",    "//a[not(.//e)]",
  };
  int nonempty = 0;
  for (int iter = 0; iter < 120; iter++) {
    std::string xml = workload::GenRandomXml(&rng, 70);
    const char* q = queries[iter % (sizeof(queries) / sizeof(queries[0]))];
    NodeSequence res = h.Both(xml, q);
    if (!res.empty()) nonempty++;
  }
  // Sanity: the sweep exercised real matches, not just empty results.
  EXPECT_GT(nonempty, 20);
}

TEST(NaiveStreamTest, MatchesQuickXScanOnLinearPaths) {
  EvalHarness h;
  Random rng(404);
  const char* queries[] = {"//a", "/a/b", "//a//b", "/a//b/c", "//a/@v",
                           "//*", "/a/*"};
  for (int iter = 0; iter < 60; iter++) {
    std::string xml = workload::GenRandomXml(&rng, 60);
    const char* q = queries[iter % (sizeof(queries) / sizeof(queries[0]))];
    NodeSequence expected = h.Quick(xml, q);

    Parser parser(&h.dict);
    TokenWriter tokens;
    ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
    auto path = ParsePath(q).MoveValue();
    NaiveStreamEvaluator naive(&path, &h.dict, 1);
    TokenStreamSource source(tokens.data());
    NodeSequence actual;
    Status st = naive.Run(&source, &actual);
    ASSERT_TRUE(st.ok()) << q << ": " << st.ToString();
    EXPECT_EQ(EvalHarness::Render(actual), EvalHarness::Render(expected))
        << q << "\n"
        << xml;
  }
}

TEST(NaiveStreamTest, StateBlowupOnRecursiveDocs) {
  EvalHarness h;
  std::string deep = workload::GenRecursiveXml(24, 1);
  Parser parser(&h.dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse(deep, &tokens).ok());
  auto path = ParsePath("//a//a//a").MoveValue();
  NaiveStreamEvaluator naive(&path, &h.dict, 1);
  TokenStreamSource source(tokens.data());
  NodeSequence out;
  ASSERT_TRUE(naive.Run(&source, &out).ok());

  QuickXScanStats qstats;
  h.Quick(deep, "//a//a//a", false, &qstats);
  // The naive evaluator's live configurations grow combinatorially with
  // nesting depth; QuickXScan's live instances stay linear in r.
  EXPECT_GT(naive.stats().peak_live_configs, 4 * qstats.peak_live_instances);
}

TEST(NaiveStreamTest, RejectsNonLinear) {
  EvalHarness h;
  auto path = ParsePath("//a[b]").MoveValue();
  NaiveStreamEvaluator naive(&path, &h.dict, 1);
  TokenWriter tokens;
  Parser parser(&h.dict);
  ASSERT_TRUE(parser.Parse("<a/>", &tokens).ok());
  TokenStreamSource source(tokens.data());
  NodeSequence out;
  EXPECT_EQ(naive.Run(&source, &out).code(), Status::Code::kNotSupported);
}

TEST(DomEvaluatorTest, ParentAxisNative) {
  EvalHarness h;
  Parser parser(&h.dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a><b/><c/></a>", &tokens).ok());
  auto tree = DomTree::FromTokens(tokens.data()).MoveValue();
  Path path;
  path.absolute = true;
  Step s1;
  s1.axis = Axis::kChild;
  s1.test = NodeTest::kName;
  s1.name = "a";
  Step s2;
  s2.axis = Axis::kChild;
  s2.test = NodeTest::kName;
  s2.name = "b";
  Step s3;
  s3.axis = Axis::kParent;
  s3.test = NodeTest::kAnyKind;
  path.steps.push_back(std::move(s1));
  path.steps.push_back(std::move(s2));
  path.steps.push_back(std::move(s3));
  DomEvaluator eval(tree.get(), &h.dict, 1);
  auto res = eval.Evaluate(path, false).MoveValue();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].node_id, nodeid::ChildId(1));  // back to <a>
}

TEST(QueryTreeTest, CompileShapes) {
  NameDictionary dict;
  dict.Intern("s");
  dict.Intern("t");
  dict.Intern("f");
  dict.Intern("w");
  auto path = ParsePath("//s[.//t = \"XML\" and f/@w > 300]").MoveValue();
  auto tree = QueryTree::Compile(path, dict, false).MoveValue();
  // root + s + t + f + @w = 5 nodes.
  EXPECT_EQ(tree->nodes().size(), 6u);
  const QueryNode* s = tree->result_node();
  EXPECT_TRUE(s->is_result);
  EXPECT_EQ(s->branch_count, 2);
  EXPECT_FALSE(s->pred.ops.empty());
  // Branch leaves carry the comparisons.
  int compares = 0;
  for (const auto& n : tree->nodes())
    if (n->has_compare) compares++;
  EXPECT_EQ(compares, 2);
}

TEST(QueryTreeTest, UnknownNamesNeverMatch) {
  EvalHarness h;
  // "zzz" is not in the dictionary: the query compiles and returns empty.
  EXPECT_EQ(h.Quick("<a><b/></a>", "//zzz").size(), 0u);
}

}  // namespace
}  // namespace xpath
}  // namespace xdb
