// Concurrency-control tests: MGL compatibility, DocID locks, node-ID prefix
// locks (the subdocument protocol of Section 5.2), and document-level
// multiversioning (Section 5.1).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "btree/btree.h"
#include "cc/lock_manager.h"
#include "cc/transaction.h"
#include "cc/version_manager.h"
#include "pack/record_builder.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"
#include "xml/node_id.h"
#include "xml/parser.h"

namespace xdb {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  using L = LockMode;
  EXPECT_TRUE(LockModesCompatible(L::kIS, L::kIX));
  EXPECT_TRUE(LockModesCompatible(L::kIS, L::kS));
  EXPECT_TRUE(LockModesCompatible(L::kIS, L::kSIX));
  EXPECT_FALSE(LockModesCompatible(L::kIS, L::kX));
  EXPECT_TRUE(LockModesCompatible(L::kIX, L::kIX));
  EXPECT_FALSE(LockModesCompatible(L::kIX, L::kS));
  EXPECT_FALSE(LockModesCompatible(L::kS, L::kSIX));
  EXPECT_TRUE(LockModesCompatible(L::kS, L::kS));
  EXPECT_FALSE(LockModesCompatible(L::kX, L::kX));
}

TEST(LockModeTest, CoversAndSupremum) {
  using L = LockMode;
  EXPECT_TRUE(LockModeCovers(L::kX, L::kS));
  EXPECT_TRUE(LockModeCovers(L::kSIX, L::kIX));
  EXPECT_FALSE(LockModeCovers(L::kS, L::kIX));
  EXPECT_EQ(LockModeSupremum(L::kS, L::kIX), L::kSIX);
  EXPECT_EQ(LockModeSupremum(L::kS, L::kX), L::kX);
  EXPECT_EQ(LockModeSupremum(L::kIS, L::kS), L::kS);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.LockDocument(1, 10, LockMode::kS).ok());
  EXPECT_TRUE(lm.LockDocument(2, 10, LockMode::kS).ok());
  EXPECT_TRUE(lm.LockDocument(3, 10, LockMode::kIS).ok());
}

TEST(LockManagerTest, ExclusiveBlocksAndTimesOut) {
  LockManager lm(std::chrono::milliseconds(50));
  ASSERT_TRUE(lm.LockDocument(1, 10, LockMode::kS).ok());
  Status st = lm.LockDocument(2, 10, LockMode::kX);
  EXPECT_TRUE(st.IsDeadlock());
  EXPECT_GE(lm.stats().timeouts, 1u);
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager lm(std::chrono::milliseconds(2000));
  ASSERT_TRUE(lm.LockDocument(1, 10, LockMode::kX).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status st = lm.LockDocument(2, 10, LockMode::kX);
    acquired = st.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(lm.stats().waits, 1u);
}

TEST(LockManagerTest, UpgradeSharedToExclusive) {
  LockManager lm(std::chrono::milliseconds(50));
  ASSERT_TRUE(lm.LockDocument(1, 10, LockMode::kS).ok());
  // Same transaction upgrades its own lock.
  EXPECT_TRUE(lm.LockDocument(1, 10, LockMode::kX).ok());
  // Now others are blocked entirely.
  EXPECT_TRUE(lm.LockDocument(2, 10, LockMode::kS).IsDeadlock());
}

TEST(LockManagerTest, DifferentDocumentsDontConflict) {
  LockManager lm(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.LockDocument(1, 10, LockMode::kX).ok());
  EXPECT_TRUE(lm.LockDocument(2, 11, LockMode::kX).ok());
}

// Classic two-transaction cross request. The waits-for cycle check must
// pick a victim immediately — the 10 s timeout here is deliberately huge so
// a fall-back-to-timeout implementation fails the elapsed-time assertion.
TEST(LockManagerTest, WaitsForCycleVictimizedImmediately) {
  LockManager lm(std::chrono::milliseconds(10000));
  ASSERT_TRUE(lm.LockDocument(1, 10, LockMode::kX).ok());
  ASSERT_TRUE(lm.LockDocument(2, 11, LockMode::kX).ok());

  auto start = std::chrono::steady_clock::now();
  Status s1, s2;
  std::thread t1([&] {
    s1 = lm.LockDocument(1, 11, LockMode::kX);  // blocks on txn 2
    if (!s1.ok()) lm.ReleaseAll(1);             // victim aborts
  });
  std::thread t2([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    s2 = lm.LockDocument(2, 10, LockMode::kX);  // closes the cycle
    if (!s2.ok()) lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  // Exactly one victim; the survivor is granted once the victim releases.
  EXPECT_NE(s1.ok(), s2.ok());
  EXPECT_TRUE((s1.ok() ? s2 : s1).IsDeadlock());
  EXPECT_GE(lm.stats().deadlocks, 1u);
  EXPECT_EQ(lm.stats().timeouts, 0u);
  EXPECT_LT(elapsed.count(), 5000) << "deadlock resolved by timeout, not by "
                                      "cycle detection";
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

// The waits-for graph spans both lock types: a document wait and a node wait
// can close one cycle.
TEST(LockManagerTest, MixedDocAndNodeLockCycleDetected) {
  LockManager lm(std::chrono::milliseconds(10000));
  std::string node = nodeid::ChildId(1);
  ASSERT_TRUE(lm.LockDocument(1, 10, LockMode::kX).ok());
  ASSERT_TRUE(lm.LockNode(2, 11, node, LockMode::kX).ok());

  Status s1, s2;
  std::thread t1([&] {
    s1 = lm.LockNode(1, 11, node, LockMode::kX);
    if (!s1.ok()) lm.ReleaseAll(1);
  });
  std::thread t2([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    s2 = lm.LockDocument(2, 10, LockMode::kX);
    if (!s2.ok()) lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();

  EXPECT_NE(s1.ok(), s2.ok());
  EXPECT_TRUE((s1.ok() ? s2 : s1).IsDeadlock());
  EXPECT_GE(lm.stats().deadlocks, 1u);
  EXPECT_EQ(lm.stats().timeouts, 0u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(NodeLockTest, DisjointSubtreesCoexist) {
  LockManager lm(std::chrono::milliseconds(50));
  std::string left = nodeid::ChildId(1) + nodeid::ChildId(1);   // /1/1
  std::string right = nodeid::ChildId(1) + nodeid::ChildId(2);  // /1/2
  EXPECT_TRUE(lm.LockNode(1, 10, left, LockMode::kX).ok());
  EXPECT_TRUE(lm.LockNode(2, 10, right, LockMode::kX).ok());
}

TEST(NodeLockTest, AncestorDescendantConflict) {
  LockManager lm(std::chrono::milliseconds(50));
  std::string parent = nodeid::ChildId(1);
  std::string child = parent + nodeid::ChildId(2);
  ASSERT_TRUE(lm.LockNode(1, 10, parent, LockMode::kX).ok());
  // A descendant lock by another transaction conflicts (prefix test).
  EXPECT_TRUE(lm.LockNode(2, 10, child, LockMode::kX).IsDeadlock());
  // And the reverse: descendant held, ancestor requested.
  lm.ReleaseAll(1);
  ASSERT_TRUE(lm.LockNode(1, 10, child, LockMode::kX).ok());
  EXPECT_TRUE(lm.LockNode(2, 10, parent, LockMode::kX).IsDeadlock());
}

TEST(NodeLockTest, SharedOnOverlapIsFine) {
  LockManager lm(std::chrono::milliseconds(50));
  std::string parent = nodeid::ChildId(1);
  std::string child = parent + nodeid::ChildId(2);
  EXPECT_TRUE(lm.LockNode(1, 10, parent, LockMode::kS).ok());
  EXPECT_TRUE(lm.LockNode(2, 10, child, LockMode::kS).ok());
}

TEST(NodeLockTest, ReentrantViaAncestorLock) {
  LockManager lm(std::chrono::milliseconds(50));
  std::string parent = nodeid::ChildId(1);
  std::string child = parent + nodeid::ChildId(2);
  ASSERT_TRUE(lm.LockNode(1, 10, parent, LockMode::kX).ok());
  // The same transaction's descendant request is covered.
  EXPECT_TRUE(lm.LockNode(1, 10, child, LockMode::kX).ok());
  EXPECT_TRUE(lm.LockNode(1, 10, child, LockMode::kS).ok());
}

TEST(NodeLockTest, WholeTreeLockViaEmptyId) {
  LockManager lm(std::chrono::milliseconds(50));
  ASSERT_TRUE(lm.LockNode(1, 10, Slice(), LockMode::kX).ok());
  EXPECT_TRUE(
      lm.LockNode(2, 10, nodeid::ChildId(1), LockMode::kX).IsDeadlock());
}

class VersionFixture {
 public:
  VersionFixture() {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 128);
    tree_ = BTree::Create(bm_.get()).MoveValue();
    versions_ = std::make_unique<VersionManager>(tree_.get());
  }

  // Builds one packed record for a tiny document and registers it.
  Rid AddDocVersion(uint64_t doc, uint64_t ver, const std::string& xml,
                    Rid rid) {
    Parser parser(&dict_);
    TokenWriter tokens;
    EXPECT_TRUE(parser.Parse(xml, &tokens).ok());
    auto records = PackDocument(tokens.data()).MoveValue();
    EXPECT_EQ(records.size(), 1u);
    EXPECT_TRUE(versions_->AddRecord(doc, ver, records[0].bytes, rid).ok());
    return rid;
  }

  NameDictionary dict_;
  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<VersionManager> versions_;
};

TEST(VersionManagerTest, SnapshotSeesOnlyPublishedVersions) {
  VersionFixture fx;
  uint64_t v1 = fx.versions_->AllocateVersion();
  fx.AddDocVersion(1, v1, "<a>v1</a>", Rid{10, 0});
  // Unpublished: a snapshot taken now sees nothing.
  uint64_t snap0 = fx.versions_->BeginSnapshot();
  EXPECT_FALSE(fx.versions_->EffectiveVersion(1, snap0).ok());
  fx.versions_->Publish(v1);
  uint64_t snap1 = fx.versions_->BeginSnapshot();
  EXPECT_EQ(fx.versions_->EffectiveVersion(1, snap1).value(), v1);

  // A second version: old snapshot keeps seeing v1.
  uint64_t v2 = fx.versions_->AllocateVersion();
  fx.AddDocVersion(1, v2, "<a>v2</a>", Rid{20, 0});
  fx.versions_->Publish(v2);
  EXPECT_EQ(fx.versions_->EffectiveVersion(1, snap1).value(), v1);
  uint64_t snap2 = fx.versions_->BeginSnapshot();
  EXPECT_EQ(fx.versions_->EffectiveVersion(1, snap2).value(), v2);
  // Lookups resolve to version-appropriate RIDs.
  EXPECT_EQ(fx.versions_->Lookup(1, snap1, nodeid::ChildId(1)).value(),
            (Rid{10, 0}));
  EXPECT_EQ(fx.versions_->Lookup(1, snap2, nodeid::ChildId(1)).value(),
            (Rid{20, 0}));
}

TEST(VersionManagerTest, ListAndPurge) {
  VersionFixture fx;
  uint64_t v1 = fx.versions_->AllocateVersion();
  uint64_t v2 = fx.versions_->AllocateVersion();
  uint64_t v3 = fx.versions_->AllocateVersion();
  fx.AddDocVersion(1, v1, "<a>one</a>", Rid{10, 0});
  fx.AddDocVersion(1, v2, "<a>two</a>", Rid{20, 0});
  fx.AddDocVersion(1, v3, "<a>three</a>", Rid{30, 0});
  fx.versions_->Publish(v3);

  std::vector<Rid> rids;
  ASSERT_TRUE(
      fx.versions_->ListDocRecords(1, fx.versions_->BeginSnapshot(), &rids)
          .ok());
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], (Rid{30, 0}));

  // Purge everything older than v3: v1 and v2 entries go, reporting rids.
  std::vector<Rid> freed;
  ASSERT_TRUE(fx.versions_->PurgeVersionsBefore(1, v3, &freed).ok());
  ASSERT_EQ(freed.size(), 2u);
  EXPECT_FALSE(fx.versions_->EffectiveVersion(1, v2).ok());
  EXPECT_EQ(fx.versions_->EffectiveVersion(1, v3).value(), v3);
}

TEST(VersionManagerTest, EntryCopyBetweenVersions) {
  VersionFixture fx;
  uint64_t v1 = fx.versions_->AllocateVersion();
  fx.AddDocVersion(1, v1, "<a><b>x</b></a>", Rid{10, 0});
  fx.versions_->Publish(v1);
  std::vector<std::pair<std::string, Rid>> entries;
  ASSERT_TRUE(fx.versions_->ListVersionEntries(1, v1, &entries).ok());
  ASSERT_FALSE(entries.empty());
  uint64_t v2 = fx.versions_->AllocateVersion();
  for (auto& [upper, rid] : entries) {
    (void)rid;
    ASSERT_TRUE(fx.versions_->AddEntry(1, v2, upper, Rid{99, 0}).ok());
  }
  fx.versions_->Publish(v2);
  EXPECT_EQ(fx.versions_->Lookup(1, fx.versions_->BeginSnapshot(),
                                 nodeid::ChildId(1))
                .value(),
            (Rid{99, 0}));
}

TEST(TransactionManagerTest, CommitPublishesAbortDoesNot) {
  VersionFixture fx;
  LockManager lm(std::chrono::milliseconds(50));
  TransactionManager tm(&lm);

  Transaction writer = tm.Begin(IsolationMode::kLocking);
  uint64_t ver = tm.WriteVersion(&writer, fx.versions_.get()).value();
  fx.AddDocVersion(1, ver, "<a>committed</a>", Rid{10, 0});
  Transaction reader = tm.Begin(IsolationMode::kSnapshot);
  uint64_t snap_before = tm.Snapshot(&reader, fx.versions_.get());
  EXPECT_FALSE(fx.versions_->EffectiveVersion(1, snap_before).ok());
  ASSERT_TRUE(tm.Commit(&writer).ok());
  Transaction reader2 = tm.Begin(IsolationMode::kSnapshot);
  uint64_t snap_after = tm.Snapshot(&reader2, fx.versions_.get());
  EXPECT_TRUE(fx.versions_->EffectiveVersion(1, snap_after).ok());

  // Aborted writer's version never becomes visible.
  Transaction aborter = tm.Begin(IsolationMode::kLocking);
  uint64_t aver = tm.WriteVersion(&aborter, fx.versions_.get()).value();
  fx.AddDocVersion(2, aver, "<a>aborted</a>", Rid{11, 0});
  ASSERT_TRUE(tm.Abort(&aborter).ok());
  Transaction reader3 = tm.Begin(IsolationMode::kSnapshot);
  EXPECT_FALSE(
      fx.versions_
          ->EffectiveVersion(2, tm.Snapshot(&reader3, fx.versions_.get()))
          .ok());
}

TEST(TransactionManagerTest, DoubleCommitRejected) {
  LockManager lm;
  TransactionManager tm(&lm);
  Transaction txn = tm.Begin(IsolationMode::kLocking);
  ASSERT_TRUE(tm.Commit(&txn).ok());
  EXPECT_FALSE(tm.Commit(&txn).ok());
  EXPECT_FALSE(tm.Abort(&txn).ok());
}

TEST(ConcurrentLockingTest, ManyThreadsDisjointSubtrees) {
  LockManager lm(std::chrono::milliseconds(2000));
  constexpr int kThreads = 8;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      TxnId txn = static_cast<TxnId>(t + 1);
      std::string subtree =
          nodeid::ChildId(1) + nodeid::ChildId(static_cast<uint32_t>(t + 1));
      for (int iter = 0; iter < 50; iter++) {
        if (lm.LockDocument(txn, 5, LockMode::kIX).ok() &&
            lm.LockNode(txn, 5, subtree, LockMode::kX).ok()) {
          successes++;
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), kThreads * 50);
}

}  // namespace
}  // namespace xdb
