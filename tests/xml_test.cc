// Tests for the XML base layer: name dictionary, parser -> token stream,
// SAX parity, serializer round trips, entity handling, namespaces.
#include <gtest/gtest.h>

#include "common/random.h"
#include "util/workload.h"
#include "xml/name_dictionary.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/token_stream.h"
#include "runtime/iterators.h"
#include "runtime/virtual_sax.h"

namespace xdb {
namespace {

TEST(NameDictionaryTest, InternIsStableAndBidirectional) {
  NameDictionary dict;
  EXPECT_EQ(dict.Intern(""), kEmptyNameId);
  NameId a = dict.Intern("alpha");
  NameId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Name(a).value(), "alpha");
  EXPECT_EQ(dict.Lookup("beta"), b);
  EXPECT_EQ(dict.Lookup("gamma"), NameDictionary::kInvalidNameId);
  EXPECT_FALSE(dict.Name(9999).ok());
}

TEST(NameDictionaryTest, SaveLoadRoundTrip) {
  NameDictionary dict;
  NameId a = dict.Intern("one");
  NameId b = dict.Intern("two");
  std::string blob;
  dict.Save(&blob);
  NameDictionary loaded;
  ASSERT_TRUE(loaded.Load(blob).ok());
  EXPECT_EQ(loaded.Name(a).value(), "one");
  EXPECT_EQ(loaded.Lookup("two"), b);
  EXPECT_EQ(loaded.size(), dict.size());
}

struct TokenList {
  std::vector<Token> tokens;
  std::vector<std::string> texts;  // owned copies of token text
};

TokenList ReadAll(Slice buf) {
  TokenList out;
  TokenReader reader(buf);
  Token t;
  for (;;) {
    auto more = reader.Next(&t);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    out.texts.push_back(t.text.ToString());
    out.tokens.push_back(t);
  }
  return out;
}

TEST(TokenStreamTest, WriterReaderRoundTrip) {
  TokenWriter w;
  w.StartDocument();
  w.StartElement(5, 2, 1, TypeAnno::kDecimal);
  w.NamespaceDecl(1, 2);
  w.Attribute(7, "value<>&", 0, 0, TypeAnno::kString);
  w.Text("body text", TypeAnno::kUntyped);
  w.Comment("a comment");
  w.ProcessingInstruction(9, "pi data");
  w.EndElement();
  w.EndDocument();

  TokenList all = ReadAll(w.data());
  ASSERT_EQ(all.tokens.size(), 9u);
  EXPECT_EQ(all.tokens[0].kind, TokenKind::kStartDocument);
  EXPECT_EQ(all.tokens[1].kind, TokenKind::kStartElement);
  EXPECT_EQ(all.tokens[1].local, 5u);
  EXPECT_EQ(all.tokens[1].ns_uri, 2u);
  EXPECT_EQ(all.tokens[1].prefix, 1u);
  EXPECT_EQ(all.tokens[1].type, TypeAnno::kDecimal);
  EXPECT_EQ(all.tokens[2].kind, TokenKind::kNamespaceDecl);
  EXPECT_EQ(all.tokens[3].kind, TokenKind::kAttribute);
  EXPECT_EQ(all.texts[3], "value<>&");
  EXPECT_EQ(all.tokens[4].kind, TokenKind::kText);
  EXPECT_EQ(all.texts[4], "body text");
  EXPECT_EQ(all.tokens[5].kind, TokenKind::kComment);
  EXPECT_EQ(all.tokens[6].kind, TokenKind::kProcessingInstruction);
  EXPECT_EQ(all.tokens[7].kind, TokenKind::kEndElement);
  EXPECT_EQ(all.tokens[8].kind, TokenKind::kEndDocument);
}

class ParserTest : public ::testing::Test {
 protected:
  Result<TokenList> Parse(const std::string& xml, ParserOptions opts = {}) {
    Parser parser(&dict_, opts);
    writer_.Clear();
    Status st = parser.Parse(xml, &writer_);
    if (!st.ok()) return st;
    return ReadAll(writer_.data());
  }

  NameDictionary dict_;
  TokenWriter writer_;
};

TEST_F(ParserTest, SimpleDocument) {
  auto res = Parse("<a><b>hi</b></a>");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto& t = res.value().tokens;
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[1].kind, TokenKind::kStartElement);
  EXPECT_EQ(dict_.Name(t[1].local).value(), "a");
  EXPECT_EQ(t[2].kind, TokenKind::kStartElement);
  EXPECT_EQ(t[3].kind, TokenKind::kText);
  EXPECT_EQ(res.value().texts[3], "hi");
}

TEST_F(ParserTest, AttributesSortedByNameId) {
  // zeta interned before alpha, so the sort is by id (interning order), not
  // alphabetical.
  auto res = Parse("<e zeta=\"1\" alpha=\"2\"/>");
  ASSERT_TRUE(res.ok());
  auto& t = res.value().tokens;
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[1].kind, TokenKind::kStartElement);
  EXPECT_EQ(t[2].kind, TokenKind::kAttribute);
  EXPECT_EQ(t[3].kind, TokenKind::kAttribute);
  EXPECT_LT(t[2].local, t[3].local);
}

TEST_F(ParserTest, NamespacesResolved) {
  auto res = Parse(
      "<p:root xmlns:p=\"urn:one\" xmlns=\"urn:two\">"
      "<child p:attr=\"v\"/></p:root>");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto& t = res.value().tokens;
  // root element in urn:one.
  EXPECT_EQ(dict_.Name(t[1].ns_uri).value(), "urn:one");
  EXPECT_EQ(dict_.Name(t[1].prefix).value(), "p");
  // Two namespace decl tokens (sorted by prefix: "" then "p").
  EXPECT_EQ(t[2].kind, TokenKind::kNamespaceDecl);
  EXPECT_EQ(t[3].kind, TokenKind::kNamespaceDecl);
  // child element picks up the default namespace urn:two.
  size_t child_idx = 4;
  ASSERT_EQ(t[child_idx].kind, TokenKind::kStartElement);
  EXPECT_EQ(dict_.Name(t[child_idx].local).value(), "child");
  EXPECT_EQ(dict_.Name(t[child_idx].ns_uri).value(), "urn:two");
  // Prefixed attribute resolves to urn:one.
  ASSERT_EQ(t[child_idx + 1].kind, TokenKind::kAttribute);
  EXPECT_EQ(dict_.Name(t[child_idx + 1].ns_uri).value(), "urn:one");
}

TEST_F(ParserTest, UnboundPrefixFails) {
  EXPECT_FALSE(Parse("<q:root/>").ok());
  EXPECT_FALSE(Parse("<root q:attr=\"v\"/>").ok());
}

TEST_F(ParserTest, EntityAndCharRefs) {
  auto res = Parse("<a attr=\"&quot;x&quot;\">&lt;&amp;&gt; &#65;&#x42;</a>");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().texts[2], "\"x\"");   // attribute value
  EXPECT_EQ(res.value().texts[3], "<&> AB");  // text
}

TEST_F(ParserTest, UnknownEntityFails) {
  EXPECT_FALSE(Parse("<a>&bogus;</a>").ok());
}

TEST_F(ParserTest, CdataBecomesText) {
  auto res = Parse("<a><![CDATA[<not><parsed>&amp;]]></a>");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().texts[2], "<not><parsed>&amp;");
}

TEST_F(ParserTest, CommentsAndPis) {
  auto res = Parse("<?xml version=\"1.0\"?><!-- head --><a><?target data?>"
                   "<!-- inner --></a><!-- tail -->");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  int comments = 0, pis = 0;
  for (auto& t : res.value().tokens) {
    if (t.kind == TokenKind::kComment) comments++;
    if (t.kind == TokenKind::kProcessingInstruction) pis++;
  }
  EXPECT_EQ(comments, 3);
  EXPECT_EQ(pis, 1);
}

TEST_F(ParserTest, WhitespaceStrippingOption) {
  ParserOptions opts;
  opts.strip_whitespace_text = true;
  auto res = Parse("<a>\n  <b>keep me</b>\n</a>", opts);
  ASSERT_TRUE(res.ok());
  int texts = 0;
  for (auto& t : res.value().tokens)
    if (t.kind == TokenKind::kText) texts++;
  EXPECT_EQ(texts, 1);
}

TEST_F(ParserTest, MalformedInputsFail) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a></b>").ok());
  EXPECT_FALSE(Parse("<a foo></a>").ok());
  EXPECT_FALSE(Parse("<a foo=bar></a>").ok());
  EXPECT_FALSE(Parse("<a x=\"1\" x=\"2\"/>").ok());
  EXPECT_FALSE(Parse("text only").ok());
  EXPECT_FALSE(Parse("<a/><b/>").ok());
}

TEST_F(ParserTest, SelfClosingAndDeepNesting) {
  std::string xml;
  const int kDepth = 200;
  for (int i = 0; i < kDepth; i++) xml += "<d>";
  xml += "<leaf/>";
  for (int i = 0; i < kDepth; i++) xml += "</d>";
  auto res = Parse(xml);
  ASSERT_TRUE(res.ok());
  int starts = 0, ends = 0;
  for (auto& t : res.value().tokens) {
    if (t.kind == TokenKind::kStartElement) starts++;
    if (t.kind == TokenKind::kEndElement) ends++;
  }
  EXPECT_EQ(starts, kDepth + 1);
  EXPECT_EQ(ends, kDepth + 1);
}

// The SAX path must produce the same event sequence as the token stream.
class RecordingSax : public SaxHandler {
 public:
  void OnStartDocument() override { log.push_back("SD"); }
  void OnEndDocument() override { log.push_back("ED"); }
  void OnStartElement(NameId local, NameId ns, NameId prefix) override {
    log.push_back("SE:" + std::to_string(local) + ":" + std::to_string(ns) +
                  ":" + std::to_string(prefix));
  }
  void OnEndElement() override { log.push_back("EE"); }
  void OnAttribute(NameId local, NameId ns, NameId prefix,
                   Slice value) override {
    log.push_back("AT:" + std::to_string(local) + ":" + std::to_string(ns) +
                  ":" + std::to_string(prefix) + "=" + value.ToString());
  }
  void OnNamespaceDecl(NameId prefix, NameId uri) override {
    log.push_back("NS:" + std::to_string(prefix) + ":" + std::to_string(uri));
  }
  void OnText(Slice value) override { log.push_back("TX:" + value.ToString()); }
  void OnComment(Slice value) override {
    log.push_back("CM:" + value.ToString());
  }
  void OnProcessingInstruction(NameId target, Slice data) override {
    log.push_back("PI:" + std::to_string(target) + ":" + data.ToString());
  }
  std::vector<std::string> log;
};

TEST_F(ParserTest, SaxMatchesTokenStream) {
  Random rng(17);
  for (int iter = 0; iter < 30; iter++) {
    std::string xml = workload::GenRandomXml(&rng, 60);
    auto tokens = Parse(xml);
    ASSERT_TRUE(tokens.ok()) << xml;
    RecordingSax sax;
    Parser parser(&dict_);
    ASSERT_TRUE(parser.ParseSax(xml, &sax).ok());
    std::vector<std::string> from_tokens;
    for (size_t i = 0; i < tokens.value().tokens.size(); i++) {
      const Token& t = tokens.value().tokens[i];
      const std::string& text = tokens.value().texts[i];
      switch (t.kind) {
        case TokenKind::kStartDocument: from_tokens.push_back("SD"); break;
        case TokenKind::kEndDocument: from_tokens.push_back("ED"); break;
        case TokenKind::kStartElement:
          from_tokens.push_back("SE:" + std::to_string(t.local) + ":" +
                                std::to_string(t.ns_uri) + ":" +
                                std::to_string(t.prefix));
          break;
        case TokenKind::kEndElement: from_tokens.push_back("EE"); break;
        case TokenKind::kAttribute:
          from_tokens.push_back("AT:" + std::to_string(t.local) + ":" +
                                std::to_string(t.ns_uri) + ":" +
                                std::to_string(t.prefix) + "=" + text);
          break;
        case TokenKind::kNamespaceDecl:
          from_tokens.push_back("NS:" + std::to_string(t.local) + ":" +
                                std::to_string(t.ns_uri));
          break;
        case TokenKind::kText: from_tokens.push_back("TX:" + text); break;
        case TokenKind::kComment: from_tokens.push_back("CM:" + text); break;
        case TokenKind::kProcessingInstruction:
          from_tokens.push_back("PI:" + std::to_string(t.local) + ":" + text);
          break;
      }
    }
    EXPECT_EQ(sax.log, from_tokens) << xml;
  }
}

class SerializerTest : public ::testing::Test {
 protected:
  // parse -> serialize -> parse: token streams must be identical.
  void CheckRoundTrip(const std::string& xml) {
    Parser parser(&dict_);
    TokenWriter first;
    ASSERT_TRUE(parser.Parse(xml, &first).ok()) << xml;
    std::string serialized;
    ASSERT_TRUE(
        SerializeTokens(first.data(), dict_, {}, &serialized).ok());
    TokenWriter second;
    ASSERT_TRUE(parser.Parse(serialized, &second).ok())
        << "reparse failed for: " << serialized;
    EXPECT_EQ(first.buffer(), second.buffer())
        << "original: " << xml << "\nserialized: " << serialized;
  }

  NameDictionary dict_;
};

TEST_F(SerializerTest, BasicRoundTrips) {
  CheckRoundTrip("<a/>");
  CheckRoundTrip("<a><b>text</b><c x=\"1\"/></a>");
  CheckRoundTrip("<a>one<b/>two</a>");
  CheckRoundTrip("<a attr=\"has &quot;quotes&quot; &amp; more\"/>");
  CheckRoundTrip("<a>escaped &lt;tags&gt; &amp; ampersands</a>");
  CheckRoundTrip("<a><!-- comment --><?pi stuff?></a>");
}

TEST_F(SerializerTest, NamespaceRoundTrips) {
  CheckRoundTrip("<p:a xmlns:p=\"urn:x\"><p:b/></p:a>");
  CheckRoundTrip("<a xmlns=\"urn:default\"><b/></a>");
  CheckRoundTrip(
      "<a xmlns:x=\"urn:1\" xmlns:y=\"urn:2\"><x:b y:attr=\"v\"/></a>");
}

TEST_F(SerializerTest, RandomizedRoundTrips) {
  Random rng(23);
  for (int iter = 0; iter < 50; iter++) {
    CheckRoundTrip(workload::GenRandomXml(&rng, 80));
  }
}

TEST_F(SerializerTest, CatalogWorkloadRoundTrips) {
  Random rng(5);
  workload::CatalogOptions opts;
  opts.categories = 3;
  opts.products_per_category = 5;
  CheckRoundTrip(workload::GenCatalogXml(&rng, opts));
}

TEST(EscapeTest, TextAndAttribute) {
  std::string out;
  EscapeText("<a&b>", &out);
  EXPECT_EQ(out, "&lt;a&amp;b&gt;");
  out.clear();
  EscapeAttribute("say \"hi\" <now>", &out);
  EXPECT_EQ(out, "say &quot;hi&quot; &lt;now&gt;");
}


TEST(SerializerTest2, IndentModeStillReparses) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(
      parser.Parse("<a><b>x</b><c><d/></c></a>", &tokens).ok());
  SerializerOptions opts;
  opts.indent = true;
  std::string pretty;
  ASSERT_TRUE(SerializeTokens(tokens.data(), dict, opts, &pretty).ok());
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  // Whitespace-insensitive reparse (strip mode) matches the original shape.
  ParserOptions po;
  po.strip_whitespace_text = true;
  Parser p2(&dict, po);
  TokenWriter again;
  ASSERT_TRUE(p2.Parse(pretty, &again).ok()) << pretty;
}

TEST(RuntimeGlueTest, EventsToTokensRoundTrip) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a x=\"1\">t<b/>u</a>", &tokens).ok());
  TokenStreamSource source(tokens.data());
  TokenWriter back;
  ASSERT_TRUE(EventsToTokens(&source, &back).ok());
  EXPECT_EQ(back.buffer(), tokens.buffer());
}

TEST(RuntimeGlueTest, DrainAndCollectText) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a>one<b>two</b>three</a>", &tokens).ok());
  {
    TokenStreamSource source(tokens.data());
    EXPECT_EQ(DrainEvents(&source).value(), 9u);  // SD <a> one <b> two </b> three </a> ED
  }
  {
    TokenStreamSource source(tokens.data());
    EXPECT_EQ(CollectText(&source).value(), "onetwothree");
  }
}

}  // namespace
}  // namespace xdb
