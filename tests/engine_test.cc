// End-to-end engine tests: collections, validated inserts, all access
// methods agreeing with each other, value-index maintenance under updates,
// MVCC snapshot isolation, persistence, and WAL crash recovery.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "engine/engine.h"
#include "leak_check.h"
#include "engine/xml_handle.h"
#include "pack/record_builder.h"
#include "util/workload.h"
#include "xml/node_id.h"

namespace xdb {
namespace {

std::unique_ptr<Engine> MemEngine() {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  return Engine::Open(opts).MoveValue();
}

std::string RenderIds(const NodeSequence& seq) {
  std::string out;
  for (const auto& r : seq) {
    out += std::to_string(r.doc_id);
    out += ":";
    out += nodeid::ToString(r.node_id);
    out += " ";
  }
  return out;
}

TEST(EngineTest, InsertAndReadBack) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  uint64_t doc =
      coll->InsertDocument(nullptr, "<note><to>you</to></note>").value();
  EXPECT_EQ(doc, 1u);
  std::string text = coll->GetDocumentText(nullptr, doc).value();
  EXPECT_EQ(text, "<note><to>you</to></note>");
  EXPECT_EQ(coll->DocCount().value(), 1u);
  EXPECT_TRUE(coll->GetDocumentText(nullptr, 99).status().IsNotFound());
}

TEST(EngineTest, ParseErrorsSurface) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  EXPECT_EQ(coll->InsertDocument(nullptr, "<broken>").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(coll->DocCount().value(), 0u);
}

TEST(EngineTest, SchemaValidatedCollection) {
  auto engine = MemEngine();
  ASSERT_TRUE(
      engine->RegisterSchema("catalog", workload::CatalogSchemaText()).ok());
  CollectionOptions copts;
  copts.schema = "catalog";
  Collection* coll = engine->CreateCollection("cat", copts).value();
  Random rng(1);
  std::string good = workload::GenCatalogXml(&rng, {});
  EXPECT_TRUE(coll->InsertDocument(nullptr, good).ok());
  EXPECT_EQ(coll->InsertDocument(nullptr, "<Wrong/>").status().code(),
            Status::Code::kValidationError);
  // Unregistered schema is rejected at collection creation.
  CollectionOptions bad;
  bad.schema = "nope";
  EXPECT_FALSE(engine->CreateCollection("c2", bad).ok());
}

TEST(EngineTest, DeleteDocumentCleansEverything) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"pidx", "/cat/p/price", ValueType::kDouble, 128})
                  .ok());
  uint64_t d1 =
      coll->InsertDocument(nullptr, "<cat><p><price>10</price></p></cat>")
          .value();
  uint64_t d2 =
      coll->InsertDocument(nullptr, "<cat><p><price>20</price></p></cat>")
          .value();
  ASSERT_TRUE(coll->DeleteDocument(nullptr, d1).ok());
  EXPECT_TRUE(coll->GetDocumentText(nullptr, d1).status().IsNotFound());
  EXPECT_TRUE(coll->DeleteDocument(nullptr, d1).IsNotFound());
  // The other document survives, and the index no longer returns d1.
  auto res = coll->Query(nullptr, "/cat/p[price > 0]").MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);
  EXPECT_EQ(res.nodes[0].doc_id, d2);
}

class QueryMethodsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = MemEngine();
    CollectionOptions copts;
    copts.record_budget = 400;  // multi-record docs for NodeID-level tests
    coll_ = engine_->CreateCollection("catalog", copts).value();
    ASSERT_TRUE(coll_->CreateValueIndex({"regprice",
                                         "/Catalog/Categories/Product/RegPrice",
                                         ValueType::kDecimal, 128})
                    .ok());
    ASSERT_TRUE(
        coll_->CreateValueIndex({"discount", "//Discount",
                                 ValueType::kDecimal, 128})
            .ok());
    Random rng(42);
    workload::CatalogOptions opts;
    opts.categories = 2;
    opts.products_per_category = 10;
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(
          coll_->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
              .ok());
    }
  }

  // All forced methods must return the same node set as the full scan.
  void CheckAllMethodsAgree(const std::string& query) {
    QueryOptions scan_opts;
    scan_opts.force = ForceMethod::kScan;
    auto scan = coll_->Query(nullptr, query, scan_opts).MoveValue();
    for (ForceMethod m : {ForceMethod::kAuto, ForceMethod::kDocIdList,
                          ForceMethod::kNodeIdList}) {
      QueryOptions o;
      o.force = m;
      auto res = coll_->Query(nullptr, query, o);
      ASSERT_TRUE(res.ok()) << query << ": " << res.status().ToString();
      EXPECT_EQ(RenderIds(res.value().nodes), RenderIds(scan.nodes))
          << query << " method " << static_cast<int>(m) << " ("
          << res.value().stats.explain << ")";
    }
  }

  std::unique_ptr<Engine> engine_;
  Collection* coll_ = nullptr;
};

TEST_F(QueryMethodsTest, Table2Queries) {
  CheckAllMethodsAgree("/Catalog/Categories/Product[RegPrice > 100]");
  CheckAllMethodsAgree("/Catalog/Categories/Product[Discount > 0.1]");
  CheckAllMethodsAgree(
      "/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]");
}

TEST_F(QueryMethodsTest, ResidualStepsAfterAnchor) {
  CheckAllMethodsAgree(
      "/Catalog/Categories/Product[RegPrice > 250]/ProductName");
  CheckAllMethodsAgree("/Catalog/Categories/Product[RegPrice < 50]/@id");
}

TEST_F(QueryMethodsTest, UncoveredPredicatesForceRecheck) {
  CheckAllMethodsAgree(
      "/Catalog/Categories/Product[RegPrice > 100 and ProductName]");
  CheckAllMethodsAgree(
      "/Catalog/Categories/Product[RegPrice > 100 and not(Discount)]");
}

TEST_F(QueryMethodsTest, SelectivityZeroAndAll) {
  CheckAllMethodsAgree("/Catalog/Categories/Product[RegPrice > 100000]");
  CheckAllMethodsAgree("/Catalog/Categories/Product[RegPrice >= 0]");
}

TEST_F(QueryMethodsTest, PlannerStatsReportMethodAndWork) {
  QueryOptions o;
  o.force = ForceMethod::kDocIdList;
  auto res = coll_->Query(nullptr,
                          "/Catalog/Categories/Product[RegPrice > 400]", o)
                 .MoveValue();
  EXPECT_EQ(res.stats.method, query::AccessMethod::kDocIdList);
  EXPECT_GT(res.stats.index_postings, 0u);
  EXPECT_LE(res.stats.candidate_docs, 10u);
  EXPECT_FALSE(res.stats.explain.empty());

  o.force = ForceMethod::kScan;
  auto scan = coll_->Query(nullptr,
                           "/Catalog/Categories/Product[RegPrice > 400]", o)
                  .MoveValue();
  EXPECT_EQ(scan.stats.docs_evaluated, 10u);
}

TEST_F(QueryMethodsTest, WantValuesComputesStrings) {
  QueryOptions o;
  o.want_values = true;
  auto res =
      coll_->Query(nullptr,
                   "/Catalog/Categories/Product[RegPrice > 100]/RegPrice", o)
          .MoveValue();
  ASSERT_FALSE(res.nodes.empty());
  for (const auto& n : res.nodes) {
    double v = StringToNumber(n.string_value);
    EXPECT_GT(v, 100.0);
  }
}

TEST(EngineUpdateTest, TextUpdateMaintainsValueIndexes) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"pidx", "/cat/p/price", ValueType::kDouble, 128})
                  .ok());
  uint64_t doc =
      coll->InsertDocument(nullptr, "<cat><p><price>10</price></p></cat>")
          .value();
  // Find the text node under price.
  QueryOptions o;
  auto res = coll->Query(nullptr, "/cat/p/price/text()", o).MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);
  std::string text_id = res.nodes[0].node_id;

  ASSERT_TRUE(coll->UpdateTextNode(nullptr, doc, text_id, "99").ok());
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(),
            "<cat><p><price>99</price></p></cat>");

  // The old index entry is gone; the new one matches.
  auto hits_old = coll->Query(nullptr, "/cat/p[price = 10]").MoveValue();
  EXPECT_TRUE(hits_old.nodes.empty());
  for (ForceMethod m :
       {ForceMethod::kScan, ForceMethod::kDocIdList, ForceMethod::kNodeIdList}) {
    QueryOptions qo;
    qo.force = m;
    auto hits_new = coll->Query(nullptr, "/cat/p[price = 99]", qo).MoveValue();
    EXPECT_EQ(hits_new.nodes.size(), 1u) << static_cast<int>(m);
  }
}

TEST(EngineMvccTest, SnapshotReadersSeeOldVersion) {
  auto engine = MemEngine();
  CollectionOptions copts;
  copts.mvcc = true;
  Collection* coll = engine->CreateCollection("docs", copts).value();
  uint64_t doc =
      coll->InsertDocument(nullptr, "<a><b>old</b></a>").value();

  // Pin a snapshot before the update.
  Transaction reader = engine->Begin(IsolationMode::kSnapshot);
  std::string before = coll->GetDocumentText(&reader, doc).value();
  EXPECT_EQ(before, "<a><b>old</b></a>");

  // Writer updates the text node.
  auto res = coll->Query(nullptr, "/a/b/text()").MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);
  ASSERT_TRUE(
      coll->UpdateTextNode(nullptr, doc, res.nodes[0].node_id, "new").ok());

  // The pinned snapshot still sees the old version; a fresh reader sees new.
  EXPECT_EQ(coll->GetDocumentText(&reader, doc).value(), "<a><b>old</b></a>");
  ASSERT_TRUE(engine->Commit(&reader).ok());
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), "<a><b>new</b></a>");

  Transaction reader2 = engine->Begin(IsolationMode::kSnapshot);
  EXPECT_EQ(coll->GetDocumentText(&reader2, doc).value(),
            "<a><b>new</b></a>");
  ASSERT_TRUE(engine->Commit(&reader2).ok());
}

TEST(EngineMvccTest, SnapshotInvisibleForDocsInsertedLater) {
  auto engine = MemEngine();
  CollectionOptions copts;
  copts.mvcc = true;
  Collection* coll = engine->CreateCollection("docs", copts).value();
  coll->InsertDocument(nullptr, "<a>first</a>").value();
  Transaction reader = engine->Begin(IsolationMode::kSnapshot);
  // Force the snapshot to pin now.
  coll->GetDocumentText(&reader, 1).value();
  uint64_t d2 = coll->InsertDocument(nullptr, "<a>second</a>").value();
  EXPECT_TRUE(coll->GetDocumentText(&reader, d2).status().IsNotFound());
  ASSERT_TRUE(engine->Commit(&reader).ok());
  EXPECT_EQ(coll->GetDocumentText(nullptr, d2).value(), "<a>second</a>");
}

TEST(EngineTxnTest, LockingWritersExcludeEachOther) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  uint64_t doc = coll->InsertDocument(nullptr, "<a><b>x</b></a>").value();
  auto res = coll->Query(nullptr, "/a/b/text()").MoveValue();
  std::string text_id = res.nodes[0].node_id;

  Transaction t1 = engine->Begin(IsolationMode::kLocking);
  ASSERT_TRUE(coll->UpdateTextNode(&t1, doc, text_id, "t1").ok());
  // A second writer cannot take the conflicting node lock (times out).
  Transaction t2 = engine->Begin(IsolationMode::kLocking);
  EXPECT_TRUE(coll->UpdateTextNode(&t2, doc, text_id, "t2").IsDeadlock());
  ASSERT_TRUE(engine->Abort(&t2).ok());
  ASSERT_TRUE(engine->Commit(&t1).ok());
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), "<a><b>t1</b></a>");
}

TEST(EngineTxnTest, DisjointSubtreeWritersProceed) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  uint64_t doc =
      coll->InsertDocument(nullptr, "<a><b>one</b><c>two</c></a>").value();
  std::string b_text =
      coll->Query(nullptr, "/a/b/text()").MoveValue().nodes[0].node_id;
  std::string c_text =
      coll->Query(nullptr, "/a/c/text()").MoveValue().nodes[0].node_id;

  Transaction t1 = engine->Begin(IsolationMode::kLocking);
  Transaction t2 = engine->Begin(IsolationMode::kLocking);
  EXPECT_TRUE(coll->UpdateTextNode(&t1, doc, b_text, "B").ok());
  // Disjoint subtree: no conflict under the prefix-lock protocol.
  EXPECT_TRUE(coll->UpdateTextNode(&t2, doc, c_text, "C").ok());
  ASSERT_TRUE(engine->Commit(&t1).ok());
  ASSERT_TRUE(engine->Commit(&t2).ok());
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(),
            "<a><b>B</b><c>C</c></a>");
}

TEST(XmlHandleTest, DeferredResolveFollowsIsolation) {
  auto engine = MemEngine();
  CollectionOptions copts;
  copts.mvcc = true;
  Collection* coll = engine->CreateCollection("docs", copts).value();
  uint64_t doc =
      coll->InsertDocument(nullptr, "<r><part>alpha</part><part>beta</part>"
                                    "</r>")
          .value();
  auto parts = coll->Query(nullptr, "/r/part").MoveValue();
  ASSERT_EQ(parts.nodes.size(), 2u);

  XmlHandle whole(coll, doc, "");
  XmlHandle part(coll, doc, parts.nodes[1].node_id);
  EXPECT_EQ(whole.Resolve(nullptr).value(),
            "<r><part>alpha</part><part>beta</part></r>");
  EXPECT_EQ(part.Resolve(nullptr).value(), "<part>beta</part>");

  // A snapshot reader's handle keeps resolving to its version even after an
  // update (the "deferred access guaranteed to be successful").
  Transaction reader = engine->Begin(IsolationMode::kSnapshot);
  EXPECT_EQ(part.Resolve(&reader).value(), "<part>beta</part>");
  auto text = coll->Query(nullptr, "/r/part/text()").MoveValue();
  for (auto& n : text.nodes) {
    if (n.node_id.size() > parts.nodes[1].node_id.size() &&
        Slice(n.node_id).StartsWith(Slice(parts.nodes[1].node_id))) {
      ASSERT_TRUE(coll->UpdateTextNode(nullptr, doc, n.node_id, "BETA").ok());
    }
  }
  EXPECT_EQ(part.Resolve(&reader).value(), "<part>beta</part>");
  ASSERT_TRUE(engine->Commit(&reader).ok());
  EXPECT_EQ(part.Resolve(nullptr).value(), "<part>BETA</part>");

  XmlHandle unbound;
  EXPECT_FALSE(unbound.Resolve().ok());
}

TEST(VacuumTest, OldVersionsReclaimed) {
  auto engine = MemEngine();
  CollectionOptions copts;
  copts.mvcc = true;
  Collection* coll = engine->CreateCollection("docs", copts).value();
  uint64_t doc = coll->InsertDocument(nullptr, "<a><b>v0</b></a>").value();
  auto text = coll->Query(nullptr, "/a/b/text()").MoveValue();
  std::string text_id = text.nodes[0].node_id;
  for (int i = 1; i <= 10; i++) {
    ASSERT_TRUE(
        coll->UpdateTextNode(nullptr, doc, text_id, "v" + std::to_string(i))
            .ok());
  }
  uint64_t deletes_before = coll->records()->stats().deletes;
  uint64_t latest = coll->versions()->BeginSnapshot();
  ASSERT_TRUE(coll->VacuumVersions(doc, latest).ok());
  EXPECT_GT(coll->records()->stats().deletes, deletes_before);
  // The latest version still reads correctly (both paths).
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), "<a><b>v10</b></a>");
  Transaction reader = engine->Begin(IsolationMode::kSnapshot);
  EXPECT_EQ(coll->GetDocumentText(&reader, doc).value(),
            "<a><b>v10</b></a>");
  ASSERT_TRUE(engine->Commit(&reader).ok());
  // Older snapshots are genuinely gone.
  Transaction stale = engine->Begin(IsolationMode::kSnapshot);
  stale.snapshot = 1;  // simulate a pre-vacuum snapshot
  EXPECT_FALSE(coll->GetDocumentText(&stale, doc).ok());
  ASSERT_TRUE(engine->Commit(&stale).ok());
}

class SubtreeOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = MemEngine();
    CollectionOptions copts;
    copts.record_budget = 150;  // force multi-record subtrees
    coll_ = engine_->CreateCollection("docs", copts).value();
  }

  std::string Text(uint64_t doc) {
    return coll_->GetDocumentText(nullptr, doc).value();
  }

  std::unique_ptr<Engine> engine_;
  Collection* coll_ = nullptr;
};

TEST_F(SubtreeOpsTest, AppendAndPositionalInsert) {
  uint64_t doc =
      coll_->InsertDocument(nullptr, "<list><item>a</item><item>c</item></list>")
          .value();
  auto items = coll_->Query(nullptr, "/list/item").MoveValue();
  ASSERT_EQ(items.nodes.size(), 2u);
  std::string list_id = nodeid::ChildId(1);

  // Append at the end.
  ASSERT_TRUE(coll_->InsertSubtree(nullptr, doc, list_id, Slice(),
                                   "<item>d</item>")
                  .ok());
  // Insert between a and c.
  auto mid = coll_->InsertSubtree(nullptr, doc, list_id,
                                  items.nodes[0].node_id, "<item>b</item>");
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_EQ(Text(doc),
            "<list><item>a</item><item>b</item><item>c</item>"
            "<item>d</item></list>");
  // The new node is queryable and document order holds.
  QueryOptions q;
  q.want_values = true;
  auto all = coll_->Query(nullptr, "/list/item", q).MoveValue();
  ASSERT_EQ(all.nodes.size(), 4u);
  EXPECT_EQ(all.nodes[0].string_value, "a");
  EXPECT_EQ(all.nodes[1].string_value, "b");
  EXPECT_EQ(all.nodes[2].string_value, "c");
  EXPECT_EQ(all.nodes[3].string_value, "d");
}

TEST_F(SubtreeOpsTest, RepeatedInsertsBetweenSameSiblings) {
  uint64_t doc =
      coll_->InsertDocument(nullptr, "<l><i>first</i><i>last</i></l>").value();
  std::string l_id = nodeid::ChildId(1);
  std::string after = coll_->Query(nullptr, "/l/i").MoveValue()
                          .nodes[0]
                          .node_id;
  // Hammer the same gap: every insert lands after "first" — ids extend.
  for (int i = 0; i < 20; i++) {
    auto res = coll_->InsertSubtree(nullptr, doc, l_id, after,
                                    "<i>gen" + std::to_string(i) + "</i>");
    ASSERT_TRUE(res.ok()) << i << ": " << res.status().ToString();
    after = res.MoveValue();
  }
  QueryOptions q;
  q.want_values = true;
  auto all = coll_->Query(nullptr, "/l/i", q).MoveValue();
  ASSERT_EQ(all.nodes.size(), 22u);
  EXPECT_EQ(all.nodes.front().string_value, "first");
  EXPECT_EQ(all.nodes.back().string_value, "last");
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ(all.nodes[1 + i].string_value, "gen" + std::to_string(i));
  }
}

TEST_F(SubtreeOpsTest, ValueIndexesFollowSubtreeChanges) {
  ASSERT_TRUE(
      coll_->CreateValueIndex({"pidx", "//price", ValueType::kDouble, 64})
          .ok());
  uint64_t doc =
      coll_->InsertDocument(nullptr,
                            "<shop><p><price>10</price></p></shop>")
          .value();
  std::string shop_id = nodeid::ChildId(1);
  ASSERT_TRUE(coll_->InsertSubtree(nullptr, doc, shop_id, Slice(),
                                   "<p><price>20</price></p>")
                  .ok());
  for (ForceMethod m : {ForceMethod::kScan, ForceMethod::kDocIdList}) {
    QueryOptions o;
    o.force = m;
    auto res = coll_->Query(nullptr, "//p[price = 20]", o).MoveValue();
    EXPECT_EQ(res.nodes.size(), 1u) << static_cast<int>(m);
  }
  // Delete the original <p>: its index entry disappears.
  auto p1 = coll_->Query(nullptr, "//p[price = 10]").MoveValue();
  ASSERT_EQ(p1.nodes.size(), 1u);
  ASSERT_TRUE(coll_->DeleteSubtree(nullptr, doc, p1.nodes[0].node_id).ok());
  QueryOptions o;
  o.force = ForceMethod::kDocIdList;
  EXPECT_TRUE(coll_->Query(nullptr, "//p[price = 10]", o)
                  .MoveValue()
                  .nodes.empty());
  EXPECT_EQ(Text(doc), "<shop><p><price>20</price></p></shop>");
}

TEST_F(SubtreeOpsTest, MultiRecordSubtreeInsertAndDelete) {
  uint64_t doc =
      coll_->InsertDocument(nullptr, "<root><keep>stay</keep></root>").value();
  std::string root_id = nodeid::ChildId(1);
  // A fragment much larger than the 150-byte record budget: it lands as one
  // (overflowing) record; deleting it must reclaim all its records.
  std::string big = "<big>";
  for (int i = 0; i < 40; i++)
    big += "<leaf n=\"" + std::to_string(i) + "\">payload payload</leaf>";
  big += "</big>";
  auto big_id = coll_->InsertSubtree(nullptr, doc, root_id, Slice(), big);
  ASSERT_TRUE(big_id.ok()) << big_id.status().ToString();
  auto leaves = coll_->Query(nullptr, "/root/big/leaf").MoveValue();
  EXPECT_EQ(leaves.nodes.size(), 40u);

  ASSERT_TRUE(coll_->DeleteSubtree(nullptr, doc, big_id.value()).ok());
  EXPECT_EQ(Text(doc), "<root><keep>stay</keep></root>");
  EXPECT_TRUE(
      coll_->Query(nullptr, "/root/big/leaf").MoveValue().nodes.empty());
}

TEST_F(SubtreeOpsTest, DeleteProxiedSubtreeReclaimsRecords) {
  // Small budget: <hot> gets evicted into its own record(s); deleting it
  // must drop those records and the proxy.
  uint64_t doc = coll_->InsertDocument(
                          nullptr,
                          "<r><hot>" + std::string(400, 'x') + "</hot>"
                          "<cold>keep</cold></r>")
                     .value();
  auto hot = coll_->Query(nullptr, "/r/hot").MoveValue();
  ASSERT_EQ(hot.nodes.size(), 1u);
  uint64_t deletes_before = coll_->records()->stats().deletes;
  ASSERT_TRUE(coll_->DeleteSubtree(nullptr, doc, hot.nodes[0].node_id).ok());
  EXPECT_GT(coll_->records()->stats().deletes, deletes_before);
  EXPECT_EQ(Text(doc), "<r><cold>keep</cold></r>");
}

TEST_F(SubtreeOpsTest, ErrorCases) {
  uint64_t doc =
      coll_->InsertDocument(nullptr, "<a><b>t</b></a>").value();
  std::string a_id = nodeid::ChildId(1);
  std::string b_id = a_id + nodeid::ChildId(1);
  // Root element cannot be deleted; the document node is not a parent.
  EXPECT_FALSE(coll_->DeleteSubtree(nullptr, doc, a_id).ok());
  EXPECT_FALSE(coll_->DeleteSubtree(nullptr, doc, Slice()).ok());
  EXPECT_FALSE(
      coll_->InsertSubtree(nullptr, doc, Slice(), Slice(), "<x/>").ok());
  // after-sibling must be a child of the parent.
  EXPECT_TRUE(coll_->InsertSubtree(nullptr, doc, a_id, b_id + "zz", "<x/>")
                  .status()
                  .IsNotFound());
  // Fragment must be a single element.
  EXPECT_FALSE(
      coll_->InsertSubtree(nullptr, doc, a_id, Slice(), "<x/><y/>").ok());
  // MVCC collections decline subtree ops for now.
  CollectionOptions mvcc;
  mvcc.mvcc = true;
  Collection* vcoll = engine_->CreateCollection("v", mvcc).value();
  uint64_t vdoc = vcoll->InsertDocument(nullptr, "<a><b/></a>").value();
  EXPECT_EQ(vcoll->InsertSubtree(nullptr, vdoc, nodeid::ChildId(1), Slice(),
                                 "<x/>")
                .status()
                .code(),
            Status::Code::kNotSupported);
}

TEST_F(SubtreeOpsTest, DifferentialAgainstRebuiltDocument) {
  // Random subtree inserts/deletes mirrored against a plain XML-string
  // model: serialize after every step and compare.
  Random rng(808);
  uint64_t doc =
      coll_->InsertDocument(nullptr, "<m><s>seed</s></m>").value();
  std::string m_id = nodeid::ChildId(1);
  int next = 0;
  for (int step = 0; step < 30; step++) {
    auto kids = coll_->Query(nullptr, "/m/*").MoveValue();
    if (!kids.nodes.empty() && rng.OneIn(3)) {
      size_t pick = rng.Uniform(kids.nodes.size());
      ASSERT_TRUE(
          coll_->DeleteSubtree(nullptr, doc, kids.nodes[pick].node_id).ok())
          << step;
    } else {
      std::string frag =
          "<s i=\"" + std::to_string(next++) + "\">v</s>";
      Slice after;
      if (!kids.nodes.empty() && rng.OneIn(2)) {
        size_t pick = rng.Uniform(kids.nodes.size());
        after = Slice(kids.nodes[pick].node_id);
      }
      ASSERT_TRUE(
          coll_->InsertSubtree(nullptr, doc, m_id, after, frag).ok())
          << step;
    }
    // The document must always re-serialize and re-parse cleanly, and a
    // fresh insert of the serialized text must round-trip identically.
    std::string text = Text(doc);
    uint64_t copy = coll_->InsertDocument(nullptr, text).value();
    EXPECT_EQ(Text(copy), text) << step;
    ASSERT_TRUE(coll_->DeleteDocument(nullptr, copy).ok());
  }
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("xdb_engine_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++)))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineOptions FileOptions() {
    EngineOptions opts;
    opts.dir = dir_;
    return opts;
  }

  std::string dir_;
  static int counter_;
};
int PersistenceTest::counter_ = 0;

TEST_F(PersistenceTest, CheckpointAndReopen) {
  uint64_t doc;
  {
    auto engine = Engine::Open(FileOptions()).MoveValue();
    ASSERT_TRUE(
        engine->RegisterSchema("catalog", workload::CatalogSchemaText()).ok());
    Collection* coll = engine->CreateCollection("docs").value();
    ASSERT_TRUE(coll->CreateValueIndex(
                        {"pidx", "/cat/p/price", ValueType::kDouble, 128})
                    .ok());
    doc = coll->InsertDocument(nullptr,
                               "<cat><p><price>42</price></p></cat>")
              .value();
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  {
    auto engine = Engine::Open(FileOptions()).MoveValue();
    Collection* coll = engine->GetCollection("docs").value();
    EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(),
              "<cat><p><price>42</price></p></cat>");
    // Indexes survive: the indexed plan finds the document.
    QueryOptions o;
    o.force = ForceMethod::kDocIdList;
    auto res = coll->Query(nullptr, "/cat/p[price = 42]", o).MoveValue();
    EXPECT_EQ(res.nodes.size(), 1u);
    // The schema registry also survives.
    EXPECT_TRUE(engine->FindSchema("catalog").ok());
    // And new inserts continue with fresh doc ids.
    uint64_t doc2 =
        coll->InsertDocument(nullptr, "<cat><p><price>1</price></p></cat>")
            .value();
    EXPECT_GT(doc2, doc);
  }
}

TEST_F(PersistenceTest, WalReplayRestoresUncheckpointedWork) {
  {
    // The crash is simulated by leaking the engine: its destructor (which
    // would checkpoint and flush) never runs, so the data pages and catalog
    // stay at their last checkpointed state while the WAL has the tail.
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    coll->InsertDocument(nullptr, "<a>one</a>").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    coll->InsertDocument(nullptr, "<a>two</a>").value();
    coll->InsertDocument(nullptr, "<a>three</a>").value();
    ASSERT_TRUE(coll->DeleteDocument(nullptr, 1).ok());
    // ... crash: `crashed` is intentionally leaked.
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  // Replay re-applies: insert two, insert three, delete one.
  EXPECT_TRUE(coll->GetDocumentText(nullptr, 1).status().IsNotFound());
  EXPECT_EQ(coll->GetDocumentText(nullptr, 2).value(), "<a>two</a>");
  EXPECT_EQ(coll->GetDocumentText(nullptr, 3).value(), "<a>three</a>");
  // Post-recovery inserts pick unused doc ids.
  uint64_t d4 = coll->InsertDocument(nullptr, "<a>four</a>").value();
  EXPECT_GE(d4, 4u);
}

TEST_F(PersistenceTest, WalReplaysSubtreeOperations) {
  {
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    uint64_t doc =
        coll->InsertDocument(nullptr, "<l><i>a</i><i>c</i></l>").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    // Post-checkpoint subtree work, then crash (leak).
    auto items = coll->Query(nullptr, "/l/i").MoveValue();
    ASSERT_TRUE(coll->InsertSubtree(nullptr, doc, nodeid::ChildId(1),
                                    items.nodes[0].node_id, "<i>b</i>")
                    .ok());
    auto a_node = coll->Query(nullptr, "/l/i").MoveValue();
    ASSERT_TRUE(
        coll->DeleteSubtree(nullptr, doc, a_node.nodes[0].node_id).ok());
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, 1).value(),
            "<l><i>b</i><i>c</i></l>");
}

TEST(CorruptionTest, TruncatedRecordYieldsStatusNotCrash) {
  // A record whose bytes are damaged must surface kCorruption through every
  // reader, never UB.
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a><b>x</b><c y=\"1\"/></a>", &tokens).ok());
  auto records = PackDocument(tokens.data()).MoveValue();
  std::string bytes = records[0].bytes;
  for (size_t cut = 1; cut < bytes.size(); cut += 3) {
    std::string damaged = bytes.substr(0, cut);
    RecordWalker walker((Slice(damaged)));
    Status st = walker.Init();
    if (!st.ok()) continue;  // header already rejects it
    for (;;) {
      RecordWalker::Event ev;
      st = walker.Next(&ev);
      if (!st.ok() || ev.type == RecordWalker::EventType::kDone) break;
    }
    // Either a clean end (the cut landed on an entry boundary) or a
    // corruption status — both acceptable; crashes are not.
  }
  // Bit flips in the structural area.
  Random rng(99);
  for (int i = 0; i < 200; i++) {
    std::string damaged = bytes;
    damaged[rng.Uniform(damaged.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    RecordWalker walker((Slice(damaged)));
    if (!walker.Init().ok()) continue;
    for (int guard = 0; guard < 1000; guard++) {
      RecordWalker::Event ev;
      Status st = walker.Next(&ev);
      if (!st.ok() || ev.type == RecordWalker::EventType::kDone) break;
    }
  }
}

TEST(CorruptionTest, GarbageCatalogRejected) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("xdb_garbage_cat_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/catalog.xdb", std::ios::binary);
    out << "this is definitely not a catalog";
  }
  EngineOptions opts;
  opts.dir = dir;
  auto res = Engine::Open(opts);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), Status::Code::kCorruption);
  std::filesystem::remove_all(dir);
}

TEST(CorruptionTest, TruncatedCompiledSchemaRejected) {
  auto cs = schema::CompileSchemaText(workload::CatalogSchemaText());
  ASSERT_TRUE(cs.ok());
  std::string binary;
  cs.value().Serialize(&binary);
  for (size_t cut : {0u, 3u, 10u, 50u}) {
    if (cut >= binary.size()) continue;
    auto res =
        schema::CompiledSchema::Deserialize(binary.substr(0, cut));
    EXPECT_FALSE(res.ok()) << cut;
  }
}

// --- EXPLAIN / trace / metrics (DESIGN.md §Observability) ---

// The streaming path: no usable index, QuickXScan over every document. The
// plan text is deterministic by design (no timings, no pointers), so the
// golden pins the exact format.
TEST(ExplainTest, FullScanPlanGolden) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(
      coll->InsertDocument(nullptr, "<cat><p><price>10</price></p></cat>")
          .ok());
  ASSERT_TRUE(
      coll->InsertDocument(nullptr, "<cat><p><price>3</price></p></cat>")
          .ok());
  QueryOptions o;
  o.explain = true;
  auto res = coll->Query(nullptr, "/cat/p[price > 5]", o).MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);
  // "(heuristic)" because no index covers the predicates — the plan came
  // from a structural rule, not the cost model; "plan cache: miss" because
  // this query text was never compiled before.
  EXPECT_EQ(res.profile.PlanText(),
            "query: /cat/p[price > 5.000000]\n"
            "access path: full-scan (no index covers the predicates)\n"
            "stats: epoch=2 docs=2 records/doc=1.00 nodes/doc=4.00"
            " (heuristic)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=0 candidate_docs=2 candidate_anchors=0"
            " docs_evaluated=2 records_fetched=2 results=1\n"
            "scan: events=18 instances=8 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
  // The timed rendering adds phases; "total" is always last.
  std::string text = res.profile.ToText();
  EXPECT_NE(text.find("pages fetched:"), std::string::npos);
  EXPECT_NE(text.find("phase total"), std::string::npos);
  ASSERT_FALSE(res.profile.phases.empty());
  EXPECT_EQ(res.profile.phases.back().name, "total");
}

// The index path: two exact-match probes combined by DocID ANDing.
TEST(ExplainTest, IndexAndingPlanGolden) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"price", "/cat/p/price", ValueType::kDouble, 128})
                  .ok());
  ASSERT_TRUE(
      coll->CreateValueIndex({"qty", "/cat/p/qty", ValueType::kDouble, 128})
          .ok());
  ASSERT_TRUE(coll->InsertDocument(
                      nullptr,
                      "<cat><p><price>10</price><qty>5</qty></p></cat>")
                  .ok());
  ASSERT_TRUE(coll->InsertDocument(
                      nullptr,
                      "<cat><p><price>10</price><qty>7</qty></p></cat>")
                  .ok());
  ASSERT_TRUE(coll->InsertDocument(
                      nullptr,
                      "<cat><p><price>8</price><qty>5</qty></p></cat>")
                  .ok());
  // Forced heuristic planning pins the Section 4.3 rule text and the probe
  // line format (and bypasses the plan cache, hence "off"). The cost-based
  // choice on this tiny collection is covered by planner_test.cc.
  QueryOptions o;
  o.explain = true;
  o.use_heuristic_planner = true;
  auto res =
      coll->Query(nullptr, "/cat/p[price = 10 and qty = 5]", o).MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);
  EXPECT_EQ(res.profile.PlanText(),
            "query: /cat/p[price = 10.000000 and qty = 5.000000]\n"
            "access path: docid-anding/oring (avg records/doc 1.00 <= 2.00)\n"
            "  probe: /cat/p/qty = ... index 'qty' (exact)\n"
            "  probe: /cat/p/price = ... index 'price' (exact)\n"
            "  combine: ANDing\n"
            "stats: epoch=5 docs=3 records/doc=1.00 nodes/doc=6.00"
            " (heuristic)\n"
            "plan cache: off\n"
            "recheck: no\n"
            "cardinality: postings=4 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=12 instances=5 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
  // The cost-based planner, seeing only 3 documents, prices the full scan
  // below two index descends and flips the plan — same answer either way.
  QueryOptions auto_o;
  auto_o.explain = true;
  auto auto_res =
      coll->Query(nullptr, "/cat/p[price = 10 and qty = 5]", auto_o)
          .MoveValue();
  ASSERT_EQ(auto_res.nodes.size(), 1u);
  EXPECT_EQ(auto_res.profile.access_method, "full-scan");
  EXPECT_TRUE(auto_res.profile.stats_valid);
  EXPECT_NE(auto_res.profile.reason.find("cost:"), std::string::npos);
}

// trace=true implies explain and adds per-step trace lines.
TEST(ExplainTest, TraceAddsStepLines) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"price", "/cat/p/price", ValueType::kDouble, 128})
                  .ok());
  // Enough documents with distinct prices that the cost model picks the
  // index probe over the full scan (1 estimated match vs 8 doc evals).
  for (int i = 0; i < 8; i++) {
    std::string doc = "<cat><p><price>" + std::to_string(10 + i) +
                      "</price></p></cat>";
    ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
  }
  QueryOptions o;
  o.trace = true;
  auto res = coll->Query(nullptr, "/cat/p[price = 10]", o).MoveValue();
  EXPECT_TRUE(res.profile.enabled);
  EXPECT_TRUE(res.profile.trace);
  ASSERT_FALSE(res.profile.trace_lines.empty());
  EXPECT_NE(res.profile.trace_lines[0].find("index 'price'"),
            std::string::npos);
  EXPECT_NE(res.profile.ToText().find("trace: "), std::string::npos);
}

// Plain queries must not pay for profiling: the profile stays disabled and
// empty, while the always-on engine counters still tick.
TEST(ExplainTest, DisabledByDefault) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  auto res = coll->Query(nullptr, "/a/b").MoveValue();
  EXPECT_FALSE(res.profile.enabled);
  EXPECT_TRUE(res.profile.probes.empty());
  EXPECT_TRUE(res.profile.phases.empty());
  EXPECT_EQ(engine->MetricsSnapshot().Value("query.executions"), 1u);
}

TEST(MetricsTest, SnapshotCoversEverySubsystem) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  auto res = coll->Query(nullptr, "/a/b").MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);

  obs::MetricsSnapshot snap = engine->MetricsSnapshot();
  // One metric per canonical name, each subsystem represented.
  for (const char* name :
       {"buffer.hits", "buffer.misses", "buffer.evictions",
        "buffer.writebacks", "buffer.checksum_failures", "record.inserts",
        "record.live_records", "record.data_pages", "io.reads", "io.writes",
        "io.syncs", "io.retries", "lock.acquisitions", "lock.deadlocks",
        "query.executions", "query.parallel_executions", "query.latency_us",
        "engine.collections", "events.emitted", "events.overwritten"}) {
    EXPECT_NE(snap.Find(name), nullptr) << name;
  }
  EXPECT_EQ(snap.Value("engine.collections"), 1u);
  EXPECT_EQ(snap.Value("record.inserts"), 1u);
  EXPECT_EQ(snap.Value("record.live_records"), 1u);
  EXPECT_EQ(snap.Value("query.executions"), 1u);
  EXPECT_GT(snap.Value("buffer.hits"), 0u);
  EXPECT_EQ(snap.Value("lock.deadlocks"), 0u);
  const obs::Metric* lat = snap.Find("query.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(lat->hist.count, 1u);
  // The whole snapshot serializes and round-trips.
  auto back = obs::MetricsSnapshot::FromJson(snap.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().metrics.size(), snap.metrics.size());
  EXPECT_NE(snap.ToText().find("query.latency_us"), std::string::npos);
}

TEST(MetricsTest, WalCommitMetricsAndEvents) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("xdb_obs_wal_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  {
    EngineOptions opts;
    opts.dir = dir;
    opts.sync_commits = true;
    auto engine = Engine::Open(opts).MoveValue();
    Collection* coll = engine->CreateCollection("docs").value();
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>1</a>").ok());
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>2</a>").ok());

    obs::MetricsSnapshot snap = engine->MetricsSnapshot();
    EXPECT_GE(snap.Value("wal.commits"), 2u);
    EXPECT_GE(snap.Value("wal.group_commit.rounds"), 1u);
    EXPECT_GT(snap.Value("wal.io.writes"), 0u);
    const obs::Metric* batch = snap.Find("wal.group_commit.batch_size");
    ASSERT_NE(batch, nullptr);
    EXPECT_GE(batch->hist.count, 1u);

    ASSERT_TRUE(engine->Checkpoint().ok());
    // The event log saw the recovery bracket from Open and the checkpoint.
    std::vector<obs::Event> events = engine->RecentEvents();
    ASSERT_GE(events.size(), 4u);
    EXPECT_EQ(events[0].kind, obs::EventKind::kRecoveryBegin);
    EXPECT_EQ(events[1].kind, obs::EventKind::kRecoveryEnd);
    bool saw_begin = false, saw_end = false;
    for (const obs::Event& e : events) {
      if (e.kind == obs::EventKind::kCheckpointBegin) saw_begin = true;
      if (e.kind == obs::EventKind::kCheckpointEnd) saw_end = true;
    }
    EXPECT_TRUE(saw_begin);
    EXPECT_TRUE(saw_end);
    for (size_t i = 1; i < events.size(); i++)
      EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  std::filesystem::remove_all(dir);
}

// --- wait-state attribution, slow-query ring, DebugSnapshot (this PR) ---

// The acceptance scenario: a cold-cache indexed query's EXPLAIN shows where
// the time went (buffer-miss I/O must appear after a reopen) and the phase
// lines account for the total.
TEST(WaitAttributionTest, ColdCacheExplainShowsWaitBreakdown) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("xdb_waits_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  // Large documents + a deliberately tiny buffer pool: writing 64 ~6KB
  // documents through 8 frames leaves almost none of them resident, so
  // evaluating every candidate must take the miss path (kBufferIo) — the
  // same read path a freshly reopened (cold) pool takes.
  constexpr int kDocs = 64;
  const std::string payload(6000, 'x');
  {
    EngineOptions opts;
    opts.dir = dir;
    auto engine = Engine::Open(opts).MoveValue();
    CollectionOptions copts;
    copts.buffer_pages = 8;
    Collection* coll = engine->CreateCollection("docs", copts).value();
    ASSERT_TRUE(coll->CreateValueIndex(
                        {"price", "/cat/p/price", ValueType::kDouble, 128})
                    .ok());
    for (int i = 0; i < kDocs; i++) {
      std::string doc = "<cat><p><price>" + std::to_string(i) +
                        "</price><desc>" + payload + "</desc></p></cat>";
      ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
    }
    ASSERT_TRUE(engine->Checkpoint().ok());
    QueryOptions o;
    o.explain = true;
    o.force = ForceMethod::kDocIdList;
    auto res = coll->Query(nullptr, "/cat/p[price >= 0]", o).MoveValue();
    ASSERT_EQ(res.nodes.size(), static_cast<size_t>(kDocs));

    const obs::QueryProfile& prof = res.profile;
    ASSERT_FALSE(prof.waits.empty());
    uint64_t line_sum = 0;
    const obs::QueryProfile::WaitLine* buffer_io = nullptr;
    for (const auto& w : prof.waits) {
      EXPECT_GT(w.count, 0u) << w.state;
      line_sum += w.total_us;
      if (std::string(w.state) == "buffer_io") buffer_io = &w;
    }
    ASSERT_NE(buffer_io, nullptr) << prof.ToText();
    EXPECT_GT(buffer_io->count, 0u);
    EXPECT_EQ(prof.wait_total_us, line_sum);
    std::string text = prof.ToText();
    EXPECT_NE(text.find("wait  buffer_io"), std::string::npos) << text;
    EXPECT_NE(text.find("wait total: "), std::string::npos) << text;

    // Phase accounting: "total" covers plan + execution, and the timed
    // phases (plan, probe, merge, eval) sum to it within 10% plus a small
    // absolute slack for untimed glue on very fast queries.
    ASSERT_FALSE(prof.phases.empty());
    ASSERT_EQ(prof.phases.back().name, "total");
    const uint64_t total = prof.phases.back().wall_us;
    uint64_t phase_sum = 0;
    for (const auto& ph : prof.phases)
      if (ph.name != "total") phase_sum += ph.wall_us;
    EXPECT_LE(phase_sum, total + total / 10 + 200) << prof.ToText();
    EXPECT_GE(phase_sum + total / 10 + 200, total) << prof.ToText();
    // The attributed waits are part of the measured wall time, never more.
    EXPECT_LE(prof.wait_total_us, total + total / 10 + 200);
  }
  std::filesystem::remove_all(dir);
}

TEST(SlowQueryTest, RingCapturesOverThreshold) {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  opts.slow_query_us = 1;  // everything is slow
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  auto res = coll->Query(nullptr, "/a/b").MoveValue();
  ASSERT_EQ(res.nodes.size(), 1u);

  std::vector<obs::SlowQueryRecord> recent = engine->slow_queries()->Recent();
  ASSERT_EQ(recent.size(), 1u);
  const obs::SlowQueryRecord& rec = recent[0];
  EXPECT_EQ(rec.collection, "docs");
  EXPECT_EQ(rec.query, "/a/b");
  EXPECT_EQ(rec.access_method, "full-scan");
  EXPECT_EQ(rec.results, 1u);
  EXPECT_GE(rec.parallelism, 1u);
  EXPECT_GE(rec.wall_us, 1u);
  EXPECT_GT(rec.timestamp_us, 0u);
  // The capture carries the full wait breakdown of the query.
  EXPECT_LE(rec.TotalWaitUs(), rec.wall_us);
  // And the always-on counters see the ring.
  EXPECT_EQ(engine->MetricsSnapshot().Value("slowlog.recorded"), 1u);
}

TEST(SlowQueryTest, ZeroThresholdDisablesCapture) {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  opts.slow_query_us = 0;
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  ASSERT_TRUE(coll->Query(nullptr, "/a/b").ok());
  EXPECT_TRUE(engine->slow_queries()->Recent().empty());
}

TEST(EngineDebugSnapshotTest, CapturesStateAndRoundTrips) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("xdb_snap_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  {
    EngineOptions opts;
    opts.dir = dir;
    opts.slow_query_us = 1;
    auto engine = Engine::Open(opts).MoveValue();
    Collection* coll = engine->CreateCollection("docs").value();
    for (int i = 0; i < 5; i++) {
      ASSERT_TRUE(
          coll->InsertDocument(nullptr, "<a><b>" + std::to_string(i) +
                                            "</b></a>")
              .ok());
    }
    ASSERT_TRUE(coll->Query(nullptr, "/a/b").ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
    // Post-checkpoint WAL traffic so the snapshot sees a non-empty log.
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>post</b></a>").ok());

    obs::DebugSnapshot snap = engine->DebugSnapshot();
    EXPECT_GT(snap.captured_at_us, 0u);
    EXPECT_EQ(snap.role, "primary");
    EXPECT_GT(snap.wal_size, 0u);
    ASSERT_EQ(snap.collections.size(), 1u);
    const obs::DebugSnapshot::CollectionInfo& c = snap.collections[0];
    EXPECT_EQ(c.name, "docs");
    EXPECT_EQ(c.doc_count, 6u);
    EXPECT_GT(c.node_count, 0u);
    EXPECT_GT(c.buffer_capacity, 0u);
    EXPECT_LE(c.buffer_resident, c.buffer_capacity);
    EXPECT_GT(c.buffer_hits + c.buffer_misses, 0u);
    // The snapshot embeds the other two observability layers wholesale.
    EXPECT_NE(snap.metrics.Find("buffer.hits"), nullptr);
    EXPECT_NE(snap.metrics.Find("wait.buffer_io.us"), nullptr);
    ASSERT_FALSE(snap.events.empty());
    ASSERT_FALSE(snap.slow_queries.empty());
    EXPECT_EQ(snap.slow_queries[0].query, "/a/b");

    // The xdb_top contract: serialize, parse, re-serialize, byte-equal.
    std::string json = snap.ToJson();
    auto back = obs::DebugSnapshot::FromJson(json);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value().ToJson(), json);
    EXPECT_EQ(back.value().collections[0], c);
    std::string text = snap.ToText();
    EXPECT_NE(text.find("docs"), std::string::npos);
    EXPECT_NE(text.find("primary"), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(MetricsTest, StructuralIndexStatsSurfaced) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  ASSERT_TRUE(
      coll->InsertDocument(nullptr, "<a><b>x</b><b>y</b></a>").ok());

  obs::MetricsSnapshot snap = engine->MetricsSnapshot();
  EXPECT_EQ(snap.Value("index.structural.indexes"), 1u);
  EXPECT_EQ(snap.Value("index.structural.entries"), 3u);  // a, b, b
  EXPECT_EQ(snap.Value("index.structural.entries_added"), 3u);
  EXPECT_EQ(snap.Value("index.structural.entries_removed"), 0u);
  EXPECT_EQ(snap.Value("index.structural.names"), 2u);
  EXPECT_EQ(snap.Value("index.structural.postings.a"), 1u);
  EXPECT_EQ(snap.Value("index.structural.postings.b"), 2u);

  // Removal keeps the lifetime counters monotonic while the gauges drop.
  ASSERT_TRUE(coll->DeleteDocument(nullptr, 1).ok());
  snap = engine->MetricsSnapshot();
  EXPECT_EQ(snap.Value("index.structural.entries"), 0u);
  EXPECT_EQ(snap.Value("index.structural.entries_added"), 3u);
  EXPECT_EQ(snap.Value("index.structural.entries_removed"), 3u);
}

}  // namespace
}  // namespace xdb
