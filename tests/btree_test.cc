// B+tree tests: ordering, duplicates, splits at scale, deletion, iteration,
// persistence, and a randomized differential test against std::multimap.
#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"

namespace xdb {
namespace {

class BtreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 256);
    tree_ = BTree::Create(bm_.get()).MoveValue();
  }

  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BtreeTest, InsertAndSeek) {
  ASSERT_TRUE(tree_->Insert("banana", "1").ok());
  ASSERT_TRUE(tree_->Insert("apple", "2").ok());
  ASSERT_TRUE(tree_->Insert("cherry", "3").ok());
  auto it = tree_->Seek("apple").MoveValue();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "apple");
  EXPECT_EQ(it.value().ToString(), "2");
  ASSERT_TRUE(it.Next().ok());
  EXPECT_EQ(it.key().ToString(), "banana");
  ASSERT_TRUE(it.Next().ok());
  EXPECT_EQ(it.key().ToString(), "cherry");
  ASSERT_TRUE(it.Next().ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BtreeTest, SeekLandsOnLowerBound) {
  ASSERT_TRUE(tree_->Insert("b", "x").ok());
  ASSERT_TRUE(tree_->Insert("d", "y").ok());
  auto it = tree_->Seek("c").MoveValue();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "d");
  it = tree_->Seek("e").MoveValue();
  EXPECT_FALSE(it.Valid());
}

TEST_F(BtreeTest, DuplicateKeysSortedByValue) {
  ASSERT_TRUE(tree_->Insert("k", "v3").ok());
  ASSERT_TRUE(tree_->Insert("k", "v1").ok());
  ASSERT_TRUE(tree_->Insert("k", "v2").ok());
  auto it = tree_->Seek("k").MoveValue();
  std::vector<std::string> values;
  while (it.Valid() && it.key() == Slice("k")) {
    values.push_back(it.value().ToString());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(values, (std::vector<std::string>{"v1", "v2", "v3"}));
}

TEST_F(BtreeTest, InsertIsIdempotentOnExactPair) {
  ASSERT_TRUE(tree_->Insert("k", "v").ok());
  ASSERT_TRUE(tree_->Insert("k", "v").ok());
  auto stats = tree_->ComputeStats().value();
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(BtreeTest, DeleteExactPair) {
  ASSERT_TRUE(tree_->Insert("k", "v1").ok());
  ASSERT_TRUE(tree_->Insert("k", "v2").ok());
  ASSERT_TRUE(tree_->Delete("k", "v1").ok());
  EXPECT_TRUE(tree_->Delete("k", "v1").IsNotFound());
  auto it = tree_->Seek("k").MoveValue();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value().ToString(), "v2");
}

TEST_F(BtreeTest, ContainsChecksKeyOnly) {
  ASSERT_TRUE(tree_->Insert("present", "v").ok());
  EXPECT_TRUE(tree_->Contains("present").value());
  EXPECT_FALSE(tree_->Contains("absent").value());
  EXPECT_FALSE(tree_->Contains("presen").value());
}

TEST_F(BtreeTest, ManyInsertsSplitAndStaySorted) {
  Random rng(3);
  const int kN = 20000;
  for (int i = 0; i < kN; i++) {
    std::string key = "key" + std::to_string(rng.Next() % 1000000);
    std::string value = std::to_string(i);
    ASSERT_TRUE(tree_->Insert(key, value).ok()) << i;
  }
  auto stats = tree_->ComputeStats().value();
  EXPECT_GT(stats.height, 1u);
  EXPECT_GT(stats.leaf_pages, 1u);

  auto it = tree_->SeekToFirst().MoveValue();
  std::string prev_key, prev_value;
  uint64_t count = 0;
  bool first = true;
  while (it.Valid()) {
    if (!first) {
      int c = Slice(prev_key).Compare(it.key());
      ASSERT_LE(c, 0);
      if (c == 0) {
        ASSERT_LT(Slice(prev_value).Compare(it.value()), 0);
      }
    }
    prev_key = it.key().ToString();
    prev_value = it.value().ToString();
    first = false;
    count++;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, stats.entries);
}

TEST_F(BtreeTest, RandomizedDifferentialAgainstStdMap) {
  Random rng(99);
  std::map<std::pair<std::string, std::string>, bool> model;
  for (int iter = 0; iter < 8000; iter++) {
    std::string key(1, static_cast<char>('a' + rng.Uniform(8)));
    key += std::to_string(rng.Uniform(200));
    std::string value = std::to_string(rng.Uniform(5));
    if (rng.OneIn(4) && !model.empty()) {
      // Delete a random existing pair.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(tree_->Delete(it->first.first, it->first.second).ok());
      model.erase(it);
    } else {
      tree_->Insert(key, value).ok();
      model[{key, value}] = true;
    }
  }
  // Full scan must equal the model.
  auto it = tree_->SeekToFirst().MoveValue();
  auto mit = model.begin();
  while (it.Valid() && mit != model.end()) {
    EXPECT_EQ(it.key().ToString(), mit->first.first);
    EXPECT_EQ(it.value().ToString(), mit->first.second);
    ASSERT_TRUE(it.Next().ok());
    ++mit;
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_EQ(mit, model.end());
}

TEST_F(BtreeTest, RootPageIdStableAcrossSplits) {
  PageId root = tree_->root();
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(
        tree_->Insert("stable-key-" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(tree_->root(), root);
}

TEST_F(BtreeTest, LargeEntryRejected) {
  std::string huge(8000, 'x');
  EXPECT_FALSE(tree_->Insert(huge, "v").ok());
}

TEST_F(BtreeTest, BinaryKeysWithEmbeddedZeros) {
  std::string k1{'\0', '\x01'};
  std::string k2{'\0', '\x02'};
  ASSERT_TRUE(tree_->Insert(k1, "a").ok());
  ASSERT_TRUE(tree_->Insert(k2, "b").ok());
  auto it = tree_->Seek(k1).MoveValue();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value().ToString(), "a");
  ASSERT_TRUE(it.Next().ok());
  EXPECT_EQ(it.value().ToString(), "b");
}

TEST(BtreePersistTest, SurvivesReopen) {
  TableSpaceOptions opts;  // file-backed
  std::string path = "/tmp/xdb_btree_persist_" + std::to_string(::getpid());
  std::remove(path.c_str());
  PageId root;
  {
    auto space = TableSpace::Create(path, opts).MoveValue();
    BufferManager bm(space.get(), 128);
    auto tree = BTree::Create(&bm).MoveValue();
    root = tree->root();
    for (int i = 0; i < 3000; i++)
      ASSERT_TRUE(tree->Insert("pk" + std::to_string(i), std::to_string(i)).ok());
    ASSERT_TRUE(bm.FlushAll().ok());
    ASSERT_TRUE(space->Sync().ok());
  }
  {
    auto space = TableSpace::Open(path, opts).MoveValue();
    BufferManager bm(space.get(), 128);
    auto tree = BTree::Open(&bm, root).MoveValue();
    for (int i = 0; i < 3000; i += 37) {
      auto it = tree->Seek("pk" + std::to_string(i)).MoveValue();
      ASSERT_TRUE(it.Valid()) << i;
      EXPECT_EQ(it.key().ToString(), "pk" + std::to_string(i));
      EXPECT_EQ(it.value().ToString(), std::to_string(i));
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xdb
