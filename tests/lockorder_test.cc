// Tests for the runtime lock-order enforcer (common/lock_order.h).
//
// The death tests are the "deliberately-inverted pair behind a test-only
// hook" of the xdb-check issue: the kTest* ranks exist only for these
// fixtures, and each abort is matched against a regex proving the report
// names BOTH acquisition sites (the held lock's and the attempted one's).
// The suite is meaningful only when built with -DXDB_LOCK_ORDER_CHECK=ON;
// without it every test SKIPs (the enforcer is compiled away, which the
// release-overhead bench datapoint in BENCH_RESULTS.json depends on).

#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "gtest/gtest.h"

namespace xdb {
namespace {

#if defined(XDB_LOCK_ORDER_CHECK)

TEST(LockOrderTest, InOrderNestingIsSilent) {
  Mutex low(LockRank::kTestLow);
  Mutex mid(LockRank::kTestMid);
  Mutex high(LockRank::kTestHigh);
  {
    MutexLock a(low);
    MutexLock b(mid);
    MutexLock c(high);
    EXPECT_EQ(lock_order::HeldDepthForTest(), 3);
  }
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
}

TEST(LockOrderDeathTest, InversionAbortsNamingBothSites) {
  Mutex low(LockRank::kTestLow);
  Mutex high(LockRank::kTestHigh);
  // Both acquisition sites — the held kTestHigh and the attempted kTestLow —
  // must appear in this file, on one line, with their line numbers.
  ASSERT_DEATH(
      {
        MutexLock a(high);
        MutexLock b(low);
      },
      "out-of-order acquire.*acquiring kTestLow \\(rank 1000.*"
      "lockorder_test\\.cc:[0-9]+ while holding kTestHigh \\(rank 1020.*"
      "lockorder_test\\.cc:[0-9]+");
}

TEST(LockOrderDeathTest, SameRankCrossInstanceAborts) {
  Mutex a(LockRank::kTestMid);
  Mutex b(LockRank::kTestMid);
  ASSERT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "same-rank cross-instance acquire.*acquiring kTestMid.*"
      "while holding kTestMid");
}

TEST(LockOrderDeathTest, ReentrantAcquireAborts) {
  Mutex mu(LockRank::kTestMid);
  ASSERT_DEATH(
      {
        MutexLock outer(mu);
        mu.Lock();
      },
      "re-entrant acquire.*acquiring kTestMid.*while holding kTestMid");
}

TEST(LockOrderDeathTest, EngineRanksUseRealNamesInReport) {
  // Rank names in reports come from the real table, not just test ranks.
  Mutex wal(LockRank::kWalAppend);
  Mutex catalog(LockRank::kEngineCatalog);
  ASSERT_DEATH(
      {
        MutexLock a(wal);
        MutexLock b(catalog);
      },
      "acquiring kEngineCatalog \\(rank 20.*while holding kWalAppend "
      "\\(rank 50");
}

TEST(LockOrderTest, StackUnwindsAcrossExceptions) {
  Mutex low(LockRank::kTestLow);
  Mutex high(LockRank::kTestHigh);
  try {
    MutexLock a(low);
    MutexLock b(high);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
  // After the unwind the order starts fresh: high-then... low alone is fine.
  MutexLock c(high);
  EXPECT_EQ(lock_order::HeldDepthForTest(), 1);
}

TEST(LockOrderTest, CondVarWaitReacquireRestoresEntry) {
  Mutex mu(LockRank::kTestMid);
  Mutex high(LockRank::kTestHigh);
  CondVar cv;
  MutexLock lock(mu);
  // A timed wait on an already-passed deadline exercises the full
  // release/re-acquire path without a second thread.
  auto past = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(cv.WaitUntil(lock, past), std::cv_status::timeout);
  EXPECT_EQ(lock_order::HeldDepthForTest(), 1);
  // The restored entry still enforces order: a higher rank nests fine...
  MutexLock inner(high);
  EXPECT_EQ(lock_order::HeldDepthForTest(), 2);
}

TEST(LockOrderDeathTest, CondVarWaitReacquireStillEnforcesOrder) {
  Mutex mu(LockRank::kTestMid);
  Mutex low(LockRank::kTestLow);
  CondVar cv;
  ASSERT_DEATH(
      {
        MutexLock lock(mu);
        auto past = std::chrono::steady_clock::now() - std::chrono::seconds(1);
        cv.WaitUntil(lock, past);
        // ...and a lower rank after the re-acquire still aborts.
        MutexLock bad(low);
      },
      "out-of-order acquire.*acquiring kTestLow.*while holding kTestMid");
}

TEST(LockOrderTest, CondVarWaitWithNotifierThread) {
  // Cross-thread wait/notify: the waiter's stack entry is popped during the
  // wait and re-pushed on wake, and the notifier takes the same mutex
  // without tripping the checker (held stacks are per-thread).
  Mutex mu(LockRank::kTestMid);
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    EXPECT_EQ(lock_order::HeldDepthForTest(), 1);
  });
  {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
}

TEST(LockOrderTest, TryLockPushesAndPopsLikeLock) {
  Mutex low(LockRank::kTestLow);
  Mutex high(LockRank::kTestHigh);
  MutexLock a(low);
  ASSERT_TRUE(high.TryLock());
  EXPECT_EQ(lock_order::HeldDepthForTest(), 2);
  high.Unlock();
  EXPECT_EQ(lock_order::HeldDepthForTest(), 1);
}

TEST(LockOrderDeathTest, TryLockRespectsOrderToo) {
  Mutex low(LockRank::kTestLow);
  Mutex high(LockRank::kTestHigh);
  ASSERT_DEATH(
      {
        MutexLock a(high);
        low.TryLock();
      },
      "out-of-order acquire.*acquiring kTestLow.*while holding kTestHigh");
}

TEST(LockOrderTest, SharedLocksFollowTheSameOrder) {
  SharedMutex low(LockRank::kTestLow);
  SharedMutex high(LockRank::kTestHigh);
  ReaderMutexLock a(low);
  WriterMutexLock b(high);
  EXPECT_EQ(lock_order::HeldDepthForTest(), 2);
}

TEST(LockOrderDeathTest, SharedInversionAborts) {
  SharedMutex low(LockRank::kTestLow);
  SharedMutex high(LockRank::kTestHigh);
  ASSERT_DEATH(
      {
        ReaderMutexLock a(high);
        ReaderMutexLock b(low);
      },
      "out-of-order acquire.*acquiring kTestLow.*while holding kTestHigh");
}

TEST(LockOrderDeathTest, RecursiveSharedAcquireAborts) {
  // Same-thread shared-after-shared on one std::shared_mutex is UB; the
  // checker turns it into a deterministic abort.
  SharedMutex latch(LockRank::kTestMid);
  ASSERT_DEATH(
      {
        ReaderMutexLock a(latch);
        ReaderMutexLock b(latch);
      },
      "re-entrant acquire.*kTestMid");
}

TEST(LockOrderDeathTest, HeldStackDumpListsEveryLock) {
  Mutex low(LockRank::kTestLow);
  Mutex mid(LockRank::kTestMid);
  Mutex high(LockRank::kTestHigh);
  ASSERT_DEATH(
      {
        MutexLock a(low);
        MutexLock b(mid);
        MutexLock c(high);
        MutexLock d(low);  // inversion with three locks held
      },
      "held locks \\(outermost first\\):");
}

#else  // !XDB_LOCK_ORDER_CHECK

TEST(LockOrderTest, EnforcerCompiledOut) {
  GTEST_SKIP() << "build with -DXDB_LOCK_ORDER_CHECK=ON to run the "
                  "lock-order enforcer tests";
}

#endif  // XDB_LOCK_ORDER_CHECK

}  // namespace
}  // namespace xdb
