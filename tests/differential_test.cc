// Differential fuzz driver: N seeded (doc, query) pairs through every XPath
// engine and storage-backed plan, asserting identical node-ID result sets.
//
// Replaying a failure is one line — the binary has its own main() so it
// accepts:
//   ./differential_test --seed=123456        # re-run exactly that case
//   ./differential_test --iters=5000         # longer sweep
// (env vars XDB_DIFF_SEED / XDB_DIFF_ITERS work too, for ctest -E setups).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "engine/engine.h"
#include "repl/replica_applier.h"
#include "repl/ship_transport.h"
#include "repl/wal_shipper.h"
#include "testing/differential.h"
#include "testing/fault_injector.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xdb {
namespace testing {
namespace {

struct DiffFlags {
  uint64_t base_seed = 0xD1FFu;
  uint64_t iters = 1000;
  uint64_t replay_seed = 0;
  bool replay = false;
};

DiffFlags* flags() {
  static DiffFlags f;
  return &f;
}

// --- the sweep: the acceptance-criteria workhorse ---

TEST(DifferentialTest, SweepAgreesAcrossEngines) {
  if (flags()->replay) GTEST_SKIP() << "replaying --seed instead";
  DiffOptions opts;
  SweepResult res =
      RunSweep(flags()->base_seed, flags()->iters, opts, &std::cerr);
  EXPECT_TRUE(res.ok) << res.first_failure.Report();
  EXPECT_EQ(res.cases_run, flags()->iters);
  // The sweep only counts as coverage if every engine actually ran.
  EXPECT_EQ(res.quickxscan_runs, res.cases_run);
  EXPECT_GT(res.naive_stream_runs, 0u)
      << "no generated query fell in the naive evaluator's linear subset";
  // Five force modes (structural interval scan included) + cached re-run
  // of the auto plan + forced heuristic.
  EXPECT_EQ(res.plan_runs, res.cases_run * 7);
}

// The same sweep in deep-document mode: every document gains a 20–60 level
// spine of recurring element names, so descendant axes cross dozens of
// levels and reflexively match spine elements. This is the regime the
// structural index's (pre, post) containment test is for — and where an
// off-by-one in pre/post numbering or interval bounds would diverge from
// the streaming engines.
TEST(DifferentialTest, DeepDocumentSweepAgreesAcrossEngines) {
  if (flags()->replay) GTEST_SKIP() << "replaying --seed instead";
  DiffOptions opts;
  opts.xml.spine_depth_min = 20;
  opts.xml.spine_depth_max = 60;
  opts.xml.element_names = 3;  // denser name reuse along the spine
  opts.xpath.descendant_prob = 0.7;
  const uint64_t iters = std::min<uint64_t>(flags()->iters, 300);
  SweepResult res = RunSweep(flags()->base_seed + 0xDEE9, iters, opts,
                             &std::cerr);
  EXPECT_TRUE(res.ok) << res.first_failure.Report();
  EXPECT_EQ(res.cases_run, iters);
  EXPECT_EQ(res.quickxscan_runs, res.cases_run);
  EXPECT_EQ(res.plan_runs, res.cases_run * 7);
}

TEST(DifferentialTest, SeedReplay) {
  if (!flags()->replay) GTEST_SKIP() << "no --seed given";
  DiffOptions opts;
  DiffOutcome out = RunCase(flags()->replay_seed, opts);
  std::cerr << "seed " << flags()->replay_seed << " doc:   " << out.doc
            << "\nseed " << flags()->replay_seed << " query: " << out.query
            << "\n";
  EXPECT_TRUE(out.ok) << out.Report();
}

// --- generator health: every seed must yield a valid corpus entry ---

TEST(DifferentialTest, GeneratorsProduceParseableCorpus) {
  for (uint64_t seed = 1; seed <= 500; seed++) {
    DiffOptions opts;
    DiffCase c = GenCase(seed, opts);
    NameDictionary dict;
    Parser parser(&dict);
    TokenWriter tokens;
    EXPECT_TRUE(parser.Parse(c.doc, &tokens).ok())
        << "seed " << seed << " doc: " << c.doc;
    EXPECT_TRUE(xpath::ParsePath(c.query).ok())
        << "seed " << seed << " query: " << c.query;
  }
}

TEST(DifferentialTest, CaseGenerationIsDeterministic) {
  DiffOptions opts;
  DiffCase a = GenCase(42, opts);
  DiffCase b = GenCase(42, opts);
  EXPECT_EQ(a.doc, b.doc);
  EXPECT_EQ(a.query, b.query);
  DiffCase c = GenCase(43, opts);
  EXPECT_TRUE(a.doc != c.doc || a.query != c.query);
}

// The duplicate-attribute guard: default options never emit an element with
// two same-named attributes (the parser would reject the document and the
// round trip would fail for an invalid-input reason, not an engine bug);
// switching the guard off must eventually produce exactly that rejection.
TEST(DifferentialTest, DuplicateAttributeGuard) {
  workload::RandomXmlOptions guarded;
  guarded.max_attrs_per_element = 4;
  workload::RandomXmlOptions unguarded = guarded;
  unguarded.allow_duplicate_attrs = true;

  int unguarded_rejects = 0;
  for (uint64_t seed = 1; seed <= 300; seed++) {
    NameDictionary dict;
    Parser parser(&dict);
    {
      Random rng(seed);
      TokenWriter tokens;
      EXPECT_TRUE(
          parser.Parse(workload::GenRandomXml(&rng, guarded), &tokens).ok())
          << "guarded generator emitted unparseable XML at seed " << seed;
    }
    {
      Random rng(seed);
      TokenWriter tokens;
      if (!parser.Parse(workload::GenRandomXml(&rng, unguarded), &tokens).ok())
        unguarded_rejects++;
    }
  }
  EXPECT_GT(unguarded_rejects, 0)
      << "allow_duplicate_attrs never produced a duplicate";
}

// --- the fixed corpus regression net: tricky shapes with known-good seeds ---

TEST(DifferentialTest, HandPickedAdversarialCases) {
  static const struct {
    const char* doc;
    const char* query;
  } kCases[] = {
      {"<a><a><a><a>1</a></a></a></a>", "//a//a"},
      {"<a><a><a><a>1</a></a></a></a>", "//a[a]/a"},
      {"<a v=\"1\"><b v=\"2\"><a v=\"3\"/></b></a>", "//a[@v > 1]"},
      {"<a><b>5</b><b>50</b></a>", "/a[b < 10]/b"},
      {"<a><b><c>1</c></b><b/></a>", "//b[not(c)]"},
      {"<e><e><e/></e></e>", "//e[e]//e"},
      {"<a>1<b>2</b>3</a>", "/a/text()"},
      {"<a><b v=\"7\"/></a>", "//@v"},
      {"<c><d>9</d></c>", "/c[d = 9 or d = 10]"},
      {"<a><a/><b><a/></b></a>", "/a//a"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(CompareEngines(c.doc, c.query, true), "")
        << "doc=" << c.doc << " query=" << c.query;
  }
}

// --- parallel execution determinism: the fan-out must be invisible ---

// The same query over the same multi-document collection, parallelism=1 vs
// parallelism=8, must produce byte-identical (doc_id, node_id, string_value)
// sequences. The executor evaluates contiguous candidate chunks on worker
// threads and merges them in chunk order before normalization, so any
// divergence here is an executor bug, not nondeterminism to tolerate.
TEST(DifferentialTest, ParallelExecutionMatchesSerial) {
  EngineOptions eopts;
  eopts.in_memory = true;
  eopts.enable_wal = false;
  eopts.num_query_threads = 8;
  auto engine = Engine::Open(eopts).MoveValue();
  Collection* coll = engine->CreateCollection("diff").value();

  DiffOptions opts;
  constexpr uint64_t kDocs = 32;
  for (uint64_t seed = 1; seed <= kDocs; seed++) {
    DiffCase c = GenCase(flags()->base_seed + seed, opts);
    ASSERT_TRUE(coll->InsertDocument(nullptr, c.doc).ok())
        << "doc seed " << flags()->base_seed + seed;
  }

  // The generated queries share the generators' tag alphabet, so they hit a
  // varying subset of the 32 documents — small sets take the serial
  // fallback, large ones the parallel path; both must agree.
  constexpr ForceMethod kForces[] = {ForceMethod::kAuto, ForceMethod::kScan};
  for (uint64_t qseed = 1; qseed <= 60; qseed++) {
    DiffCase c = GenCase(flags()->base_seed + 1000 + qseed, opts);
    for (ForceMethod force : kForces) {
      QueryOptions serial;
      serial.force = force;
      serial.want_values = true;
      serial.parallelism = 1;
      QueryOptions par = serial;
      par.parallelism = 8;
      auto rs = coll->Query(nullptr, c.query, serial);
      auto rp = coll->Query(nullptr, c.query, par);
      ASSERT_EQ(rs.ok(), rp.ok())
          << "query " << c.query << " serial=" << rs.status().ToString()
          << " parallel=" << rp.status().ToString();
      if (!rs.ok()) continue;
      const NodeSequence& a = rs.value().nodes;
      const NodeSequence& b = rp.value().nodes;
      ASSERT_EQ(a.size(), b.size()) << "query " << c.query;
      for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].doc_id, b[i].doc_id)
            << "query " << c.query << " position " << i;
        ASSERT_EQ(a[i].node_id, b[i].node_id)
            << "query " << c.query << " position " << i;
        ASSERT_EQ(a[i].string_value, b[i].string_value)
            << "query " << c.query << " position " << i;
      }
      EXPECT_EQ(rs.value().stats.docs_evaluated, rp.value().stats.docs_evaluated)
          << "query " << c.query;
    }
  }
}

// --- plan-cache transparency: cached plans must change nothing but time ---

// Two engines over identical documents, one with the compiled-plan cache
// disabled (capacity 0). Every generated query runs twice against both —
// the second run on the caching engine is served from the cache — and the
// (doc_id, node_id, string_value) sequences must stay byte-identical, with
// stats epochs moving underneath from interleaved inserts.
TEST(DifferentialTest, PlanCacheOnOffEnginesAgree) {
  EngineOptions cached_opts;
  cached_opts.in_memory = true;
  cached_opts.enable_wal = false;
  EngineOptions uncached_opts = cached_opts;
  uncached_opts.plan_cache_capacity = 0;
  auto cached_engine = Engine::Open(cached_opts).MoveValue();
  auto uncached_engine = Engine::Open(uncached_opts).MoveValue();
  Collection* cached = cached_engine->CreateCollection("diff").value();
  Collection* uncached = uncached_engine->CreateCollection("diff").value();

  DiffOptions opts;
  auto insert_both = [&](uint64_t seed) {
    DiffCase c = GenCase(flags()->base_seed + seed, opts);
    ASSERT_TRUE(cached->InsertDocument(nullptr, c.doc).ok()) << c.doc;
    ASSERT_TRUE(uncached->InsertDocument(nullptr, c.doc).ok()) << c.doc;
  };
  for (uint64_t seed = 1; seed <= 24; seed++) insert_both(seed);

  for (uint64_t qseed = 1; qseed <= 50; qseed++) {
    DiffCase c = GenCase(flags()->base_seed + 2000 + qseed, opts);
    // Perturb the stats mid-sweep so cached plans get invalidated by epoch
    // bumps, not only reused.
    if (qseed % 10 == 0) insert_both(100 + qseed);
    for (int pass = 0; pass < 2; pass++) {
      QueryOptions qo;
      qo.want_values = true;
      auto a = cached->Query(nullptr, c.query, qo);
      auto b = uncached->Query(nullptr, c.query, qo);
      ASSERT_EQ(a.ok(), b.ok())
          << "query " << c.query << " cached=" << a.status().ToString()
          << " uncached=" << b.status().ToString();
      if (!a.ok()) continue;
      const NodeSequence& an = a.value().nodes;
      const NodeSequence& bn = b.value().nodes;
      ASSERT_EQ(an.size(), bn.size()) << "query " << c.query;
      for (size_t i = 0; i < an.size(); i++) {
        ASSERT_EQ(an[i].doc_id, bn[i].doc_id) << c.query << " pos " << i;
        ASSERT_EQ(an[i].node_id, bn[i].node_id) << c.query << " pos " << i;
        ASSERT_EQ(an[i].string_value, bn[i].string_value)
            << c.query << " pos " << i;
      }
    }
  }
  // The caching engine must actually have cached something, and the
  // disabled engine must have cached nothing.
  EXPECT_GT(cached->plan_cache()->size(), 0u);
  EXPECT_EQ(uncached->plan_cache()->size(), 0u);
}

// --- primary/replica differential: replication must be invisible to reads ---

// A disk-backed primary ships a generated corpus to a replica through a
// transport with armed network faults (duplicate, reorder, drop, truncate).
// Once converged, every generated query must return byte-identical
// (doc_id, node_id, string_value) sequences on both sides — the replica is
// allowed to be stale or to refuse, never to answer differently.
TEST(DifferentialTest, PrimaryAndReplicaAgreeAfterFaultyShipping) {
  const std::string stem =
      (std::filesystem::temp_directory_path() /
       ("xdb_diff_repl_" + std::to_string(::getpid())))
          .string();
  const std::string pdir = stem + "_p", rdir = stem + "_r";
  for (const std::string& d : {pdir, rdir}) {
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
  }

  {
    EngineOptions popts;
    popts.dir = pdir;
    EngineOptions ropts;
    ropts.dir = rdir;
    ropts.replica = true;
    auto primary = Engine::Open(popts).MoveValue();
    auto replica = Engine::Open(ropts).MoveValue();
    repl::InProcessTransport transport;
    repl::ShipperOptions sopts;
    sopts.max_segment_bytes = 128;  // many deliveries → many fault chances
    repl::WalShipper shipper(primary.get(), &transport, sopts);
    auto applier =
        repl::ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
    Collection* pcoll = primary->CreateCollection("diff").value();

    ScopedFaultInjector fi;
    fi->Arm(FaultPoint::kShipTransport, 3, FaultKind::kNetworkError, 2);
    fi->Arm(FaultPoint::kShipTransport, 7, FaultKind::kNetworkError, 3);
    fi->Arm(FaultPoint::kShipTransport, 11, FaultKind::kNetworkError, 1);
    fi->Arm(FaultPoint::kShipTransport, 15, FaultKind::kNetworkError,
            4u + (40ull << 8));

    DiffOptions opts;
    constexpr uint64_t kDocs = 24;
    for (uint64_t seed = 1; seed <= kDocs; seed++) {
      DiffCase c = GenCase(flags()->base_seed + seed, opts);
      ASSERT_TRUE(pcoll->InsertDocument(nullptr, c.doc).ok()) << c.doc;
      // Interleave shipping with the insert stream so fault firings land on
      // mid-stream segments, not one final catch-up burst.
      if (seed % 4 == 0) {
        ASSERT_TRUE(shipper.ShipAll().ok());
        ASSERT_TRUE(applier->CatchUp().ok());
      }
    }
    for (int round = 0; round < 12; round++) {
      ASSERT_TRUE(shipper.ShipAll().ok());
      ASSERT_TRUE(applier->CatchUp().ok());
    }
    ASSERT_EQ(replica->applied_csn(), shipper.shipped_csn());

    Collection* rcoll = replica->GetCollection("diff").value();
    ASSERT_EQ(rcoll->DocCount().value(), kDocs);
    size_t nonempty = 0;
    for (uint64_t qseed = 1; qseed <= 40; qseed++) {
      DiffCase c = GenCase(flags()->base_seed + 3000 + qseed, opts);
      QueryOptions qo;
      qo.want_values = true;
      // A converged replica honors read-your-writes with no wait budget.
      QueryOptions rqo = qo;
      rqo.min_csn = shipper.shipped_csn();
      auto a = pcoll->Query(nullptr, c.query, qo);
      auto b = rcoll->Query(nullptr, c.query, rqo);
      ASSERT_EQ(a.ok(), b.ok())
          << "query " << c.query << " primary=" << a.status().ToString()
          << " replica=" << b.status().ToString();
      if (!a.ok()) continue;
      const NodeSequence& an = a.value().nodes;
      const NodeSequence& bn = b.value().nodes;
      ASSERT_EQ(an.size(), bn.size()) << "query " << c.query;
      nonempty += an.empty() ? 0 : 1;
      for (size_t i = 0; i < an.size(); i++) {
        ASSERT_EQ(an[i].doc_id, bn[i].doc_id) << c.query << " pos " << i;
        ASSERT_EQ(an[i].node_id, bn[i].node_id) << c.query << " pos " << i;
        ASSERT_EQ(an[i].string_value, bn[i].string_value)
            << c.query << " pos " << i;
      }
    }
    EXPECT_GT(nonempty, 0u) << "every generated query matched nothing; the "
                               "comparison proved nothing";
    // The fault sweep must have actually exercised a heal path.
    const auto snap = replica->MetricsSnapshot();
    EXPECT_GT(snap.Value("repl.apply.duplicates") +
                  snap.Value("repl.apply.gaps") +
                  snap.Value("repl.apply.corrupt_segments"),
              0u);
  }
  for (const std::string& d : {pdir, rdir}) std::filesystem::remove_all(d);
}

// --- minimizer machinery (driven by synthetic predicates) ---

bool ParsesAsXml(const std::string& xml) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  return parser.Parse(xml, &tokens).ok();
}

TEST(MinimizerTest, DocumentShrinksToRelevantCore) {
  std::string doc =
      "<a><b><c>1</c></b><d v=\"3\">xx</d><e><e><e>999</e></e></e></a>";
  auto still_fails = [](const std::string& d) {
    return ParsesAsXml(d) && d.find("<c>") != std::string::npos;
  };
  std::string min = MinimizeDocument(doc, still_fails);
  EXPECT_TRUE(still_fails(min));
  EXPECT_LT(min.size(), doc.size());
  EXPECT_EQ(min.find("<d"), std::string::npos);
  EXPECT_EQ(min.find("<e"), std::string::npos);
  EXPECT_EQ(min.find("999"), std::string::npos);
}

TEST(MinimizerTest, DocumentMinimizationKeepsFailurePredicateTrue) {
  // Predicate sensitive to an attribute: attribute spans must be removable
  // without breaking the enclosing tag.
  std::string doc = "<a v=\"1\" w=\"2\"><b w=\"9\">t</b></a>";
  auto still_fails = [](const std::string& d) {
    return ParsesAsXml(d) && d.find("w=\"9\"") != std::string::npos;
  };
  std::string min = MinimizeDocument(doc, still_fails);
  EXPECT_TRUE(still_fails(min));
  EXPECT_EQ(min.find("v=\"1\""), std::string::npos);
  EXPECT_EQ(min.find("w=\"2\""), std::string::npos);
}

TEST(MinimizerTest, QueryDropsPredicatesAndSteps) {
  std::string query = "/a/b[c and d]/e[@v = 3]";
  auto still_fails = [](const std::string& q) {
    auto p = xpath::ParsePath(q);
    return p.ok() && q.find('b') != std::string::npos;
  };
  std::string min = MinimizeQuery(query, still_fails);
  EXPECT_TRUE(still_fails(min));
  EXPECT_EQ(min.find('['), std::string::npos);  // predicates gone
  EXPECT_EQ(min.find('e'), std::string::npos);  // irrelevant steps gone
  EXPECT_EQ(min.find('a'), std::string::npos);
}

TEST(MinimizerTest, UnparseableQueryReturnedVerbatim) {
  std::string junk = "///[[";
  EXPECT_EQ(MinimizeQuery(junk, [](const std::string&) { return true; }),
            junk);
}

// A deliberately broken "engine" (string comparison against a doctored
// reference) exercises the full RunCase failure path: report + minimize.
TEST(MinimizerTest, EndToEndMinimizationViaCompareEngines) {
  // "//b[@v = 3]" over a doc where only one subtree matters.
  std::string doc = "<a><c>junk</c><b v=\"3\">hit</b><d><d/></d></a>";
  std::string query = "//b[@v = 3]";
  // Sanity: engines agree on this case (it is not a real divergence).
  EXPECT_EQ(CompareEngines(doc, query, true), "");
  // Minimize with "result is non-empty" as the synthetic failure predicate,
  // using the real evaluation pipeline underneath.
  auto still_fails = [&](const std::string& d) {
    if (!ParsesAsXml(d)) return false;
    return CompareEngines(d, query, false).empty() &&
           d.find("v=\"3\"") != std::string::npos;
  };
  std::string min = MinimizeDocument(doc, still_fails);
  EXPECT_EQ(min.find("junk"), std::string::npos);
  EXPECT_NE(min.find("v=\"3\""), std::string::npos);
}

}  // namespace
}  // namespace testing
}  // namespace xdb

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  auto* f = xdb::testing::flags();
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      f->replay_seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
      f->replay = true;
    } else if (arg.rfind("--iters=", 0) == 0) {
      f->iters = std::strtoull(arg.c_str() + 8, nullptr, 0);
    }
  }
  if (const char* e = std::getenv("XDB_DIFF_SEED")) {
    f->replay_seed = std::strtoull(e, nullptr, 0);
    f->replay = true;
  }
  if (const char* e = std::getenv("XDB_DIFF_ITERS")) {
    f->iters = std::strtoull(e, nullptr, 0);
  }
  if (const char* e = std::getenv("XDB_DIFF_BASE")) {
    f->base_seed = std::strtoull(e, nullptr, 0);
  }
  return RUN_ALL_TESTS();
}
