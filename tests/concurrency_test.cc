// Multithreaded stress harness for the concurrent core: engine-level
// insert/query/delete with a checkpointer, buffer-manager fetch/evict/
// writeback contention, lock-manager grant/release and deadlock storms,
// parallel WAL appends, concurrent name-dictionary interning, and
// fault-injector counter integrity. Runs under TSan in CI; thread and
// iteration counts are kept small enough for instrumented single-core runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cc/lock_manager.h"
#include "engine/engine.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "repl/replica_applier.h"
#include "repl/ship_transport.h"
#include "repl/wal_shipper.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"
#include "storage/wal_log.h"
#include "common/lock_order.h"
#include "testing/fault_injector.h"
#include "leak_check.h"
#include "xml/name_dictionary.h"

namespace xdb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("xdb_conc_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

/// Removes a file or directory tree on scope exit.
class PathGuard {
 public:
  explicit PathGuard(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
  }
  ~PathGuard() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A status a blocking/contended operation may legitimately return: success,
/// a lock timeout or deadlock victim, or racing with a concurrent delete.
bool AcceptableContention(const Status& st) {
  return st.ok() || st.IsDeadlock() || st.IsBusy() || st.IsNotFound();
}

// ---------------------------------------------------------------------------
// Engine: concurrent document insert / query / delete with a checkpointer.
// ---------------------------------------------------------------------------

TEST(EngineConcurrencyTest, InsertQueryDeleteWithCheckpointer) {
  PathGuard dir(TempPath("engine"));
  EngineOptions opts;
  opts.dir = dir.path();
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();

  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 20;
  constexpr int kDeletePairs = 10;

  std::vector<std::vector<uint64_t>> inserted(kWriters);
  std::atomic<bool> stop{false};
  std::atomic<int> query_failures{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kInsertsPerWriter; i++) {
        std::string xml = "<note><to>w" + std::to_string(w) + "-" +
                          std::to_string(i) + "</to></note>";
        auto res = coll->InsertDocument(nullptr, xml);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        inserted[w].push_back(res.value());
      }
    });
  }

  // Inserts documents and immediately deletes them again — by the end they
  // contribute nothing, but while running they contend with every reader.
  threads.emplace_back([&] {
    for (int i = 0; i < kDeletePairs; i++) {
      auto res = coll->InsertDocument(nullptr, "<note><to>gone</to></note>");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      Status st = coll->DeleteDocument(nullptr, res.value());
      ASSERT_TRUE(AcceptableContention(st)) << st.ToString();
    }
  });

  // Reader: full scans and point reads racing the writers.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto qres = coll->Query(nullptr, "/note/to");
      if (!qres.ok() && !AcceptableContention(qres.status()))
        query_failures.fetch_add(1);
      auto ids = coll->ListDocIds();
      if (ids.ok() && !ids.value().empty()) {
        auto text = coll->GetDocumentText(nullptr, ids.value().front());
        if (!text.ok() && !AcceptableContention(text.status()))
          query_failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  // Checkpointer: flushes pages + truncates the WAL while everyone works.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status st = engine->Checkpoint();
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (int w = 0; w < kWriters + 1; w++) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters + 1; t < threads.size(); t++) threads[t].join();

  EXPECT_EQ(query_failures.load(), 0);

  // Every writer-inserted document is present exactly once, ids distinct.
  std::set<uint64_t> all_ids;
  for (const auto& ids : inserted)
    for (uint64_t id : ids) EXPECT_TRUE(all_ids.insert(id).second);
  EXPECT_EQ(all_ids.size(), size_t{kWriters * kInsertsPerWriter});
  EXPECT_EQ(coll->DocCount().value(), all_ids.size());
  for (uint64_t id : all_ids)
    EXPECT_TRUE(coll->GetDocumentText(nullptr, id).ok());

  // Survives a clean shutdown + recovery.
  engine.reset();
  engine = Engine::Open(opts).MoveValue();
  coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->DocCount().value(), all_ids.size());
  for (uint64_t id : all_ids)
    EXPECT_TRUE(coll->GetDocumentText(nullptr, id).ok());
}

TEST(EngineConcurrencyTest, ConcurrentInsertsGetDistinctDocIds) {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 15;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        auto res = coll->InsertDocument(nullptr, "<d><v>x</v></d>");
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        ids[t].push_back(res.value());
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<uint64_t> distinct;
  for (const auto& v : ids)
    for (uint64_t id : v) EXPECT_TRUE(distinct.insert(id).second);
  EXPECT_EQ(distinct.size(), size_t{kThreads * kPerThread});
  EXPECT_EQ(coll->DocCount().value(), distinct.size());
}

// ---------------------------------------------------------------------------
// BufferManager: fetch / evict / writeback contention on a tiny pool.
// ---------------------------------------------------------------------------

TEST(BufferManagerConcurrencyTest, FetchEvictWritebackContention) {
  PathGuard file(TempPath("bm"));
  auto space = TableSpace::Create(file.path()).MoveValue();
  // Pool far smaller than the working set: every thread's loop evicts the
  // others' pages constantly, hammering the LRU/writeback path.
  BufferManager bm(space.get(), /*capacity=*/8);

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 12;
  constexpr int kRounds = 40;

  // Each thread owns a disjoint set of pages (pins don't exclude other
  // pinners — payload exclusivity is the caller's job, as in the engine
  // where the collection latch serializes writers).
  std::vector<std::vector<PageId>> pages(kThreads);
  for (int t = 0; t < kThreads; t++) {
    for (int p = 0; p < kPagesPerThread; p++) {
      auto h = bm.NewPage();
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      pages[t].push_back(h.value().page_id());
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; round++) {
        for (int p = 0; p < kPagesPerThread; p++) {
          auto h = bm.FixPage(pages[t][p]);
          ASSERT_TRUE(h.ok()) << h.status().ToString();
          char* data = h.value().MutableData();
          // Thread-and-page tag, rewritten every round.
          data[0] = static_cast<char>('A' + t);
          data[1] = static_cast<char>(p);
          data[2] = static_cast<char>(round & 0x7F);
        }
      }
    });
  }
  // Stats reader races the workers (stats() copies under the lock).
  std::atomic<bool> stop{false};
  std::thread stats_reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      BufferManagerStats s = bm.stats();
      // Every eviction is driven by a fetch (hit/miss) or by one of the
      // kThreads * kPagesPerThread NewPage allocations, which claim a frame
      // without counting as a fetch.
      EXPECT_GE(s.hits + s.misses + kThreads * kPagesPerThread, s.evictions);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  stats_reader.join();

  ASSERT_TRUE(bm.FlushAll().ok());
  // Every page holds its owner's final tag.
  for (int t = 0; t < kThreads; t++) {
    for (int p = 0; p < kPagesPerThread; p++) {
      auto h = bm.FixPage(pages[t][p]);
      ASSERT_TRUE(h.ok());
      EXPECT_EQ(h.value().data()[0], static_cast<char>('A' + t));
      EXPECT_EQ(h.value().data()[1], static_cast<char>(p));
      EXPECT_EQ(h.value().data()[2], static_cast<char>((kRounds - 1) & 0x7F));
    }
  }
  BufferManagerStats s = bm.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.writebacks, 0u);
}

// ---------------------------------------------------------------------------
// LockManager: grant/release and deadlock storms.
// ---------------------------------------------------------------------------

TEST(LockManagerConcurrencyTest, GrantReleaseStorm) {
  LockManager lm(std::chrono::milliseconds(100));
  constexpr int kThreads = 6;
  constexpr int kIters = 120;
  constexpr int kDocs = 4;
  std::atomic<uint64_t> granted{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // xorshift, seeded per thread: no shared RNG state.
      uint64_t rng = 0x9E3779B97F4A7C15ull * (t + 1);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      const LockMode modes[] = {LockMode::kIS, LockMode::kIX, LockMode::kS,
                                LockMode::kX};
      for (int i = 0; i < kIters; i++) {
        TxnId txn = static_cast<TxnId>(t) * kIters + i + 1;
        uint64_t doc = next() % kDocs;
        LockMode mode = modes[next() % 4];
        Status st = lm.LockDocument(txn, doc, mode);
        if (st.ok()) {
          granted.fetch_add(1);
          if ((mode == LockMode::kIX || mode == LockMode::kIS) &&
              next() % 2 == 0) {
            // Subdocument lock under the intention lock.
            Status ns = lm.LockNode(txn, doc, Slice("\x01\x02"),
                                    mode == LockMode::kIX ? LockMode::kX
                                                          : LockMode::kS);
            EXPECT_TRUE(AcceptableContention(ns)) << ns.ToString();
          }
        } else {
          EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(granted.load(), 0u);
  // Everything was released: an X lock on every doc must grant instantly.
  for (uint64_t doc = 0; doc < kDocs; doc++)
    EXPECT_TRUE(lm.LockDocument(999999, doc, LockMode::kX).ok());
  lm.ReleaseAll(999999);
  EXPECT_GE(lm.stats().acquisitions, granted.load());
}

TEST(LockManagerConcurrencyTest, DeadlockStormResolvesWithoutHanging) {
  LockManager lm(std::chrono::milliseconds(200));
  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  std::atomic<uint64_t> deadlocks{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Opposite acquisition orders on two docs: classic deadlock recipe.
      uint64_t first = (t % 2 == 0) ? 1 : 2;
      uint64_t second = (t % 2 == 0) ? 2 : 1;
      for (int i = 0; i < kIters; i++) {
        TxnId txn = static_cast<TxnId>(t) * kIters + i + 1;
        Status st = lm.LockDocument(txn, first, LockMode::kX);
        if (st.ok()) {
          st = lm.LockDocument(txn, second, LockMode::kX);
          if (st.IsDeadlock()) deadlocks.fetch_add(1);
          else EXPECT_TRUE(st.ok()) << st.ToString();
        } else {
          EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  // The storm must finish (no hang) and leave the table clean.
  EXPECT_TRUE(lm.LockDocument(777777, 1, LockMode::kX).ok());
  EXPECT_TRUE(lm.LockDocument(777777, 2, LockMode::kX).ok());
  lm.ReleaseAll(777777);
  // The waits-for graph catches cycles eagerly; timeouts remain a backstop.
  LockManagerStats s = lm.stats();
  EXPECT_EQ(s.deadlocks + s.timeouts >= deadlocks.load(), true);
}

// ---------------------------------------------------------------------------
// WAL: parallel appends with a concurrent syncer, then ordered replay.
// ---------------------------------------------------------------------------

TEST(WalConcurrencyTest, ParallelAppendsReplayIntact) {
  PathGuard file(TempPath("wal"));
  auto wal = WalLog::Open(file.path()).MoveValue();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 80;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        // Payload encodes (thread, seq) so replay can check per-thread order.
        std::string payload = std::to_string(t) + ":" + std::to_string(i);
        auto lsn = wal->Append(WalRecordType::kInsertDocument, payload);
        ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      }
    });
  }
  std::thread syncer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(wal->Sync().ok());
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  syncer.join();

  // Replay sees every record exactly once, LSNs strictly increasing, and
  // each thread's records in its append order.
  std::vector<int> next_seq(kThreads, 0);
  uint64_t last_lsn = 0;
  uint64_t count = 0;
  bool first = true;
  Status st = wal->Replay([&](uint64_t lsn, WalRecordType type,
                              Slice payload) -> Status {
    EXPECT_EQ(type, WalRecordType::kInsertDocument);
    EXPECT_TRUE(first || lsn > last_lsn);
    first = false;
    last_lsn = lsn;
    std::string s = payload.ToString();
    size_t colon = s.find(':');
    EXPECT_NE(colon, std::string::npos);
    int t = std::stoi(s.substr(0, colon));
    int seq = std::stoi(s.substr(colon + 1));
    EXPECT_EQ(seq, next_seq[t]);
    next_seq[t] = seq + 1;
    count++;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(count, uint64_t{kThreads * kPerThread});
  for (int t = 0; t < kThreads; t++) EXPECT_EQ(next_seq[t], kPerThread);
}

// ---------------------------------------------------------------------------
// WAL group commit: concurrent committers coalesce onto shared fsyncs.
// ---------------------------------------------------------------------------

TEST(WalConcurrencyTest, GroupCommitCoalescesFsyncs) {
  PathGuard file(TempPath("wal_gc"));
  auto wal = WalLog::Open(file.path()).MoveValue();

  // Phased rounds make the coalescing deterministic: all of a round's
  // records are appended before its committers start, so every committer of
  // the round shares one leader's fsync (one sync per round, kThreads
  // commits). Interleaved commit loads coalesce opportunistically; this
  // shape pins down the lower bound.
  constexpr int kRounds = 25;
  constexpr int kThreads = 8;
  for (int round = 0; round < kRounds; round++) {
    for (int i = 0; i < kThreads; i++) {
      std::string payload =
          std::to_string(round) + ":" + std::to_string(i);
      ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, payload).ok());
    }
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; t++) {
      committers.emplace_back([&] {
        Status st = wal->Commit();
        ASSERT_TRUE(st.ok()) << st.ToString();
      });
    }
    for (auto& th : committers) th.join();
  }

  WalCommitStats stats = wal->commit_stats();
  EXPECT_EQ(stats.commits, uint64_t{kRounds * kThreads});
  EXPECT_GT(stats.syncs, 0u);
  // Every round coalesces its kThreads committers onto (at least) one shared
  // fsync; a few extra retry rounds are tolerated, full serialization isn't.
  EXPECT_LE(stats.syncs, uint64_t{2 * kRounds});
  EXPECT_LT(stats.syncs, stats.commits);

  // Everything committed is replayable, in order.
  uint64_t count = 0;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice) -> Status {
                    count++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, uint64_t{kRounds * kThreads});
}

TEST(WalConcurrencyTest, InterleavedAppendCommitStressReplaysIntact) {
  PathGuard file(TempPath("wal_gc2"));
  auto wal = WalLog::Open(file.path()).MoveValue();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string payload = std::to_string(t) + ":" + std::to_string(i);
        ASSERT_TRUE(
            wal->Append(WalRecordType::kInsertDocument, payload).ok());
        Status st = wal->Commit();
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& th : threads) th.join();

  WalCommitStats stats = wal->commit_stats();
  EXPECT_EQ(stats.commits, uint64_t{kThreads * kPerThread});
  EXPECT_GT(stats.syncs, 0u);
  EXPECT_LE(stats.syncs, stats.commits);

  // Per-thread append order survives, every record exactly once.
  std::vector<int> next_seq(kThreads, 0);
  uint64_t count = 0;
  Status st = wal->Replay(
      [&](uint64_t, WalRecordType, Slice payload) -> Status {
        std::string s = payload.ToString();
        size_t colon = s.find(':');
        EXPECT_NE(colon, std::string::npos);
        int t = std::stoi(s.substr(0, colon));
        int seq = std::stoi(s.substr(colon + 1));
        EXPECT_EQ(seq, next_seq[t]);
        next_seq[t] = seq + 1;
        count++;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(count, uint64_t{kThreads * kPerThread});
}

TEST(WalConcurrencyTest, CommitRacingResetDoesNotLivelock) {
  PathGuard file(TempPath("wal_gc_reset"));
  auto wal = WalLog::Open(file.path()).MoveValue();

  // A checkpoint's Reset() truncates the log while committers hold CSNs
  // snapshotted against the pre-truncation size. Regression test for a
  // livelock: such a commit must return (the checkpoint superseded its
  // record), not fsync forever chasing a target the shrunken log can never
  // reach. The assertion is termination itself.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<bool> stop{false};
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; t++) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string payload = std::to_string(t) + ":" + std::to_string(i);
        ASSERT_TRUE(
            wal->Append(WalRecordType::kInsertDocument, payload).ok());
        Status st = wal->Commit();
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(wal->Reset().ok());
      std::this_thread::yield();
    }
  });
  for (auto& th : committers) th.join();
  stop.store(true, std::memory_order_release);
  resetter.join();

  // The log still works after the storm: a fresh append group-commits and
  // replays.
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "tail").ok());
  ASSERT_TRUE(wal->Commit().ok());
  uint64_t count = 0;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice) -> Status {
                    count++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_GE(count, 1u);
}

TEST(EngineConcurrencyTest, SyncCommitsWithConcurrentCheckpointer) {
  PathGuard dir(TempPath("engine_gc_ckpt"));
  EngineOptions opts;
  opts.dir = dir.path();
  opts.sync_commits = true;
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();

  // Writers group-commit every insert while a checkpointer repeatedly
  // flushes and truncates the WAL — the engine-level shape of the
  // commit-vs-reset race above (writers commit outside the collection
  // latch, Checkpoint resets the log concurrently).
  constexpr int kThreads = 3;
  constexpr int kPerThread = 15;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        auto res = coll->InsertDocument(
            nullptr, "<d><v>t" + std::to_string(t) + "-" +
                         std::to_string(i) + "</v></d>");
        ASSERT_TRUE(res.ok()) << res.status().ToString();
      }
    });
  }
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status st = engine->Checkpoint();
      ASSERT_TRUE(AcceptableContention(st)) << st.ToString();
      std::this_thread::yield();
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  checkpointer.join();

  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(coll->DocCount().value(), uint64_t{kThreads * kPerThread});
}

TEST(EngineConcurrencyTest, SyncCommitsDurableAcrossReopenWithFewerSyncs) {
  PathGuard dir(TempPath("engine_gc"));
  EngineOptions opts;
  opts.dir = dir.path();
  opts.sync_commits = true;
  std::set<uint64_t> inserted;
  {
    auto engine = Engine::Open(opts).MoveValue();
    Collection* coll = engine->CreateCollection("docs").value();
    // DDL durability is checkpoint-based (CreateCollection is not WAL-logged);
    // checkpoint now so the crash below only loses what group commit protects.
    ASSERT_TRUE(engine->Checkpoint().ok());
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10;
    std::vector<std::vector<uint64_t>> ids(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; i++) {
          auto res = coll->InsertDocument(
              nullptr, "<d><v>t" + std::to_string(t) + "-" +
                           std::to_string(i) + "</v></d>");
          ASSERT_TRUE(res.ok()) << res.status().ToString();
          ids[t].push_back(res.value());
        }
      });
    }
    for (auto& th : threads) th.join();
    for (const auto& v : ids) inserted.insert(v.begin(), v.end());
    ASSERT_EQ(inserted.size(), size_t{kThreads * kPerThread});

    WalCommitStats stats = engine->wal()->commit_stats();
    // One commit per logged operation (insert + any name-definition riders
    // commit once), never more syncs than commits.
    EXPECT_GE(stats.commits, uint64_t{kThreads * kPerThread});
    EXPECT_GT(stats.syncs, 0u);
    EXPECT_LE(stats.syncs, stats.commits);
    // Abandon the engine without a clean shutdown: every insert already
    // group-committed, so recovery must find all of them in the WAL.
    IntentionallyLeaked(engine.release());
  }
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->DocCount().value(), inserted.size());
  for (uint64_t id : inserted)
    EXPECT_TRUE(coll->GetDocumentText(nullptr, id).ok());
}

// ---------------------------------------------------------------------------
// Sharded buffer pool: cross-shard contention, eviction correctness, stats.
// ---------------------------------------------------------------------------

TEST(BufferManagerConcurrencyTest, ShardedPoolContentionAndStatsAggregate) {
  PathGuard file(TempPath("bm_shard"));
  auto space = TableSpace::Create(file.path()).MoveValue();
  // Explicitly sharded and still starved: 4 shards of 4 frames each, with a
  // working set several times the capacity, so every shard runs its own
  // eviction loop concurrently.
  BufferManager bm(space.get(), /*capacity=*/16, /*shards=*/4);
  ASSERT_EQ(bm.shard_count(), 4u);

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 16;
  constexpr int kRounds = 30;

  std::vector<std::vector<PageId>> pages(kThreads);
  for (int t = 0; t < kThreads; t++) {
    for (int p = 0; p < kPagesPerThread; p++) {
      auto h = bm.NewPage();
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      pages[t].push_back(h.value().page_id());
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; round++) {
        for (int p = 0; p < kPagesPerThread; p++) {
          auto h = bm.FixPage(pages[t][p]);
          ASSERT_TRUE(h.ok()) << h.status().ToString();
          char* data = h.value().MutableData();
          data[0] = static_cast<char>('A' + t);
          data[1] = static_cast<char>(p);
          data[2] = static_cast<char>(round & 0x7F);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_TRUE(bm.FlushAll().ok());
  // Eviction/writeback never crossed wires: every page reads back its
  // owner's final tag.
  for (int t = 0; t < kThreads; t++) {
    for (int p = 0; p < kPagesPerThread; p++) {
      auto h = bm.FixPage(pages[t][p]);
      ASSERT_TRUE(h.ok());
      EXPECT_EQ(h.value().data()[0], static_cast<char>('A' + t));
      EXPECT_EQ(h.value().data()[1], static_cast<char>(p));
      EXPECT_EQ(h.value().data()[2], static_cast<char>((kRounds - 1) & 0x7F));
    }
  }

  // The aggregate equals the per-shard sum, and the starved pool evicted.
  BufferManagerStats total = bm.stats();
  BufferManagerStats summed;
  for (size_t s = 0; s < bm.shard_count(); s++) {
    BufferManagerStats ss = bm.shard_stats(s);
    summed.hits += ss.hits;
    summed.misses += ss.misses;
    summed.evictions += ss.evictions;
    summed.writebacks += ss.writebacks;
    summed.checksum_failures += ss.checksum_failures;
  }
  EXPECT_EQ(total.hits, summed.hits);
  EXPECT_EQ(total.misses, summed.misses);
  EXPECT_EQ(total.evictions, summed.evictions);
  EXPECT_EQ(total.writebacks, summed.writebacks);
  EXPECT_EQ(total.checksum_failures, summed.checksum_failures);
  EXPECT_GT(total.evictions, 0u);
  EXPECT_GT(total.writebacks, 0u);
}

// ---------------------------------------------------------------------------
// Parallel query execution racing writers and a checkpointer.
// ---------------------------------------------------------------------------

TEST(ParallelQueryConcurrencyTest, ParallelQueriesWithWritersAndCheckpointer) {
  PathGuard dir(TempPath("parq"));
  EngineOptions opts;
  opts.dir = dir.path();
  opts.num_query_threads = 4;
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();

  // Enough documents that PartitionForParallelism actually fans out.
  constexpr int kSeedDocs = 24;
  for (int i = 0; i < kSeedDocs; i++) {
    auto res = coll->InsertDocument(
        nullptr,
        "<doc><k>" + std::to_string(i) + "</k><v>seed</v></doc>");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }

  std::atomic<bool> stop{false};
  std::atomic<int> query_failures{0};
  std::atomic<uint64_t> queries_run{0};
  std::vector<std::thread> threads;

  // Parallel queriers: every query fans its candidate docs over the pool.
  for (int q = 0; q < 2; q++) {
    threads.emplace_back([&] {
      QueryOptions qopts;
      qopts.parallelism = 4;
      while (!stop.load(std::memory_order_acquire)) {
        auto res = coll->Query(nullptr, "/doc/k", qopts);
        if (res.ok()) {
          EXPECT_GE(res.value().nodes.size(), size_t{kSeedDocs});
          queries_run.fetch_add(1);
        } else if (!AcceptableContention(res.status())) {
          query_failures.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
  }
  // Writer: inserts race the parallel readers.
  threads.emplace_back([&] {
    for (int i = 0; i < 20; i++) {
      auto res = coll->InsertDocument(
          nullptr, "<doc><k>w" + std::to_string(i) + "</k></doc>");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
    }
  });
  // Checkpointer: flushes the (sharded) pool under the shared latch.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status st = engine->Checkpoint();
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  threads[2].join();  // writer finishes its fixed batch
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  threads[0].join();
  threads[1].join();
  threads[3].join();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_GT(queries_run.load(), 0u);
  // Final parallel count agrees with the serial one.
  QueryOptions serial;
  serial.parallelism = 1;
  QueryOptions parallel;
  parallel.parallelism = 4;
  auto s = coll->Query(nullptr, "/doc/k", serial);
  auto p = coll->Query(nullptr, "/doc/k", parallel);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s.value().nodes.size(), size_t{kSeedDocs + 20});
  EXPECT_EQ(p.value().nodes.size(), s.value().nodes.size());

  // The stress ran entirely deadlock-free, and the always-on query metrics
  // saw the whole run — including the fan-out of the parallel queries.
  obs::MetricsSnapshot snap = engine->MetricsSnapshot();
  EXPECT_EQ(snap.Value("lock.deadlocks"), 0u);
  EXPECT_EQ(snap.Value("lock.timeouts"), 0u);
  EXPECT_GE(snap.Value("query.executions"), queries_run.load());
  EXPECT_GT(snap.Value("query.parallel_executions"), 0u);
  const obs::Metric* lat = snap.Find("query.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->hist.count, queries_run.load());
}

// ---------------------------------------------------------------------------
// Plan cache vs index DDL: cached plans hold ValueIndex pointers, so a
// query must never execute a plan compiled against an index set that a
// concurrent create/drop has since changed. The executor re-validates the
// collection's index-structure version under the probe latch and replans;
// this storm tries to catch a stale plan slipping through (a dangling
// probe would crash or return wrong counts).
// ---------------------------------------------------------------------------

TEST(PlanCacheConcurrencyTest, QueriesRaceIndexCreateAndDrop) {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  opts.plan_cache_capacity = 32;
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();

  constexpr int kDocs = 30;
  for (int i = 0; i < kDocs; i++) {
    auto res = coll->InsertDocument(
        nullptr,
        "<doc><k>k" + std::to_string(i) + "</k><v>x</v></doc>");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }

  std::atomic<bool> stop{false};
  std::atomic<int> query_failures{0};
  std::atomic<uint64_t> queries_run{0};
  std::vector<std::thread> threads;

  // Queriers: the same indexable query over and over, so cached plans keep
  // getting compiled against whatever index set currently exists. Results
  // must stay exact no matter which plan (or replan) served them.
  for (int q = 0; q < 3; q++) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto res = coll->Query(nullptr, "/doc[k = \"k7\"]/v");
        if (res.ok()) {
          if (res.value().nodes.size() != 1u) query_failures.fetch_add(1);
          queries_run.fetch_add(1);
        } else if (!AcceptableContention(res.status())) {
          query_failures.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
  }

  // DDL churn: create and drop the index the query wants to probe.
  threads.emplace_back([&] {
    for (int round = 0; round < 60; round++) {
      ValueIndexDef def{"k", "/doc/k", ValueType::kString, 64};
      Status cs = coll->CreateValueIndex(def);
      ASSERT_TRUE(cs.ok()) << cs.ToString();
      std::this_thread::yield();
      Status ds = coll->DropValueIndex("k");
      ASSERT_TRUE(ds.ok()) << ds.ToString();
    }
  });

  threads.back().join();
  stop.store(true, std::memory_order_release);
  for (int q = 0; q < 3; q++) threads[q].join();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_GT(queries_run.load(), 0u);
  // The index churn invalidated the cache every round (2 per round), and
  // no cached plan ever probed a dropped index (no crash, exact answers).
  obs::MetricsSnapshot snap = engine->MetricsSnapshot();
  EXPECT_GE(snap.Value("query.plan_cache.invalidations"), 120u);
  EXPECT_GE(snap.Value("query.executions"), queries_run.load());
}

// ---------------------------------------------------------------------------
// Observability: metrics snapshots and event-log reads racing the engine's
// own emitters (exercised under TSan in CI).
// ---------------------------------------------------------------------------

TEST(ObservabilityConcurrencyTest, SnapshotsRaceQueriesAndCheckpoints) {
  PathGuard dir(TempPath("obs"));
  EngineOptions opts;
  opts.dir = dir.path();
  opts.sync_commits = true;  // group commit emits events + batch histogram
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(coll->InsertDocument(
                        nullptr,
                        "<doc><k>" + std::to_string(i) + "</k></doc>")
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Writers drive WAL commits, buffer traffic, and lock activity.
  for (int w = 0; w < 2; w++) {
    threads.emplace_back([&, w] {
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto res = coll->InsertDocument(
            nullptr, "<doc><k>w" + std::to_string(w) + "_" +
                         std::to_string(i++) + "</k></doc>");
        ASSERT_TRUE(res.ok()) << res.status().ToString();
      }
    });
  }
  // Queriers tick the always-on counters and the latency histogram.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto res = coll->Query(nullptr, "/doc/k");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
    }
  });
  // Checkpointer emits checkpoint events while snapshots are being taken.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(engine->Checkpoint().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Snapshotters and event readers race everything above.
  std::atomic<uint64_t> snapshots_taken{0};
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&] {
      uint64_t last_emitted = 0;
      while (!stop.load(std::memory_order_acquire)) {
        obs::MetricsSnapshot snap = engine->MetricsSnapshot();
        // Monotonic counters never go backwards between snapshots.
        uint64_t emitted = snap.Value("events.emitted");
        ASSERT_GE(emitted, last_emitted);
        last_emitted = emitted;
        ASSERT_FALSE(snap.ToJson().empty());
        std::vector<obs::Event> events = engine->RecentEvents(64);
        for (size_t i = 1; i < events.size(); i++)
          ASSERT_LT(events[i - 1].seq, events[i].seq);
        snapshots_taken.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_GT(snapshots_taken.load(), 0u);
  obs::MetricsSnapshot final_snap = engine->MetricsSnapshot();
  EXPECT_GT(final_snap.Value("wal.commits"), 0u);
  EXPECT_GT(final_snap.Value("query.executions"), 0u);
  EXPECT_GT(final_snap.Value("events.emitted"), 0u);
  EXPECT_EQ(final_snap.Value("lock.deadlocks"), 0u);
}

// ---------------------------------------------------------------------------
// NameDictionary: concurrent interning of overlapping name sets.
// ---------------------------------------------------------------------------

TEST(NameDictionaryConcurrencyTest, ConcurrentInterningIsConsistent) {
  NameDictionary dict;
  constexpr int kThreads = 6;
  constexpr int kShared = 40;
  constexpr int kPrivate = 20;

  std::vector<std::vector<std::pair<std::string, NameId>>> observed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Everyone interns the shared names (racing to create them) plus a
      // private tail nobody else touches.
      for (int i = 0; i < kShared; i++) {
        std::string name = "shared-" + std::to_string(i);
        observed[t].emplace_back(name, dict.Intern(name));
      }
      for (int i = 0; i < kPrivate; i++) {
        std::string name = "t" + std::to_string(t) + "-" + std::to_string(i);
        observed[t].emplace_back(name, dict.Intern(name));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Same name always produced the same id, and every id round-trips.
  std::map<std::string, NameId> canonical;
  for (const auto& per_thread : observed) {
    for (const auto& [name, id] : per_thread) {
      auto [it, fresh] = canonical.emplace(name, id);
      if (!fresh) {
        EXPECT_EQ(it->second, id) << name;
      }
      EXPECT_EQ(dict.Lookup(name), id);
      auto round = dict.Name(id);
      ASSERT_TRUE(round.ok());
      EXPECT_EQ(round.value(), name);
    }
  }
  // Empty name (id 0) + shared + per-thread privates.
  EXPECT_EQ(dict.size(), size_t{1 + kShared + kThreads * kPrivate});
}

// ---------------------------------------------------------------------------
// FaultInjector: counters and crash mode under concurrent hammering.
// ---------------------------------------------------------------------------

TEST(FaultInjectorConcurrencyTest, CountersExactUnderConcurrentOps) {
  testing::FaultInjector fi;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; i++) {
        Status st = fi.OnOp(testing::FaultPoint::kWalSync);
        EXPECT_TRUE(st.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fi.op_count(testing::FaultPoint::kWalSync),
            uint64_t{kThreads * kPerThread});
  EXPECT_FALSE(fi.fired());
}

TEST(FaultInjectorConcurrencyTest, ArmedFaultFiresExactlyOnceAndCrashes) {
  testing::FaultInjector fi;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  // Fire on an operation some thread will reach mid-storm, then enter crash
  // mode: the firing op and every write-side op after it fail.
  fi.Arm(testing::FaultPoint::kWalSync, /*nth=*/kThreads * kPerThread / 2,
         testing::FaultKind::kError);
  fi.set_crash_after_fire(true);

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; i++) {
        if (!fi.OnOp(testing::FaultPoint::kWalSync).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_TRUE(fi.fired());
  // Counting stops at the crash (post-crash ops fail without being
  // counted), so the counter lands exactly on the armed op despite four
  // threads racing through it.
  EXPECT_EQ(fi.op_count(testing::FaultPoint::kWalSync),
            uint64_t{kThreads * kPerThread / 2});
  // The armed op and everything after it failed: exactly half the storm.
  EXPECT_EQ(failures.load(), uint64_t{kThreads * kPerThread / 2 + 1});
}

// ---------------------------------------------------------------------------
// Replication: a shipping/applying pipeline racing replica readers.
// ---------------------------------------------------------------------------

// One thread writes on the primary, one pumps the shipper, one pumps the
// applier, and several readers query the replica throughout — some with a
// freshness bound, some without. Every read must be OK-and-consistent or an
// explicit kStale; the monotone watermark means a reader's observed document
// count never goes backwards. Runs under TSan, so the shipper's retention
// hook, the applier's checkpointing, and the freshness wait all get raced
// for real.
TEST(ReplicationConcurrencyTest, ApplyVsReadStorm) {
  PathGuard pdir(TempPath("repl_p"));
  PathGuard rdir(TempPath("repl_r"));
  std::filesystem::create_directories(pdir.path());
  std::filesystem::create_directories(rdir.path());
  EngineOptions popts;
  popts.dir = pdir.path();
  EngineOptions ropts;
  ropts.dir = rdir.path();
  ropts.replica = true;
  auto primary = Engine::Open(popts).MoveValue();
  auto replica = Engine::Open(ropts).MoveValue();

  repl::InProcessTransport transport;
  repl::ShipperOptions sopts;
  sopts.max_segment_bytes = 256;  // small segments → frequent watermark moves
  repl::WalShipper shipper(primary.get(), &transport, sopts);
  repl::ApplierOptions aopts;
  aopts.checkpoint_every_bytes = 4096;  // replica checkpoints mid-storm
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), &transport, aopts)
          .MoveValue();

  Collection* pcoll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(pcoll->InsertDocument(nullptr, "<d><n>seed</n></d>").ok());
  // Replicate the DDL before readers start so GetCollection always succeeds.
  ASSERT_TRUE(shipper.ShipAll().ok());
  ASSERT_TRUE(applier->CatchUp().ok());
  Collection* rcoll = replica->GetCollection("docs").value();

  constexpr int kDocs = 60;  // small: TSan runs this on one core
  constexpr int kReaders = 3;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_csn{0};

  std::thread writer([&] {
    for (int i = 0; i < kDocs; i++) {
      auto res = pcoll->InsertDocument(
          nullptr, "<d><n>" + std::to_string(i) + "</n></d>");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      if (i % 16 == 0) {
        ASSERT_TRUE(primary->Checkpoint().ok());
      }
    }
  });
  std::thread ship([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status s = shipper.ShipAll();
      ASSERT_TRUE(s.ok()) << s.ToString();
      write_csn.store(shipper.shipped_csn(), std::memory_order_release);
      std::this_thread::yield();
    }
  });
  std::thread apply([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status s = applier->CatchUp();
      ASSERT_TRUE(s.ok()) << s.ToString();
      std::this_thread::yield();
    }
  });

  std::atomic<int> stale_reads{0}, fresh_reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      uint64_t last_count = 0;
      int iter = 0;
      while (!stop.load(std::memory_order_acquire)) {
        QueryOptions qo;
        if (r == 0 && ++iter % 3 == 0) {
          // Chase the shipped watermark with a small wait budget: either
          // the applier gets there in time (OK) or we get an explicit
          // kStale — never a silently short answer.
          qo.min_csn = write_csn.load(std::memory_order_acquire);
          qo.freshness_timeout_us = 500;
        }
        auto res = rcoll->Query(nullptr, "/d/n", qo);
        if (res.status().IsStale()) {
          stale_reads.fetch_add(1);
          continue;
        }
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        fresh_reads.fetch_add(1);
        const uint64_t count = res.value().nodes.size();
        // Inserts only: the applied prefix, hence the count, is monotone.
        ASSERT_GE(count, last_count) << "replica read went backwards";
        last_count = count;
      }
    });
  }

  writer.join();
  stop.store(true, std::memory_order_release);
  ship.join();
  apply.join();
  for (auto& th : readers) th.join();
  // Drain with the pumps stopped (the shipper and applier are
  // single-caller objects): a few rounds converge any trailing resync.
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(shipper.ShipAll().ok());
    ASSERT_TRUE(applier->CatchUp().ok());
  }

  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  EXPECT_EQ(rcoll->DocCount().value(), uint64_t{kDocs} + 1);
  QueryOptions fresh;
  fresh.min_csn = shipper.shipped_csn();
  EXPECT_EQ(rcoll->Query(nullptr, "/d/n", fresh).value().nodes.size(),
            uint64_t{kDocs} + 1);
  EXPECT_GT(fresh_reads.load(), 0);
}

// ---------------------------------------------------------------------------
// Lock-order enforcer: the engine's real lock DAG under a mixed workload.
// ---------------------------------------------------------------------------

// Regression for the xdb-check rank assignment: drives every heavy lock
// chain at once — document writes (LockManager → WAL → latch → storage),
// queries (latch → buffer), index DDL (ddl_mu_ → latch → WAL), checkpoints
// (catalog → latch → WAL reset → commit), and metrics snapshots (registry →
// every component lock) — in one process. Built with XDB_LOCK_ORDER_CHECK=ON
// (the asan-ubsan and tsan CI lanes) any rank inversion introduced into
// these paths aborts the test; the end-of-test assertions additionally pin
// that no code path leaks a held-stack entry.
TEST(LockOrderEnforcerTest, MixedWorkloadRespectsRankDag) {
  PathGuard dir(TempPath("lockorder"));
  EngineOptions opts;
  opts.dir = dir.path();
  auto engine = Engine::Open(opts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();

  constexpr int kDocs = 24;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < kDocs; i++) {
      std::string doc =
          "<d><n v='" + std::to_string(i) + "'>x</n></d>";
      ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
    }
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto res = coll->Query(nullptr, "/d/n", {});
      ASSERT_TRUE(AcceptableContention(res.status()))
          << res.status().ToString();
    }
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
  });
  std::thread ddl([&] {
    for (int i = 0; i < 4 && !stop.load(std::memory_order_acquire); i++) {
      ValueIndexDef def{"vidx", "/d/n", ValueType::kString, 64};
      ASSERT_TRUE(AcceptableContention(coll->CreateValueIndex(def)));
      ASSERT_TRUE(AcceptableContention(coll->DropValueIndex("vidx")));
    }
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
  });
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(engine->Checkpoint().ok());
      std::this_thread::yield();
    }
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
  });
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)engine->metrics()->Snapshot();
      std::this_thread::yield();
    }
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
  });

  writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  ddl.join();
  checkpointer.join();
  snapshotter.join();

  EXPECT_EQ(coll->DocCount().value(), uint64_t{kDocs});
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0);
}

}  // namespace
}  // namespace xdb
