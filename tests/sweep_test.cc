// Parameterized property sweeps across the engine's tuning axes: page
// sizes, packing budgets, buffer capacities, and query shapes. Each TEST_P
// asserts an invariant that must hold at every point of the sweep.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "btree/btree.h"
#include "common/random.h"
#include "engine/engine.h"
#include "index/nodeid_index.h"
#include "pack/record_builder.h"
#include "pack/tree_cursor.h"
#include "runtime/iterators.h"
#include "storage/buffer_manager.h"
#include "storage/record_manager.h"
#include "storage/tablespace.h"
#include "util/workload.h"
#include "xml/node_id.h"
#include "xml/parser.h"
#include "xpath/dom_evaluator.h"
#include "xpath/parser.h"
#include "xpath/quickxscan.h"

namespace xdb {
namespace {

// --- record manager across page sizes ---

class RecordManagerPageSizeSweep : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(RecordManagerPageSizeSweep, InsertUpdateDeleteInvariants) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  opts.page_size = GetParam();
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), 256);
  RecordManager rm(&bm);

  Random rng(GetParam());
  std::map<uint64_t, std::string> model;  // rid.Pack() -> contents
  for (int op = 0; op < 1500; op++) {
    int dice = static_cast<int>(rng.Uniform(10));
    if (dice < 5 || model.empty()) {
      size_t len = rng.Uniform(3 * GetParam() / 2) + 1;
      std::string data(len, static_cast<char>('a' + rng.Uniform(26)));
      Rid rid = rm.Insert(data).value();
      ASSERT_EQ(model.count(rid.Pack()), 0u);
      model[rid.Pack()] = data;
    } else if (dice < 8) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      size_t len = rng.Uniform(2 * GetParam()) + 1;
      std::string data(len, static_cast<char>('A' + rng.Uniform(26)));
      ASSERT_TRUE(rm.Update(Rid::Unpack(it->first), data).ok());
      it->second = data;
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(rm.Delete(Rid::Unpack(it->first)).ok());
      model.erase(it);
    }
  }
  // Every surviving record reads back exactly.
  for (const auto& [packed, expected] : model) {
    std::string out;
    ASSERT_TRUE(rm.Get(Rid::Unpack(packed), &out).ok());
    EXPECT_EQ(out, expected);
  }
  // The scan sees exactly the surviving set.
  size_t seen = 0;
  ASSERT_TRUE(rm.ScanAll([&](Rid rid, Slice data) {
                  auto it = model.find(rid.Pack());
                  EXPECT_NE(it, model.end());
                  if (it != model.end()) {
                    EXPECT_EQ(data.ToString(), it->second);
                  }
                  seen++;
                  return Status::OK();
                })
                  .ok());
  EXPECT_EQ(seen, model.size());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, RecordManagerPageSizeSweep,
                         ::testing::Values(512u, 1024u, 4096u, 16384u));

// --- btree under tiny buffer pools (eviction pressure) ---

class BtreeBufferSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BtreeBufferSweep, SortedIterationUnderEviction) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), GetParam());
  auto tree = BTree::Create(&bm).MoveValue();
  Random rng(17);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 4000; i++) {
    std::string k = "k" + std::to_string(rng.Uniform(100000));
    std::string v = k + "-value";  // deterministic: re-inserts are no-ops
    if (tree->Insert(k, v).ok()) model.emplace(k, v);
  }
  auto it = tree->SeekToFirst().MoveValue();
  size_t count = 0;
  std::string prev;
  while (it.Valid()) {
    if (count > 0) {
      ASSERT_LT(Slice(prev).Compare(it.key()), 0);
    }
    prev = it.key().ToString();
    count++;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, model.size());
  if (GetParam() <= 8) {
    EXPECT_GT(bm.stats().evictions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, BtreeBufferSweep,
                         ::testing::Values(4u, 16u, 64u, 1024u));

// --- packed round trip across budget x document-shape grid ---

struct PackCase {
  size_t budget;
  int shape;  // 0 = catalog, 1 = recursive, 2 = wide
};

class PackSweep : public ::testing::TestWithParam<PackCase> {};

TEST_P(PackSweep, StoreTraverseRoundTrip) {
  const PackCase& pc = GetParam();
  Random rng(42);
  std::string xml;
  switch (pc.shape) {
    case 0: {
      workload::CatalogOptions opts;
      opts.categories = 2;
      opts.products_per_category = 15;
      xml = workload::GenCatalogXml(&rng, opts);
      break;
    }
    case 1:
      xml = workload::GenRecursiveXml(15, 3);
      break;
    default:
      xml = workload::GenWideXml(120, 25);
  }

  TableSpaceOptions opts;
  opts.in_memory = true;
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), 512);
  RecordManager records(&bm);
  auto tree = BTree::Create(&bm).MoveValue();
  NodeIdIndex index(tree.get());

  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
  RecordBuilderOptions rb;
  rb.record_budget = pc.budget;
  RecordBuilder builder(rb);
  uint64_t total_nodes = 0;
  ASSERT_TRUE(builder
                  .Build(tokens.data(),
                         [&](PackedRecordOut&& rec) -> Status {
                           XDB_ASSIGN_OR_RETURN(Rid rid,
                                                records.Insert(rec.bytes));
                           XDB_RETURN_NOT_OK(
                               index.AddRecord(1, rec.bytes, rid));
                           XDB_ASSIGN_OR_RETURN(uint64_t n,
                                                CountRecordNodes(rec.bytes));
                           total_nodes += n;
                           return Status::OK();
                         })
                  .ok());
  // Invariant 1: node conservation — stored nodes == source nodes.
  uint64_t source_nodes = 0;
  {
    TokenStreamSource src(tokens.data());
    XmlEvent ev;
    for (;;) {
      auto more = src.Next(&ev);
      ASSERT_TRUE(more.ok());
      if (!more.value()) break;
      switch (ev.type) {
        case XmlEvent::Type::kStartDocument:
        case XmlEvent::Type::kEndDocument:
        case XmlEvent::Type::kEndElement:
          break;
        default:
          source_nodes++;
      }
    }
  }
  EXPECT_EQ(total_nodes, source_nodes);

  // Invariant 2: byte-exact token round trip through stored traversal.
  StoredDocSource source(&records, &index, 1);
  TokenWriter back;
  ASSERT_TRUE(EventsToTokens(&source, &back).ok());
  EXPECT_EQ(back.buffer(), tokens.buffer());
}

INSTANTIATE_TEST_SUITE_P(
    BudgetsAndShapes, PackSweep,
    ::testing::Values(PackCase{48, 0}, PackCase{48, 1}, PackCase{48, 2},
                      PackCase{300, 0}, PackCase{300, 1}, PackCase{300, 2},
                      PackCase{2000, 0}, PackCase{2000, 1}, PackCase{2000, 2},
                      PackCase{64 * 1024, 0}, PackCase{64 * 1024, 1},
                      PackCase{64 * 1024, 2}));

// --- QuickXScan ≡ DOM across a query corpus on fixed tricky documents ---

class QueryAgreementSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryAgreementSweep, QuickXScanMatchesDomOnTrickyDocs) {
  static const char* kDocs[] = {
      "<a><a><a><a/></a></a></a>",
      "<a><b><a><b><a><b/></a></b></a></b></a>",
      "<a x=\"1\"><b x=\"2\"><c x=\"3\"/></b><b/></a>",
      "<a>t1<b>t2<c>t3</c>t4</b>t5</a>",
      "<a><b v=\"10\"/><b v=\"20\"><b v=\"30\"/></b></a>",
      "<a><!--c1--><b><!--c2--></b><?p d?></a>",
  };
  NameDictionary dict;
  Parser parser(&dict);
  for (const char* doc : kDocs) {
    TokenWriter tokens;
    ASSERT_TRUE(parser.Parse(doc, &tokens).ok()) << doc;
    TokenStreamSource source(tokens.data());
    auto quick = xpath::EvaluateXPath(GetParam(), dict, &source, 1, false);
    ASSERT_TRUE(quick.ok()) << GetParam() << ": "
                            << quick.status().ToString();
    auto tree = DomTree::FromTokens(tokens.data()).MoveValue();
    auto path = xpath::ParsePath(GetParam()).MoveValue();
    xpath::DomEvaluator dom_eval(tree.get(), &dict, 1);
    auto dom = dom_eval.Evaluate(path, false).MoveValue();
    ASSERT_EQ(quick.value().size(), dom.size()) << GetParam() << " on " << doc;
    for (size_t i = 0; i < dom.size(); i++) {
      EXPECT_EQ(quick.value()[i].node_id, dom[i].node_id)
          << GetParam() << " on " << doc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, QueryAgreementSweep,
    ::testing::Values("//a", "//a//a", "//a//a//a", "//a/a", "//a[a]",
                      "//a[not(a)]", "//b[@v > 15]", "//b[@v > 15 or @x]",
                      "//a//b[.//a]", "//*[@x]", "//a/text()", "//comment()",
                      "//b[. = \"t2t3t4\"]", "/a/b/c", "/a//c",
                      "//a[b and not(b/c)]"));

// --- engine model test: random ops vs an in-memory map, with reopen ---

TEST(EngineModelTest, RandomOpsMatchModelAcrossReopen) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("xdb_model_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  EngineOptions eopts;
  eopts.dir = dir;

  std::map<uint64_t, std::string> model;  // doc id -> serialized text
  Random rng(1234);
  workload::CatalogOptions wopts;
  wopts.categories = 1;
  wopts.products_per_category = 3;

  auto engine = Engine::Open(eopts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  for (int step = 0; step < 120; step++) {
    int dice = static_cast<int>(rng.Uniform(10));
    if (dice < 4 || model.empty()) {
      std::string xml = workload::GenCatalogXml(&rng, wopts);
      uint64_t doc = coll->InsertDocument(nullptr, xml).value();
      model[doc] = coll->GetDocumentText(nullptr, doc).value();
    } else if (dice < 6) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(coll->DeleteDocument(nullptr, it->first).ok());
      model.erase(it);
    } else if (dice < 8) {
      // Update a random product's name text.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto texts =
          coll->Query(nullptr, "/Catalog/Categories/Product/ProductName/text()")
              .MoveValue();
      for (auto& n : texts.nodes) {
        if (n.doc_id == it->first) {
          ASSERT_TRUE(coll->UpdateTextNode(nullptr, it->first, n.node_id,
                                           "renamed-" + std::to_string(step))
                          .ok());
          it->second = coll->GetDocumentText(nullptr, it->first).value();
          break;
        }
      }
    } else if (dice == 8) {
      // Reopen the engine (checkpoint via destructor).
      engine.reset();
      engine = Engine::Open(eopts).MoveValue();
      coll = engine->GetCollection("docs").value();
    } else {
      // Verify a random document + the doc-id census.
      auto ids = coll->ListDocIds().value();
      ASSERT_EQ(ids.size(), model.size());
      if (!model.empty()) {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        EXPECT_EQ(coll->GetDocumentText(nullptr, it->first).value(),
                  it->second);
      }
    }
  }
  // Final full audit.
  for (const auto& [doc, text] : model) {
    EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), text);
  }
  engine.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xdb
