// Support for the crash-simulation idiom: tests "crash" an Engine by leaking
// it so destructors never checkpoint or flush, then reopen and assert on the
// recovered state. Those leaks are the point of the test, so they're excused
// to LeakSanitizer one object at a time — everything else still leak-checks
// (CI runs the ASan jobs with leak detection ON).
#ifndef XDB_TESTS_LEAK_CHECK_H_
#define XDB_TESTS_LEAK_CHECK_H_

#if defined(__SANITIZE_ADDRESS__)
#define XDB_LSAN_AVAILABLE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define XDB_LSAN_AVAILABLE 1
#endif
#endif

#ifdef XDB_LSAN_AVAILABLE
#include <sanitizer/lsan_interface.h>
#endif

namespace xdb {

/// Marks `p` as deliberately leaked. LSan ignores the object and everything
/// reachable only through it, so excusing a "crashed" Engine* excuses its
/// whole ownership graph (collections, buffer pools, WAL) without loosening
/// leak detection anywhere else.
template <typename T>
T* IntentionallyLeaked(T* p) {
#ifdef XDB_LSAN_AVAILABLE
  __lsan_ignore_object(p);
#endif
  return p;
}

}  // namespace xdb

#endif  // XDB_TESTS_LEAK_CHECK_H_
