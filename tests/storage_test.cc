// Tests for the storage substrate: table spaces, buffer manager, slotted
// records (inline / overflow / forwarding), and the WAL.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/record_manager.h"
#include "storage/tablespace.h"
#include "storage/wal_log.h"

namespace xdb {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("xdb_test_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

class FileGuard {
 public:
  explicit FileGuard(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~FileGuard() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TableSpaceTest, CreateAllocateReadWrite) {
  FileGuard file(TempPath("ts1"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  ASSERT_NE(ts, nullptr);
  PageId p1 = ts->AllocatePage().value();
  PageId p2 = ts->AllocatePage().value();
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, 0u);  // page 0 is the header

  std::string data(ts->page_size(), 'A');
  ASSERT_TRUE(ts->WritePage(p1, data.data()).ok());
  std::string readback(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p1, readback.data()).ok());
  EXPECT_EQ(readback, data);
}

TEST(TableSpaceTest, FreeListRecyclesPages) {
  FileGuard file(TempPath("ts2"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  PageId p1 = ts->AllocatePage().value();
  PageId count_before = ts->page_count();
  ASSERT_TRUE(ts->FreePage(p1).ok());
  PageId p2 = ts->AllocatePage().value();
  EXPECT_EQ(p2, p1);  // recycled
  EXPECT_EQ(ts->page_count(), count_before);
  // Recycled pages come back zeroed.
  std::string buf(ts->page_size(), 'x');
  ASSERT_TRUE(ts->ReadPage(p2, buf.data()).ok());
  for (char c : buf) ASSERT_EQ(c, '\0');
}

TEST(TableSpaceTest, PersistsAcrossReopen) {
  FileGuard file(TempPath("ts3"));
  PageId p;
  {
    auto ts = TableSpace::Create(file.path()).MoveValue();
    p = ts->AllocatePage().value();
    std::string data(ts->page_size(), 'Z');
    ASSERT_TRUE(ts->WritePage(p, data.data()).ok());
    ASSERT_TRUE(ts->Sync().ok());
  }
  auto ts = TableSpace::Open(file.path()).MoveValue();
  ASSERT_NE(ts, nullptr);
  std::string buf(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, buf.data()).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST(TableSpaceTest, InMemoryMode) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string data(ts->page_size(), 'M');
  ASSERT_TRUE(ts->WritePage(p, data.data()).ok());
  std::string buf(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, buf.data()).ok());
  EXPECT_EQ(buf, data);
}

TEST(TableSpaceTest, OpenRejectsGarbage) {
  FileGuard file(TempPath("ts4"));
  {
    std::FILE* f = std::fopen(file.path().c_str(), "wb");
    std::fputs("this is not a table space header at all padding padding "
               "padding padding",
               f);
    std::fclose(f);
  }
  EXPECT_FALSE(TableSpace::Open(file.path()).ok());
}

void PatchFile(const std::string& path, uint64_t offset, const char* bytes,
               size_t n) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(bytes, static_cast<std::streamsize>(n));
}

// Format migration: spaces created without checksums are format v1 (no
// per-page header, full page payload) and keep working across reopen.
TEST(TableSpaceFormatTest, UncheckedV1SpacesStillOpen) {
  FileGuard file(TempPath("fmt_v1"));
  PageId p;
  {
    TableSpaceOptions opts;
    opts.page_checksums = false;
    auto ts = TableSpace::Create(file.path(), opts).MoveValue();
    EXPECT_EQ(ts->format_version(), kTableSpaceFormatV1);
    EXPECT_EQ(ts->data_offset(), 0u);
    EXPECT_EQ(ts->usable_page_size(), ts->page_size());
    p = ts->AllocatePage().value();
    std::string data(ts->page_size(), 'L');
    ASSERT_TRUE(ts->WritePage(p, data.data()).ok());
    ASSERT_TRUE(ts->Sync().ok());
  }
  auto ts = TableSpace::Open(file.path()).MoveValue();
  EXPECT_EQ(ts->format_version(), kTableSpaceFormatV1);
  std::string buf(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, buf.data()).ok());
  EXPECT_EQ(buf[0], 'L');
  // And a v1 BufferManager exposes the full page, no header reserve.
  BufferManager bm(ts.get(), 4);
  EXPECT_EQ(bm.page_size(), ts->page_size());
}

// Pre-versioning files have zeros where the format/crc fields now live —
// they must be probed as legacy v1, not rejected.
TEST(TableSpaceFormatTest, LegacyZeroVersionHeaderOpensAsV1) {
  FileGuard file(TempPath("fmt_v0"));
  {
    TableSpaceOptions opts;
    opts.page_checksums = false;
    auto ts = TableSpace::Create(file.path(), opts).MoveValue();
    ASSERT_TRUE(ts->AllocatePage().ok());
    ASSERT_TRUE(ts->Sync().ok());
  }
  const char zeros[8] = {0};
  PatchFile(file.path(), 16, zeros, sizeof(zeros));  // wipe version + crc
  auto opened = TableSpace::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->format_version(), kTableSpaceFormatV1);
}

TEST(TableSpaceFormatTest, V2DefaultReservesPageHeader) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  EXPECT_EQ(ts->format_version(), kTableSpaceFormatV2);
  EXPECT_EQ(ts->data_offset(), kPageHeaderSize);
  EXPECT_EQ(ts->usable_page_size(), ts->page_size() - kPageHeaderSize);
}

// Writeback stamps the page header (LSN + CRC); fetch verifies it.
TEST(BufferManagerChecksumTest, WritebackStampsHeaderWithLsn) {
  FileGuard file(TempPath("bm_stamp"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  BufferManager bm(ts.get(), 4);
  bm.set_lsn_source([] { return uint64_t{42}; });
  PageId p;
  {
    PageHandle h = bm.NewPage().MoveValue();
    p = h.page_id();
    std::memset(h.MutableData(), 'S', bm.page_size());
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  std::string raw(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, raw.data()).ok());
  EXPECT_TRUE(VerifyPageChecksum(raw.data(), ts->page_size(), p).ok());
  EXPECT_EQ(PageLsn(raw.data()), 42u);
  EXPECT_EQ(raw[kPageHeaderSize], 'S');  // payload starts after the header
}

// A bit flip on disk is detected at fetch: kCorruption, page quarantined,
// stats recorded — never silently served.
TEST(BufferManagerChecksumTest, FetchDetectsOnDiskCorruption) {
  FileGuard file(TempPath("bm_detect"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  PageId p;
  {
    BufferManager bm(ts.get(), 4);
    PageHandle h = bm.NewPage().MoveValue();
    p = h.page_id();
    std::memset(h.MutableData(), 'C', bm.page_size());
  }  // dtor flushes
  const char flip = 'C' ^ 0x04;
  PatchFile(file.path(),
            static_cast<uint64_t>(p) * ts->page_size() + kPageHeaderSize + 7,
            &flip, 1);

  BufferManager bm(ts.get(), 4);
  Status st = bm.FixPage(p).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // The buffer manager is the single owner of this count
  // (`buffer.checksum_failures`); the tablespace I/O stats no longer mirror
  // it.
  EXPECT_EQ(bm.stats().checksum_failures, 1u);
  ASSERT_EQ(bm.quarantined_pages().size(), 1u);
  EXPECT_EQ(bm.quarantined_pages()[0], p);
  // Quarantine is sticky: the page stays refused without re-reading it.
  EXPECT_TRUE(bm.FixPage(p).status().IsCorruption());
}

TEST(BufferManagerTest, HitsAndMisses) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(ts.get(), 4);
  PageId p = ts->AllocatePage().value();
  {
    PageHandle h = bm.FixPage(p).MoveValue();
    EXPECT_EQ(bm.stats().misses, 1u);
  }
  {
    PageHandle h = bm.FixPage(p).MoveValue();
    EXPECT_EQ(bm.stats().hits, 1u);
  }
}

TEST(BufferManagerTest, EvictsLruAndWritesBack) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(ts.get(), 2);
  PageId pages[3];
  for (auto& p : pages) p = ts->AllocatePage().value();
  {
    PageHandle h = bm.FixPage(pages[0]).MoveValue();
    h.MutableData()[0] = 'D';
  }
  { PageHandle h = bm.FixPage(pages[1]).MoveValue(); }
  // Third page forces eviction of pages[0] (coldest unpinned).
  { PageHandle h = bm.FixPage(pages[2]).MoveValue(); }
  EXPECT_GE(bm.stats().evictions, 1u);
  EXPECT_GE(bm.stats().writebacks, 1u);
  // The dirty byte survived eviction.
  PageHandle h = bm.FixPage(pages[0]).MoveValue();
  EXPECT_EQ(h.data()[0], 'D');
}

TEST(BufferManagerTest, AllPinnedReportsBusy) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(ts.get(), 2);
  PageId p1 = ts->AllocatePage().value();
  PageId p2 = ts->AllocatePage().value();
  PageId p3 = ts->AllocatePage().value();
  PageHandle h1 = bm.FixPage(p1).MoveValue();
  PageHandle h2 = bm.FixPage(p2).MoveValue();
  auto res = bm.FixPage(p3);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsBusy());
}

TEST(BufferManagerTest, SkewedPinsBorrowFramesAcrossShards) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(ts.get(), /*capacity=*/8, /*shards=*/4);
  ASSERT_EQ(bm.shard_count(), 4u);

  // Gather page ids that all hash to one shard (the manager's Fibonacci
  // hash, replicated here) — more of them than the shard's own 8/4 = 2
  // frames, so pinning them all only works if the shard borrows frames.
  auto shard_of = [](PageId id) {
    return static_cast<size_t>((id * 0x9E3779B97F4A7C15ull) >> 32) & 3;
  };
  std::vector<PageId> skewed;
  size_t target_shard = 0;
  while (skewed.size() < 6) {
    PageId id = ts->AllocatePage().value();
    if (skewed.empty()) target_shard = shard_of(id);
    if (shard_of(id) == target_shard) skewed.push_back(id);
  }

  std::vector<PageHandle> pins;
  for (PageId id : skewed) {
    auto h = bm.FixPage(id);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    pins.push_back(h.MoveValue());
  }

  // Fill the remaining frames with arbitrary pages, then one more pin must
  // report Busy: borrowing extends a shard's reach to the whole pool, not
  // beyond it.
  while (pins.size() < 8) {
    PageId id = ts->AllocatePage().value();
    auto h = bm.FixPage(id);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    pins.push_back(h.MoveValue());
  }
  PageId extra = ts->AllocatePage().value();
  auto res = bm.FixPage(extra);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsBusy());

  // Unpinning any page frees capacity for any shard (via eviction or
  // another borrow).
  pins.pop_back();
  EXPECT_TRUE(bm.FixPage(extra).ok());
}

class RecordManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 64);
    rm_ = std::make_unique<RecordManager>(bm_.get());
  }

  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<RecordManager> rm_;
};

TEST_F(RecordManagerTest, InsertGetDelete) {
  Rid rid = rm_->Insert("hello record").value();
  std::string out;
  ASSERT_TRUE(rm_->Get(rid, &out).ok());
  EXPECT_EQ(out, "hello record");
  ASSERT_TRUE(rm_->Delete(rid).ok());
  EXPECT_TRUE(rm_->Get(rid, &out).IsNotFound());
}

TEST_F(RecordManagerTest, ManySmallRecordsSpanPages) {
  std::vector<Rid> rids;
  for (int i = 0; i < 2000; i++) {
    rids.push_back(rm_->Insert("record-" + std::to_string(i)).value());
  }
  EXPECT_GT(rm_->stats().data_pages, 1u);
  for (int i = 0; i < 2000; i++) {
    std::string out;
    ASSERT_TRUE(rm_->Get(rids[i], &out).ok()) << i;
    EXPECT_EQ(out, "record-" + std::to_string(i));
  }
}

TEST_F(RecordManagerTest, OverflowRecordRoundTrip) {
  std::string big(20000, 'B');
  for (size_t i = 0; i < big.size(); i++) big[i] = static_cast<char>('a' + i % 26);
  Rid rid = rm_->Insert(big).value();
  EXPECT_GE(rm_->stats().overflow_records, 1u);
  std::string out;
  ASSERT_TRUE(rm_->Get(rid, &out).ok());
  EXPECT_EQ(out, big);
  ASSERT_TRUE(rm_->Delete(rid).ok());
}

TEST_F(RecordManagerTest, UpdateInPlaceKeepsRid) {
  Rid rid = rm_->Insert("short").value();
  ASSERT_TRUE(rm_->Update(rid, "a bit longer value").ok());
  std::string out;
  ASSERT_TRUE(rm_->Get(rid, &out).ok());
  EXPECT_EQ(out, "a bit longer value");
}

TEST_F(RecordManagerTest, UpdateGrowthForwardsButRidStable) {
  // Fill a page so in-place growth is impossible.
  std::vector<Rid> rids;
  for (int i = 0; i < 12; i++)
    rids.push_back(rm_->Insert(std::string(300, 'a' + i)).value());
  Rid victim = rids[3];
  std::string grown(2500, 'G');
  ASSERT_TRUE(rm_->Update(victim, grown).ok());
  std::string out;
  ASSERT_TRUE(rm_->Get(victim, &out).ok());
  EXPECT_EQ(out, grown);
  // And everyone else is untouched.
  for (int i = 0; i < 12; i++) {
    if (rids[i] == victim) continue;
    ASSERT_TRUE(rm_->Get(rids[i], &out).ok());
    EXPECT_EQ(out, std::string(300, 'a' + i));
  }
  // Update a forwarded record again.
  ASSERT_TRUE(rm_->Update(victim, "tiny now").ok());
  ASSERT_TRUE(rm_->Get(victim, &out).ok());
  EXPECT_EQ(out, "tiny now");
}

TEST_F(RecordManagerTest, UpdateNearInlineLimitUsesOverflow) {
  // Regression: a record just under the inline maximum cannot be relocated
  // (the moved-in cell adds an 8-byte home-RID prefix); the update must
  // route through an overflow chain instead of corrupting the page.
  const size_t near_max = 4083 - 4;  // page 4096: max_inline - epsilon
  Rid rid = rm_->Insert(std::string(100, 'a')).value();
  // Park another record so in-place growth is impossible.
  rm_->Insert(std::string(3800, 'b')).value();
  std::string big(near_max, 'c');
  ASSERT_TRUE(rm_->Update(rid, big).ok());
  std::string out;
  ASSERT_TRUE(rm_->Get(rid, &out).ok());
  EXPECT_EQ(out, big);
  // Repeated churn around the limit stays healthy.
  for (int i = 0; i < 50; i++) {
    std::string payload(near_max - 60 + static_cast<size_t>(i), 'd');
    ASSERT_TRUE(rm_->Update(rid, payload).ok()) << i;
    ASSERT_TRUE(rm_->Get(rid, &out).ok()) << i;
    ASSERT_EQ(out, payload) << i;
  }
}

TEST_F(RecordManagerTest, ScanVisitsEveryRecordOnce) {
  std::set<std::string> expected;
  for (int i = 0; i < 50; i++) {
    std::string rec = "rec" + std::to_string(i);
    expected.insert(rec);
    rm_->Insert(rec).value();
  }
  // Include an overflow and a forwarded record.
  rm_->Insert(std::string(9000, 'O')).value();
  expected.insert(std::string(9000, 'O'));

  std::multiset<std::string> seen;
  ASSERT_TRUE(rm_->ScanAll([&](Rid, Slice data) {
                  seen.insert(data.ToString());
                  return Status::OK();
                })
                  .ok());
  EXPECT_EQ(seen.size(), expected.size());
  for (const auto& e : expected) EXPECT_EQ(seen.count(e), 1u) << e.substr(0, 16);
}

TEST_F(RecordManagerTest, UpdatePreservesOtherOverflowChains) {
  Rid a = rm_->Insert(std::string(10000, 'A')).value();
  Rid b = rm_->Insert(std::string(10000, 'B')).value();
  ASSERT_TRUE(rm_->Update(a, std::string(12000, 'C')).ok());
  std::string out;
  ASSERT_TRUE(rm_->Get(b, &out).ok());
  EXPECT_EQ(out, std::string(10000, 'B'));
  ASSERT_TRUE(rm_->Get(a, &out).ok());
  EXPECT_EQ(out, std::string(12000, 'C'));
}

TEST(RecordManagerPersistTest, RecoverRebuildsFreeSpace) {
  FileGuard file(TempPath("rm1"));
  std::vector<Rid> rids;
  {
    auto space = TableSpace::Create(file.path()).MoveValue();
    BufferManager bm(space.get(), 64);
    RecordManager rm(&bm);
    for (int i = 0; i < 100; i++)
      rids.push_back(rm.Insert("persisted-" + std::to_string(i)).value());
    ASSERT_TRUE(bm.FlushAll().ok());
    ASSERT_TRUE(space->Sync().ok());
  }
  auto space = TableSpace::Open(file.path()).MoveValue();
  BufferManager bm(space.get(), 64);
  RecordManager rm(&bm);
  ASSERT_TRUE(rm.Recover().ok());
  for (int i = 0; i < 100; i++) {
    std::string out;
    ASSERT_TRUE(rm.Get(rids[i], &out).ok());
    EXPECT_EQ(out, "persisted-" + std::to_string(i));
  }
  // New inserts reuse recovered free space rather than always extending.
  Rid extra = rm.Insert("after recovery").value();
  std::string out;
  ASSERT_TRUE(rm.Get(extra, &out).ok());
  EXPECT_EQ(out, "after recovery");
}

TEST(WalLogTest, AppendAndReplay) {
  FileGuard file(TempPath("wal1"));
  auto wal = WalLog::Open(file.path()).MoveValue();
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "doc one").ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kDeleteDocument, "doc two").ok());
  ASSERT_TRUE(wal->Sync().ok());

  std::vector<std::pair<WalRecordType, std::string>> seen;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType type, Slice payload) {
                   seen.emplace_back(type, payload.ToString());
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, WalRecordType::kInsertDocument);
  EXPECT_EQ(seen[0].second, "doc one");
  EXPECT_EQ(seen[1].first, WalRecordType::kDeleteDocument);
  EXPECT_EQ(seen[1].second, "doc two");
}

TEST(WalLogTest, TornTailStopsCleanly) {
  FileGuard file(TempPath("wal2"));
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "good").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "will be torn").ok());
  }
  // Truncate mid-record.
  std::filesystem::resize_file(file.path(),
                               std::filesystem::file_size(file.path()) - 5);
  auto wal = WalLog::Open(file.path()).MoveValue();
  int count = 0;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                   count++;
                   EXPECT_EQ(payload.ToString(), "good");
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(WalLogTest, CorruptPayloadStopsAtCrc) {
  FileGuard file(TempPath("wal3"));
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "first").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "second").ok());
  }
  // Flip a byte in the second record's payload.
  {
    std::FILE* f = std::fopen(file.path().c_str(), "r+b");
    std::fseek(f, -2, SEEK_END);
    std::fputc('X', f);
    std::fclose(f);
  }
  auto wal = WalLog::Open(file.path()).MoveValue();
  int count = 0;
  ASSERT_TRUE(
      wal->Replay([&](uint64_t, WalRecordType, Slice) {
           count++;
           return Status::OK();
         }).ok());
  EXPECT_EQ(count, 1);
}

TEST(WalLogTest, ResetTruncates) {
  FileGuard file(TempPath("wal4"));
  auto wal = WalLog::Open(file.path()).MoveValue();
  ASSERT_TRUE(wal->Append(WalRecordType::kCheckpoint, "x").ok());
  EXPECT_GT(wal->size(), 0u);
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->size(), 0u);
  int count = 0;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice) {
                   count++;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 0);
}

TEST(WalLogTest, CommitSupersededByResetReturnsInsteadOfLivelocking) {
  FileGuard file(TempPath("wal5"));
  auto wal = WalLog::Open(file.path()).MoveValue();
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "payload").ok());

  // A checkpoint's Reset() lands in the exact window after Commit snapshots
  // its CSN. The truncated log can never reach that CSN again, so the
  // commit must treat the checkpoint as having superseded it and return OK
  // — the pre-generation-counter code fsynced forever chasing the stale
  // target.
  int resets = 0;
  wal->set_commit_race_hook_for_test([&] {
    if (resets++ == 0) {
      ASSERT_TRUE(wal->Reset().ok());
    }
  });
  Status st = wal->Commit();
  EXPECT_TRUE(st.ok()) << st.ToString();
  wal->set_commit_race_hook_for_test(nullptr);
  EXPECT_EQ(wal->size(), 0u);

  // The log keeps working after the superseded commit.
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "after").ok());
  EXPECT_TRUE(wal->Commit().ok());
}

TEST(Crc32Test, KnownValueAndSensitivity) {
  uint32_t a = Crc32("hello", 5);
  uint32_t b = Crc32("hellp", 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Crc32("hello", 5));
}

}  // namespace
}  // namespace xdb
