// Tests for prefix-encoded node IDs: validity, document order, ancestor
// testing, and — the load-bearing property — Between() always finding room.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "btree/btree.h"
#include "common/random.h"
#include "index/nodeid_index.h"
#include "pack/record_builder.h"
#include "pack/tree_cursor.h"
#include "storage/buffer_manager.h"
#include "storage/record_manager.h"
#include "storage/tablespace.h"
#include "util/workload.h"
#include "xml/node_id.h"
#include "xml/parser.h"

namespace xdb {
namespace nodeid {
namespace {

TEST(NodeIdTest, ChildIdsAreSingleEvenBytes) {
  EXPECT_EQ(ChildId(1), std::string(1, char(0x02)));
  EXPECT_EQ(ChildId(2), std::string(1, char(0x04)));
  EXPECT_EQ(ChildId(126), std::string(1, char(0xFC)));
}

TEST(NodeIdTest, ChildIdsExtendPast126) {
  std::string id127 = ChildId(127);
  EXPECT_GT(id127.size(), 1u);
  EXPECT_TRUE(IsValidRelative(id127));
  // Order holds across the extension boundary.
  EXPECT_LT(Slice(ChildId(126)).Compare(Slice(id127)), 0);
  EXPECT_LT(Slice(id127).Compare(Slice(ChildId(128))), 0);
  EXPECT_LT(Slice(ChildId(200)).Compare(Slice(ChildId(300))), 0);
}

TEST(NodeIdTest, SiblingOrderIsStrictlyIncreasing) {
  std::string prev;
  for (uint32_t n = 1; n <= 1000; n++) {
    std::string id = ChildId(n);
    EXPECT_TRUE(IsValidRelative(id)) << n;
    if (!prev.empty()) {
      EXPECT_LT(Slice(prev).Compare(Slice(id)), 0) << n;
    }
    prev = id;
  }
}

TEST(NodeIdTest, Validity) {
  EXPECT_TRUE(IsValidRelative(std::string(1, 0x02)));
  EXPECT_TRUE(IsValidRelative(std::string{char(0x03), char(0x02)}));
  EXPECT_FALSE(IsValidRelative(""));
  EXPECT_FALSE(IsValidRelative(std::string(1, 0x03)));          // ends odd
  EXPECT_FALSE(IsValidRelative(std::string{char(0x02), char(0x04)}));  // 2 levels
  EXPECT_TRUE(IsValidAbsolute(""));  // the implicit root
  EXPECT_TRUE(IsValidAbsolute(std::string{char(0x02), char(0x04)}));
  EXPECT_FALSE(IsValidAbsolute(std::string{char(0x02), char(0x03)}));
}

TEST(NodeIdTest, SplitLevelsAndDepth) {
  // 02 | 03 04 | 06
  std::string abs{char(0x02), char(0x03), char(0x04), char(0x06)};
  std::vector<Slice> levels;
  ASSERT_TRUE(SplitLevels(abs, &levels).ok());
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].size(), 1u);
  EXPECT_EQ(levels[1].size(), 2u);
  EXPECT_EQ(levels[2].size(), 1u);
  EXPECT_EQ(Depth(abs).value(), 3);
  EXPECT_EQ(Depth("").value(), 0);
}

TEST(NodeIdTest, Parent) {
  std::string abs{char(0x02), char(0x03), char(0x04), char(0x06)};
  Slice p = Parent(abs).value();
  EXPECT_EQ(p.size(), 3u);  // strips the final single-byte level
  Slice pp = Parent(p).value();
  EXPECT_EQ(pp.size(), 1u);  // strips the two-byte level
  Slice root = Parent(pp).value();
  EXPECT_TRUE(root.empty());
  EXPECT_FALSE(Parent(Slice()).ok());
}

TEST(NodeIdTest, AncestorIsProperPrefix) {
  std::string a{char(0x02)};
  std::string d{char(0x02), char(0x04)};
  EXPECT_TRUE(IsAncestor(a, d));
  EXPECT_FALSE(IsAncestor(d, a));
  EXPECT_FALSE(IsAncestor(a, a));
  EXPECT_TRUE(IsAncestor(Slice(), a));  // root is everyone's ancestor
}

TEST(NodeIdTest, DocumentOrderPutsAncestorsFirst) {
  std::string parent{char(0x04)};
  std::string child{char(0x04), char(0x02)};
  std::string next_sibling{char(0x06)};
  EXPECT_LT(Compare(parent, child), 0);
  EXPECT_LT(Compare(child, next_sibling), 0);
}

TEST(BetweenTest, BasicCases) {
  std::string mid;
  // First child ever.
  ASSERT_TRUE(Between(Slice(), Slice(), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));

  // After last.
  std::string left = ChildId(3);
  ASSERT_TRUE(Between(left, Slice(), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(left).Compare(Slice(mid)), 0);

  // Before first.
  std::string right = ChildId(1);  // 0x02
  ASSERT_TRUE(Between(Slice(), right, &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(mid).Compare(Slice(right)), 0);

  // Between adjacent single bytes: 02 < mid < 04.
  ASSERT_TRUE(Between(ChildId(1), ChildId(2), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(ChildId(1)).Compare(Slice(mid)), 0);
  EXPECT_LT(Slice(mid).Compare(Slice(ChildId(2))), 0);
}

TEST(BetweenTest, AfterLastAtByteCeiling) {
  std::string left(1, char(0xFE));
  std::string mid;
  ASSERT_TRUE(Between(left, Slice(), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(left).Compare(Slice(mid)), 0);
}

// The property the paper claims: "there is always space for insertion in the
// middle by extending the node ID length when necessary." Repeatedly insert
// at random gaps and verify validity + strict order every time.
TEST(BetweenTest, PropertyRandomInsertionsStaySorted) {
  for (uint64_t seed = 1; seed <= 5; seed++) {
    Random rng(seed);
    std::vector<std::string> ids = {ChildId(1), ChildId(2), ChildId(3)};
    for (int iter = 0; iter < 400; iter++) {
      size_t gap = rng.Uniform(ids.size() + 1);
      Slice left = gap == 0 ? Slice() : Slice(ids[gap - 1]);
      Slice right = gap == ids.size() ? Slice() : Slice(ids[gap]);
      std::string mid;
      Status st = Between(left, right, &mid);
      ASSERT_TRUE(st.ok()) << st.ToString() << " at iter " << iter;
      ASSERT_TRUE(IsValidRelative(mid)) << ToString(mid);
      if (!left.empty()) {
        ASSERT_LT(left.Compare(Slice(mid)), 0);
      }
      if (!right.empty()) {
        ASSERT_LT(Slice(mid).Compare(right), 0);
      }
      ids.insert(ids.begin() + gap, mid);
    }
    ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end(),
                               [](const std::string& a, const std::string& b) {
                                 return Slice(a).Compare(Slice(b)) < 0;
                               }));
    // All distinct.
    std::set<std::string> uniq(ids.begin(), ids.end());
    EXPECT_EQ(uniq.size(), ids.size());
  }
}

// Left-edge hammering: keep inserting before the first sibling; the encoding
// extends instead of running out (until the absolute floor).
TEST(BetweenTest, RepeatedInsertBeforeFirstExtends) {
  std::string right = ChildId(1);
  for (int i = 0; i < 100; i++) {
    std::string mid;
    Status st = Between(Slice(), right, &mid);
    ASSERT_TRUE(st.ok()) << "iteration " << i << ": " << st.ToString();
    ASSERT_TRUE(IsValidRelative(mid));
    ASSERT_LT(Slice(mid).Compare(Slice(right)), 0);
    right = mid;
  }
}

TEST(BetweenTest, RepeatedInsertBetweenAdjacentExtends) {
  std::string left = ChildId(1), right = ChildId(2);
  for (int i = 0; i < 100; i++) {
    std::string mid;
    ASSERT_TRUE(Between(left, right, &mid).ok()) << i;
    ASSERT_TRUE(IsValidRelative(mid));
    ASSERT_LT(Slice(left).Compare(Slice(mid)), 0) << i;
    ASSERT_LT(Slice(mid).Compare(Slice(right)), 0) << i;
    // Alternate narrowing from both sides.
    if (i % 2 == 0) left = mid; else right = mid;
  }
}

TEST(NodeIdTest, ToStringRendersLevels) {
  std::string abs{char(0x02), char(0x04)};
  EXPECT_EQ(ToString(abs), "02.04");
  EXPECT_EQ(ToString(Slice()), "00");
}

// --- Edge-case sweeps: deep Dewey prefixes and sibling overflow, first as
// raw ID properties, then fed through the NodeID B+tree index. ---

// A 64-deep chain: every proper prefix is an ancestor, depth counts levels
// exactly, and Parent() walks the chain back to the root.
TEST(NodeIdEdgeTest, DeepPrefixChainContainmentAndOrder) {
  std::vector<std::string> chain;  // chain[d] has depth d+1
  std::string id;
  for (int d = 0; d < 64; d++) {
    id += ChildId(static_cast<uint32_t>(d % 5 + 1));
    ASSERT_TRUE(IsValidAbsolute(id)) << d;
    EXPECT_EQ(Depth(id).value(), d + 1);
    chain.push_back(id);
  }
  for (size_t i = 0; i < chain.size(); i++) {
    for (size_t j = i + 1; j < chain.size(); j++) {
      EXPECT_TRUE(IsAncestor(chain[i], chain[j])) << i << "," << j;
      EXPECT_FALSE(IsAncestor(chain[j], chain[i])) << i << "," << j;
      // Document order puts ancestors first.
      EXPECT_LT(Compare(chain[i], chain[j]), 0) << i << "," << j;
    }
  }
  // Parent() inverts the construction.
  Slice cur = chain.back();
  for (int d = 63; d >= 1; d--) {
    cur = Parent(cur).value();
    EXPECT_EQ(cur.ToString(), chain[d - 1]) << d;
  }
  EXPECT_TRUE(Parent(cur).value().empty());
}

// Sibling overflow: once ChildId crosses the single-byte ceiling (126) the
// encoding extends. No sibling may become a prefix (= ancestor) of another,
// and order must stay strict through the boundary and far past it.
TEST(NodeIdEdgeTest, SiblingOverflowIsOrderedAndPrefixFree) {
  std::vector<std::string> sibs;
  for (uint32_t n = 100; n <= 600; n++) sibs.push_back(ChildId(n));
  for (size_t i = 0; i < sibs.size(); i++) {
    ASSERT_TRUE(IsValidRelative(sibs[i])) << 100 + i;
    if (i > 0) {
      EXPECT_LT(Slice(sibs[i - 1]).Compare(Slice(sibs[i])), 0) << 100 + i;
      // Siblings are never ancestors of each other, even when the shorter
      // one ends where the longer one's extension begins.
      EXPECT_FALSE(IsAncestor(sibs[i - 1], sibs[i])) << 100 + i;
      EXPECT_FALSE(IsAncestor(sibs[i], sibs[i - 1])) << 100 + i;
    }
  }
}

// Overflowed siblings used as interior levels: a child under sibling #n>126
// is a descendant of exactly that sibling, not its neighbours.
TEST(NodeIdEdgeTest, DeepPrefixesThroughOverflowedLevels) {
  for (uint32_t n : {126u, 127u, 128u, 254u, 255u, 300u}) {
    std::string parent = ChildId(n);
    std::string child = parent + ChildId(1);
    std::string grandchild = child + ChildId(200);
    ASSERT_TRUE(IsValidAbsolute(child)) << n;
    ASSERT_TRUE(IsValidAbsolute(grandchild)) << n;
    EXPECT_TRUE(IsAncestor(parent, child)) << n;
    EXPECT_TRUE(IsAncestor(parent, grandchild)) << n;
    EXPECT_TRUE(IsAncestor(child, grandchild)) << n;
    EXPECT_FALSE(IsAncestor(ChildId(n + 1), child)) << n;
    EXPECT_LT(Compare(parent, child), 0) << n;
    EXPECT_LT(Compare(grandchild, ChildId(n + 1)), 0) << n;
  }
}

// The same shapes, end to end: pack a document, feed the NodeID B+tree
// index, and verify every node resolves and the interval entries are sane.
struct IndexSweepParam {
  const char* label;
  uint32_t depth;    // nesting levels (GenRecursiveXml)
  uint32_t fanout;   // siblings per level; > 126 forces ID extension
  size_t budget;     // record budget — small values force many records
};

void PrintTo(const IndexSweepParam& p, std::ostream* os) { *os << p.label; }

class NodeIdIndexSweep : public ::testing::TestWithParam<IndexSweepParam> {};

TEST_P(NodeIdIndexSweep, EveryNodeResolvesAndIntervalsAreOrdered) {
  const IndexSweepParam& p = GetParam();
  std::string xml = workload::GenRecursiveXml(p.depth, p.fanout);

  TableSpaceOptions opts;
  opts.in_memory = true;
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), 512);
  RecordManager records(&bm);
  auto tree = BTree::Create(&bm).MoveValue();
  NodeIdIndex index(tree.get());

  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
  RecordBuilderOptions rb;
  rb.record_budget = p.budget;
  RecordBuilder builder(rb);
  std::vector<Rid> inserted;
  ASSERT_TRUE(builder
                  .Build(tokens.data(),
                         [&](PackedRecordOut&& rec) -> Status {
                           XDB_ASSIGN_OR_RETURN(Rid rid,
                                                records.Insert(rec.bytes));
                           XDB_RETURN_NOT_OK(
                               index.AddRecord(1, rec.bytes, rid));
                           inserted.push_back(rid);
                           return Status::OK();
                         })
                  .ok());
  ASSERT_GT(inserted.size(), 1u) << "budget did not force a split";

  // Walk the stored document; every node's ID must be valid, resolvable,
  // and in strictly increasing document order, with every ancestor also
  // resolvable (containment holds level by level).
  StoredDocSource source(&records, &index, 1);
  XmlEvent ev;
  std::string prev;
  uint32_t nodes = 0;
  int max_depth = 0;
  for (;;) {
    auto more = source.Next(&ev);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    if (ev.type == XmlEvent::Type::kEndElement ||
        ev.type == XmlEvent::Type::kStartDocument ||
        ev.type == XmlEvent::Type::kEndDocument)
      continue;
    std::string id = ev.node_id.ToString();
    ASSERT_TRUE(IsValidAbsolute(id)) << ToString(id);
    if (!prev.empty()) {
      ASSERT_LT(Compare(prev, id), 0)
          << ToString(prev) << " !< " << ToString(id);
    }
    prev = id;
    max_depth = std::max(max_depth, Depth(id).value());
    ASSERT_TRUE(index.Lookup(1, id).ok()) << ToString(id);
    for (auto par = Parent(id); par.ok() && !par.value().empty();
         par = Parent(par.value())) {
      ASSERT_TRUE(IsAncestor(par.value(), id));
      ASSERT_TRUE(index.Lookup(1, par.value()).ok()) << ToString(par.value());
    }
    nodes++;
  }
  EXPECT_GE(max_depth, static_cast<int>(p.depth));
  EXPECT_GT(nodes, p.depth * p.fanout);

  // Interval entries: upper end points strictly increasing, and the distinct
  // RIDs cover exactly the records we inserted.
  std::vector<std::pair<std::string, Rid>> entries;
  ASSERT_TRUE(index.ListDocEntries(1, &entries).ok());
  ASSERT_GE(entries.size(), inserted.size());
  for (size_t i = 1; i < entries.size(); i++) {
    EXPECT_LT(Compare(entries[i - 1].first, entries[i].first), 0) << i;
  }
  std::vector<Rid> listed;
  ASSERT_TRUE(index.ListDocRecords(1, &listed).ok());
  std::set<std::pair<PageId, uint16_t>> want, got;
  for (const Rid& r : inserted) want.insert({r.page_id, r.slot});
  for (const Rid& r : listed) got.insert({r.page_id, r.slot});
  EXPECT_EQ(got, want);

  // Past-the-end IDs miss cleanly instead of resolving to a neighbour.
  EXPECT_FALSE(index.Lookup(1, ChildId(2000)).ok());
  EXPECT_FALSE(index.Lookup(2, ChildId(1)).ok());  // other doc untouched
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NodeIdIndexSweep,
    ::testing::Values(
        IndexSweepParam{"DeepChain", 48, 1, 96},
        IndexSweepParam{"DeepModeratelyWide", 16, 4, 128},
        IndexSweepParam{"SiblingOverflow", 2, 150, 512},
        IndexSweepParam{"OverflowTinyRecords", 2, 140, 64},
        IndexSweepParam{"DeepAndOverflowed", 6, 130, 256}),
    [](const ::testing::TestParamInfo<IndexSweepParam>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace nodeid
}  // namespace xdb
