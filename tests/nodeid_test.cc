// Tests for prefix-encoded node IDs: validity, document order, ancestor
// testing, and — the load-bearing property — Between() always finding room.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "xml/node_id.h"

namespace xdb {
namespace nodeid {
namespace {

TEST(NodeIdTest, ChildIdsAreSingleEvenBytes) {
  EXPECT_EQ(ChildId(1), std::string(1, char(0x02)));
  EXPECT_EQ(ChildId(2), std::string(1, char(0x04)));
  EXPECT_EQ(ChildId(126), std::string(1, char(0xFC)));
}

TEST(NodeIdTest, ChildIdsExtendPast126) {
  std::string id127 = ChildId(127);
  EXPECT_GT(id127.size(), 1u);
  EXPECT_TRUE(IsValidRelative(id127));
  // Order holds across the extension boundary.
  EXPECT_LT(Slice(ChildId(126)).Compare(Slice(id127)), 0);
  EXPECT_LT(Slice(id127).Compare(Slice(ChildId(128))), 0);
  EXPECT_LT(Slice(ChildId(200)).Compare(Slice(ChildId(300))), 0);
}

TEST(NodeIdTest, SiblingOrderIsStrictlyIncreasing) {
  std::string prev;
  for (uint32_t n = 1; n <= 1000; n++) {
    std::string id = ChildId(n);
    EXPECT_TRUE(IsValidRelative(id)) << n;
    if (!prev.empty()) {
      EXPECT_LT(Slice(prev).Compare(Slice(id)), 0) << n;
    }
    prev = id;
  }
}

TEST(NodeIdTest, Validity) {
  EXPECT_TRUE(IsValidRelative(std::string(1, 0x02)));
  EXPECT_TRUE(IsValidRelative(std::string{char(0x03), char(0x02)}));
  EXPECT_FALSE(IsValidRelative(""));
  EXPECT_FALSE(IsValidRelative(std::string(1, 0x03)));          // ends odd
  EXPECT_FALSE(IsValidRelative(std::string{char(0x02), char(0x04)}));  // 2 levels
  EXPECT_TRUE(IsValidAbsolute(""));  // the implicit root
  EXPECT_TRUE(IsValidAbsolute(std::string{char(0x02), char(0x04)}));
  EXPECT_FALSE(IsValidAbsolute(std::string{char(0x02), char(0x03)}));
}

TEST(NodeIdTest, SplitLevelsAndDepth) {
  // 02 | 03 04 | 06
  std::string abs{char(0x02), char(0x03), char(0x04), char(0x06)};
  std::vector<Slice> levels;
  ASSERT_TRUE(SplitLevels(abs, &levels).ok());
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].size(), 1u);
  EXPECT_EQ(levels[1].size(), 2u);
  EXPECT_EQ(levels[2].size(), 1u);
  EXPECT_EQ(Depth(abs).value(), 3);
  EXPECT_EQ(Depth("").value(), 0);
}

TEST(NodeIdTest, Parent) {
  std::string abs{char(0x02), char(0x03), char(0x04), char(0x06)};
  Slice p = Parent(abs).value();
  EXPECT_EQ(p.size(), 3u);  // strips the final single-byte level
  Slice pp = Parent(p).value();
  EXPECT_EQ(pp.size(), 1u);  // strips the two-byte level
  Slice root = Parent(pp).value();
  EXPECT_TRUE(root.empty());
  EXPECT_FALSE(Parent(Slice()).ok());
}

TEST(NodeIdTest, AncestorIsProperPrefix) {
  std::string a{char(0x02)};
  std::string d{char(0x02), char(0x04)};
  EXPECT_TRUE(IsAncestor(a, d));
  EXPECT_FALSE(IsAncestor(d, a));
  EXPECT_FALSE(IsAncestor(a, a));
  EXPECT_TRUE(IsAncestor(Slice(), a));  // root is everyone's ancestor
}

TEST(NodeIdTest, DocumentOrderPutsAncestorsFirst) {
  std::string parent{char(0x04)};
  std::string child{char(0x04), char(0x02)};
  std::string next_sibling{char(0x06)};
  EXPECT_LT(Compare(parent, child), 0);
  EXPECT_LT(Compare(child, next_sibling), 0);
}

TEST(BetweenTest, BasicCases) {
  std::string mid;
  // First child ever.
  ASSERT_TRUE(Between(Slice(), Slice(), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));

  // After last.
  std::string left = ChildId(3);
  ASSERT_TRUE(Between(left, Slice(), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(left).Compare(Slice(mid)), 0);

  // Before first.
  std::string right = ChildId(1);  // 0x02
  ASSERT_TRUE(Between(Slice(), right, &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(mid).Compare(Slice(right)), 0);

  // Between adjacent single bytes: 02 < mid < 04.
  ASSERT_TRUE(Between(ChildId(1), ChildId(2), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(ChildId(1)).Compare(Slice(mid)), 0);
  EXPECT_LT(Slice(mid).Compare(Slice(ChildId(2))), 0);
}

TEST(BetweenTest, AfterLastAtByteCeiling) {
  std::string left(1, char(0xFE));
  std::string mid;
  ASSERT_TRUE(Between(left, Slice(), &mid).ok());
  EXPECT_TRUE(IsValidRelative(mid));
  EXPECT_LT(Slice(left).Compare(Slice(mid)), 0);
}

// The property the paper claims: "there is always space for insertion in the
// middle by extending the node ID length when necessary." Repeatedly insert
// at random gaps and verify validity + strict order every time.
TEST(BetweenTest, PropertyRandomInsertionsStaySorted) {
  for (uint64_t seed = 1; seed <= 5; seed++) {
    Random rng(seed);
    std::vector<std::string> ids = {ChildId(1), ChildId(2), ChildId(3)};
    for (int iter = 0; iter < 400; iter++) {
      size_t gap = rng.Uniform(ids.size() + 1);
      Slice left = gap == 0 ? Slice() : Slice(ids[gap - 1]);
      Slice right = gap == ids.size() ? Slice() : Slice(ids[gap]);
      std::string mid;
      Status st = Between(left, right, &mid);
      ASSERT_TRUE(st.ok()) << st.ToString() << " at iter " << iter;
      ASSERT_TRUE(IsValidRelative(mid)) << ToString(mid);
      if (!left.empty()) {
        ASSERT_LT(left.Compare(Slice(mid)), 0);
      }
      if (!right.empty()) {
        ASSERT_LT(Slice(mid).Compare(right), 0);
      }
      ids.insert(ids.begin() + gap, mid);
    }
    ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end(),
                               [](const std::string& a, const std::string& b) {
                                 return Slice(a).Compare(Slice(b)) < 0;
                               }));
    // All distinct.
    std::set<std::string> uniq(ids.begin(), ids.end());
    EXPECT_EQ(uniq.size(), ids.size());
  }
}

// Left-edge hammering: keep inserting before the first sibling; the encoding
// extends instead of running out (until the absolute floor).
TEST(BetweenTest, RepeatedInsertBeforeFirstExtends) {
  std::string right = ChildId(1);
  for (int i = 0; i < 100; i++) {
    std::string mid;
    Status st = Between(Slice(), right, &mid);
    ASSERT_TRUE(st.ok()) << "iteration " << i << ": " << st.ToString();
    ASSERT_TRUE(IsValidRelative(mid));
    ASSERT_LT(Slice(mid).Compare(Slice(right)), 0);
    right = mid;
  }
}

TEST(BetweenTest, RepeatedInsertBetweenAdjacentExtends) {
  std::string left = ChildId(1), right = ChildId(2);
  for (int i = 0; i < 100; i++) {
    std::string mid;
    ASSERT_TRUE(Between(left, right, &mid).ok()) << i;
    ASSERT_TRUE(IsValidRelative(mid));
    ASSERT_LT(Slice(left).Compare(Slice(mid)), 0) << i;
    ASSERT_LT(Slice(mid).Compare(Slice(right)), 0) << i;
    // Alternate narrowing from both sides.
    if (i % 2 == 0) left = mid; else right = mid;
  }
}

TEST(NodeIdTest, ToStringRendersLevels) {
  std::string abs{char(0x02), char(0x04)};
  EXPECT_EQ(ToString(abs), "02.04");
  EXPECT_EQ(ToString(Slice()), "00");
}

}  // namespace
}  // namespace nodeid
}  // namespace xdb
