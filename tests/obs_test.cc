// Observability building blocks: metrics registry (counters, gauges,
// histograms, collectors, serializers) and the lock-free event log.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/debug_snapshot.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/wait_state.h"

namespace xdb {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; i++) c.Add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Add(5);
  EXPECT_EQ(g.value(), 12);
}

TEST(HistogramTest, BucketsAndStats) {
  Histogram h(std::vector<uint64_t>{1, 2, 4, 8});
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);   // lands in the <=4 bucket
  h.Observe(100);  // overflow bucket
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.sum, 106u);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 100u);
  ASSERT_EQ(d.counts.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(d.counts[0], 1u);      // <=1
  EXPECT_EQ(d.counts[1], 1u);      // <=2
  EXPECT_EQ(d.counts[2], 1u);      // <=4
  EXPECT_EQ(d.counts[3], 0u);      // <=8
  EXPECT_EQ(d.counts[4], 1u);      // overflow
}

TEST(HistogramTest, QuantilesFromBuckets) {
  Histogram h(Histogram::ExponentialBounds(1, 10));  // 1..512
  for (int i = 0; i < 90; i++) h.Observe(3);         // <=4 bucket
  for (int i = 0; i < 10; i++) h.Observe(100);       // <=128 bucket
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.Quantile(0.5), 4u);
  EXPECT_EQ(d.Quantile(0.99), 100u);  // clamped by max within the bucket
  EXPECT_EQ(d.Quantile(0.0), 4u);     // bucket upper-edge estimate
  EXPECT_EQ(HistogramData{}.Quantile(0.5), 0u);
}

TEST(HistogramTest, ConcurrentObservationsLoseNothing) {
  Histogram h(Histogram::LatencyBoundsUs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; i++)
        h.Observe(static_cast<uint64_t>(t * 37 + i % 1000));
    });
  for (auto& th : threads) th.join();
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : d.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, d.count);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 7u * 37 + 999);
}

TEST(HistogramTest, ExponentialBoundsDouble) {
  std::vector<uint64_t> b = Histogram::ExponentialBounds(1, 4);
  EXPECT_EQ(b, (std::vector<uint64_t>{1, 2, 4, 8}));
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.AddCounter("x.count");
  Counter* b = reg.AddCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  Gauge* g1 = reg.AddGauge("x.level");
  Gauge* g2 = reg.AddGauge("x.level");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.AddHistogram("x.lat_us", Histogram::LatencyBoundsUs());
  Histogram* h2 = reg.AddHistogram("x.lat_us", Histogram::LatencyBoundsUs());
  EXPECT_EQ(h1, h2);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("x.count"), 3u);
}

TEST(RegistryTest, SnapshotSortedAndCollectorsRun) {
  MetricsRegistry reg;
  reg.AddCounter("b.count")->Add(2);
  reg.AddGauge("c.level")->Set(9);
  reg.AddCollector([](std::vector<Metric>* out) {
    Metric m;
    m.name = "a.collected";
    m.kind = MetricKind::kCounter;
    m.value = 7;
    out->push_back(std::move(m));
  });
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.collected");
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  EXPECT_EQ(snap.metrics[2].name, "c.level");
  EXPECT_EQ(snap.Value("a.collected"), 7u);
  EXPECT_EQ(snap.Value("missing.metric"), 0u);
  EXPECT_EQ(snap.Find("missing.metric"), nullptr);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.AddCounter("buffer.hits")->Add(123);
  reg.AddGauge("engine.collections")->Set(2);
  Histogram* h =
      reg.AddHistogram("query.latency_us", Histogram::ExponentialBounds(1, 6));
  h->Observe(3);
  h->Observe(17);
  h->Observe(1000);
  MetricsSnapshot snap = reg.Snapshot();

  std::string json = snap.ToJson();
  auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MetricsSnapshot& back = parsed.value();
  ASSERT_EQ(back.metrics.size(), snap.metrics.size());
  for (size_t i = 0; i < snap.metrics.size(); i++) {
    EXPECT_EQ(back.metrics[i].name, snap.metrics[i].name);
    EXPECT_EQ(back.metrics[i].kind, snap.metrics[i].kind);
    EXPECT_EQ(back.metrics[i].value, snap.metrics[i].value);
    EXPECT_EQ(back.metrics[i].hist, snap.metrics[i].hist);
  }
  // Serialization is deterministic.
  EXPECT_EQ(back.ToJson(), json);
}

TEST(SnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"x\": [1,2}").ok());
}

TEST(SnapshotTest, ToTextMentionsEveryMetric) {
  MetricsRegistry reg;
  reg.AddCounter("wal.commits")->Add(5);
  Histogram* h = reg.AddHistogram("wal.group_commit.batch_size",
                                  Histogram::ExponentialBounds(1, 9));
  h->Observe(4);
  std::string text = reg.Snapshot().ToText();
  EXPECT_NE(text.find("wal.commits"), std::string::npos);
  EXPECT_NE(text.find("wal.group_commit.batch_size"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(EventLogTest, EmitAndRecentInOrder) {
  EventLog log(16);
  log.Emit(EventKind::kCheckpointBegin, 1, 0, "checkpoint");
  log.Emit(EventKind::kCheckpointEnd, 1, 0, "checkpoint done");
  std::vector<Event> events = log.Recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, EventKind::kCheckpointBegin);
  EXPECT_EQ(events[0].arg0, 1u);
  EXPECT_EQ(events[0].message, "checkpoint");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].kind, EventKind::kCheckpointEnd);
  EXPECT_LE(events[0].timestamp_us, events[1].timestamp_us);
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.overwritten(), 0u);
  std::string s = events[0].ToString();
  EXPECT_NE(s.find("checkpoint.begin"), std::string::npos);
}

TEST(EventLogTest, OverflowKeepsNewestAndCounts) {
  EventLog log(8);  // capacity rounds to 8
  ASSERT_EQ(log.capacity(), 8u);
  for (uint64_t i = 0; i < 20; i++)
    log.Emit(EventKind::kIoRetry, i, 0, "retry " + std::to_string(i));
  std::vector<Event> events = log.Recent();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, contiguous, ending at the newest emit.
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].arg0, 12 + i);
    EXPECT_EQ(events[i].message, "retry " + std::to_string(12 + i));
  }
  EXPECT_EQ(log.emitted(), 20u);
  EXPECT_EQ(log.overwritten(), 12u);
  // `max` trims from the old end.
  std::vector<Event> last3 = log.Recent(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].seq, 17u);
}

TEST(EventLogTest, LongMessagesTruncate) {
  EventLog log(8);
  std::string big(500, 'x');
  log.Emit(EventKind::kScrubFinding, big);
  std::vector<Event> events = log.Recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].message, big.substr(0, EventLog::kMaxMessage));
}

TEST(EventLogTest, ConcurrentEmittersAndReaders) {
  EventLog log(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 10000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Event> events = log.Recent();
      // Whatever survives validation must be in strictly increasing seq
      // order with untorn payloads.
      for (size_t i = 1; i < events.size(); i++)
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      for (const Event& e : events) {
        ASSERT_EQ(e.kind, EventKind::kGroupCommitRound);
        ASSERT_EQ(e.message, "w");
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++)
    writers.emplace_back([&log] {
      for (int i = 0; i < kPerWriter; i++)
        log.Emit(EventKind::kGroupCommitRound, static_cast<uint64_t>(i), 0,
                 "w");
    });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(log.emitted(), static_cast<uint64_t>(kWriters) * kPerWriter);
}

// --- wait-state attribution (obs/wait_state.h) ---

TEST(WaitStateTest, NamesAreStableTokens) {
  EXPECT_STREQ(WaitStateName(WaitState::kBufferIo), "buffer_io");
  EXPECT_STREQ(WaitStateName(WaitState::kLockWait), "lock_wait");
  EXPECT_STREQ(WaitStateName(WaitState::kWalCommit), "wal_commit");
  EXPECT_STREQ(WaitStateName(WaitState::kLatch), "latch");
  EXPECT_STREQ(WaitStateName(WaitState::kFreshness), "freshness");
  EXPECT_STREQ(WaitStateName(WaitState::kIndexProbe), "index_probe");
  EXPECT_STREQ(WaitStateName(WaitState::kReplApply), "repl_apply");
}

TEST(WaitStateTest, SinkRegistersPerStateHistograms) {
  MetricsRegistry reg;
  WaitSink sink;
  sink.Register(&reg);
  for (size_t s = 0; s < kWaitStateCount; s++)
    ASSERT_NE(sink.histogram(static_cast<WaitState>(s)), nullptr);
  sink.Record(WaitState::kBufferIo, 123);
  MetricsSnapshot snap = reg.Snapshot();
  const Metric* m = snap.Find("wait.buffer_io.us");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->hist.count, 1u);
  EXPECT_EQ(m->hist.sum, 123u);
  // Every state has its histogram, present even when never recorded.
  for (size_t s = 0; s < kWaitStateCount; s++) {
    std::string name = std::string("wait.") +
                       WaitStateName(static_cast<WaitState>(s)) + ".us";
    EXPECT_NE(snap.Find(name), nullptr) << name;
  }
}

TEST(WaitStateTest, SpanRecordsIntoSinkAndScope) {
  MetricsRegistry reg;
  WaitSink sink;
  sink.Register(&reg);
  WaitStats stats;
  {
    QueryWaitScope scope(&stats);
    WaitSpan span(&sink, WaitState::kLatch);
    span.Finish();
    // Idempotent: a second Finish (and the destructor) records nothing.
    EXPECT_EQ(span.Finish(), 0u);
  }
  EXPECT_EQ(stats.Count(WaitState::kLatch), 1u);
  EXPECT_EQ(sink.histogram(WaitState::kLatch)->Snapshot().count, 1u);
  EXPECT_EQ(stats.Count(WaitState::kBufferIo), 0u);
}

TEST(WaitStateTest, SpanWithoutTargetsNeverArms) {
  // No sink, no scope: Finish reports 0 elapsed (the span never read the
  // clock at all).
  WaitSpan span(nullptr, WaitState::kLockWait);
  EXPECT_EQ(span.Finish(), 0u);
}

TEST(WaitStateTest, KillSwitchDisablesSpans) {
  WaitStats stats;
  SetWaitAccountingEnabled(false);
  {
    QueryWaitScope scope(&stats);
    WaitSpan span(nullptr, WaitState::kLatch);
    span.Finish();
  }
  SetWaitAccountingEnabled(true);
  EXPECT_EQ(stats.Count(WaitState::kLatch), 0u);
  {
    QueryWaitScope scope(&stats);
    WaitSpan span(nullptr, WaitState::kLatch);
    span.Finish();
  }
  EXPECT_EQ(stats.Count(WaitState::kLatch), 1u);
}

TEST(WaitStateTest, ScopeNestsAndRestores) {
  EXPECT_EQ(QueryWaitScope::current(), nullptr);
  WaitStats outer, inner;
  {
    QueryWaitScope a(&outer);
    EXPECT_EQ(QueryWaitScope::current(), &outer);
    {
      QueryWaitScope b(&inner);
      EXPECT_EQ(QueryWaitScope::current(), &inner);
    }
    EXPECT_EQ(QueryWaitScope::current(), &outer);
  }
  EXPECT_EQ(QueryWaitScope::current(), nullptr);
}

TEST(WaitStateTest, ConcurrentSpansAccumulate) {
  // Many threads share one query's WaitStats (the ParallelFor chunk
  // pattern) while also feeding the engine-wide sink.
  MetricsRegistry reg;
  WaitSink sink;
  sink.Register(&reg);
  WaitStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&] {
      QueryWaitScope scope(&stats);
      for (int i = 0; i < kPerThread; i++) {
        WaitSpan span(&sink, WaitState::kIndexProbe);
        span.Finish();
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.Count(WaitState::kIndexProbe),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.histogram(WaitState::kIndexProbe)->Snapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- slow-query ring (obs/slow_query_log.h) ---

SlowQueryRecord MakeSlowRecord(uint64_t v) {
  SlowQueryRecord rec;
  rec.timestamp_us = 1700000000000000ull + v;
  rec.wall_us = v;
  rec.results = v * 3 + 1;
  rec.parallelism = v % 8 + 1;
  rec.collection = "c" + std::to_string(v % 10);
  rec.query = "//item[@id=" + std::to_string(v) + "]";
  rec.access_method = "docid-list";
  for (size_t s = 0; s < kWaitStateCount; s++) {
    rec.wait_us[s] = v + s;
    rec.wait_count[s] = s + 1;
  }
  return rec;
}

void CheckSlowRecord(const SlowQueryRecord& rec) {
  const uint64_t v = rec.wall_us;
  ASSERT_EQ(rec.timestamp_us, 1700000000000000ull + v);
  ASSERT_EQ(rec.results, v * 3 + 1);
  ASSERT_EQ(rec.parallelism, v % 8 + 1);
  ASSERT_EQ(rec.collection, "c" + std::to_string(v % 10));
  ASSERT_EQ(rec.query, "//item[@id=" + std::to_string(v) + "]");
  ASSERT_EQ(rec.access_method, "docid-list");
  for (size_t s = 0; s < kWaitStateCount; s++) {
    ASSERT_EQ(rec.wait_us[s], v + s);
    ASSERT_EQ(rec.wait_count[s], s + 1);
  }
}

TEST(SlowQueryLogTest, RecordAndRecentInOrder) {
  SlowQueryLog log(16);
  log.Record(MakeSlowRecord(7));
  log.Record(MakeSlowRecord(8));
  std::vector<SlowQueryRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].seq, 0u);
  EXPECT_EQ(recent[1].seq, 1u);
  CheckSlowRecord(recent[0]);
  CheckSlowRecord(recent[1]);
  EXPECT_EQ(recent[0].wall_us, 7u);
  EXPECT_EQ(recent[1].wall_us, 8u);
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.overwritten(), 0u);
  // TotalWaitUs sums the per-state totals.
  uint64_t want = 0;
  for (size_t s = 0; s < kWaitStateCount; s++) want += 7 + s;
  EXPECT_EQ(recent[0].TotalWaitUs(), want);
  std::string line = recent[0].ToString();
  EXPECT_NE(line.find("seq=0"), std::string::npos);
  EXPECT_NE(line.find("wall=7us"), std::string::npos);
  EXPECT_NE(line.find("coll=c7"), std::string::npos);
  EXPECT_NE(line.find("buffer_io=7us/1"), std::string::npos);
  EXPECT_NE(line.find("q=//item[@id=7]"), std::string::npos);
}

TEST(SlowQueryLogTest, TruncatesLongStrings) {
  SlowQueryLog log(8);
  SlowQueryRecord rec;
  rec.query = std::string(500, 'q');
  rec.collection = std::string(100, 'c');
  rec.access_method = std::string(100, 'm');
  log.Record(rec);
  std::vector<SlowQueryRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].query, std::string(SlowQueryLog::kMaxQuery, 'q'));
  EXPECT_EQ(recent[0].collection,
            std::string(SlowQueryLog::kMaxCollection, 'c'));
  EXPECT_EQ(recent[0].access_method,
            std::string(SlowQueryLog::kMaxAccessMethod, 'm'));
}

TEST(SlowQueryLogTest, OverflowKeepsNewestAndCounts) {
  SlowQueryLog log(8);
  ASSERT_EQ(log.capacity(), 8u);
  for (uint64_t i = 0; i < 20; i++) log.Record(MakeSlowRecord(i));
  std::vector<SlowQueryRecord> recent = log.Recent();
  ASSERT_EQ(recent.size(), 8u);
  for (size_t i = 0; i < recent.size(); i++) {
    EXPECT_EQ(recent[i].seq, 12 + i);
    EXPECT_EQ(recent[i].wall_us, 12 + i);
  }
  EXPECT_EQ(log.recorded(), 20u);
  EXPECT_EQ(log.overwritten(), 12u);
  std::vector<SlowQueryRecord> last3 = log.Recent(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].seq, 17u);
}

TEST(SlowQueryLogTest, ConcurrentRecordersAndReaders) {
  // The storm the seqlock protocol must survive: concurrent writers wrap
  // the ring under a reader that validates every surviving record's fields
  // are internally consistent (a torn slot would mix two writers' values —
  // MakeSlowRecord derives every field from wall_us, so CheckSlowRecord
  // catches any mixture).
  SlowQueryLog log(32);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 8000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<SlowQueryRecord> recs = log.Recent();
      for (size_t i = 1; i < recs.size(); i++)
        ASSERT_LT(recs[i - 1].seq, recs[i].seq);
      for (const SlowQueryRecord& r : recs) CheckSlowRecord(r);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++)
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; i++)
        log.Record(MakeSlowRecord(static_cast<uint64_t>(w * kPerWriter + i)));
    });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(log.recorded(), static_cast<uint64_t>(kWriters) * kPerWriter);
  // Bounded memory: the ring never grows; everything pushed out is counted.
  EXPECT_EQ(log.overwritten(),
            static_cast<uint64_t>(kWriters) * kPerWriter - log.capacity());
}

// --- ToText unit/empty rendering (the PR's audit) ---

TEST(SnapshotTest, ToTextRendersUnitsAndEmptyHistograms) {
  MetricsRegistry reg;
  Histogram* lat = reg.AddHistogram("query.latency_us",
                                    Histogram::ExponentialBounds(1, 4));
  lat->Observe(3);
  reg.AddHistogram("wait.freshness.us", Histogram::ExponentialBounds(1, 4));
  reg.AddHistogram("wal.group_commit.batch_size",
                   Histogram::ExponentialBounds(1, 4));
  reg.AddCounter("io.read_bytes")->Add(4096);
  std::string text = reg.Snapshot().ToText();
  // Microsecond histograms carry the unit on values and bucket bounds.
  EXPECT_NE(text.find("min=3us"), std::string::npos) << text;
  EXPECT_NE(text.find("buckets=4x[1us..8us]"), std::string::npos) << text;
  // Empty histograms render '-' for the undefined stats, never the
  // UINT64_MAX/0 sentinels.
  EXPECT_NE(text.find("count=0 avg=- p50=- p99=- min=- max=-"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("18446744073709551615"), std::string::npos) << text;
  // Unitless histograms (a batch size is a count) get bare numbers.
  EXPECT_NE(text.find("buckets=4x[1..8]"), std::string::npos) << text;
  // _bytes counters carry their unit too.
  EXPECT_NE(text.find("4096bytes"), std::string::npos) << text;
}

// --- DebugSnapshot (obs/debug_snapshot.h) ---

DebugSnapshot MakeDebugSnapshot() {
  DebugSnapshot snap;
  snap.captured_at_us = 1700000000000000ull;
  snap.role = "replica";
  snap.applied_csn = 4242;
  snap.wal_size = 9001;
  snap.wal_durable_upto = 8000;
  DebugSnapshot::CollectionInfo c;
  c.name = "catalog";
  c.doc_count = 48;
  c.node_count = 5000;
  c.stats_epoch = 97;
  c.stats_valid = true;
  c.buffer_resident = 61;
  c.buffer_capacity = 64;
  c.buffer_hits = 1234;
  c.buffer_misses = 65;
  snap.collections.push_back(c);
  MetricsRegistry reg;
  reg.AddCounter("buffer.hits")->Add(1234);
  Histogram* h =
      reg.AddHistogram("wait.latch.us", Histogram::ExponentialBounds(1, 6));
  h->Observe(12);
  snap.metrics = reg.Snapshot();
  EventLog events(8);
  events.Emit(EventKind::kCheckpointBegin, 1, 0, "checkpoint");
  snap.events = events.Recent();
  SlowQueryLog slow(8);
  slow.Record(MakeSlowRecord(12000));
  snap.slow_queries = slow.Recent();
  return snap;
}

TEST(DebugSnapshotTest, JsonRoundTripDeterministic) {
  DebugSnapshot snap = MakeDebugSnapshot();
  std::string json = snap.ToJson();
  auto parsed = DebugSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const DebugSnapshot& back = parsed.value();
  EXPECT_EQ(back.captured_at_us, snap.captured_at_us);
  EXPECT_EQ(back.role, snap.role);
  EXPECT_EQ(back.applied_csn, snap.applied_csn);
  EXPECT_EQ(back.wal_size, snap.wal_size);
  EXPECT_EQ(back.wal_durable_upto, snap.wal_durable_upto);
  ASSERT_EQ(back.collections.size(), 1u);
  EXPECT_EQ(back.collections[0], snap.collections[0]);
  ASSERT_EQ(back.metrics.metrics.size(), snap.metrics.metrics.size());
  ASSERT_EQ(back.events.size(), 1u);
  EXPECT_EQ(back.events[0].message, "checkpoint");
  ASSERT_EQ(back.slow_queries.size(), 1u);
  CheckSlowRecord(back.slow_queries[0]);
  // The round-trip contract the CI schema smoke-test pins:
  // FromJson(ToJson(s)).ToJson() == ToJson(s), byte for byte.
  EXPECT_EQ(back.ToJson(), json);
}

TEST(DebugSnapshotTest, ToTextRendersSections) {
  DebugSnapshot snap = MakeDebugSnapshot();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("replica"), std::string::npos) << text;
  EXPECT_NE(text.find("catalog"), std::string::npos) << text;
  EXPECT_NE(text.find("wait"), std::string::npos) << text;
  EXPECT_NE(text.find("latch"), std::string::npos) << text;
  EXPECT_NE(text.find("slow queries"), std::string::npos) << text;
  EXPECT_NE(text.find("wall=12000us"), std::string::npos) << text;
  EXPECT_NE(text.find("checkpoint"), std::string::npos) << text;
}

TEST(DebugSnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(DebugSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(DebugSnapshot::FromJson("{\"role\": \"primary\"").ok());
  EXPECT_FALSE(DebugSnapshot::FromJson("").ok());
}

}  // namespace
}  // namespace obs
}  // namespace xdb
