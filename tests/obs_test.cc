// Observability building blocks: metrics registry (counters, gauges,
// histograms, collectors, serializers) and the lock-free event log.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace xdb {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; i++) c.Add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Add(5);
  EXPECT_EQ(g.value(), 12);
}

TEST(HistogramTest, BucketsAndStats) {
  Histogram h(std::vector<uint64_t>{1, 2, 4, 8});
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);   // lands in the <=4 bucket
  h.Observe(100);  // overflow bucket
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.sum, 106u);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, 100u);
  ASSERT_EQ(d.counts.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(d.counts[0], 1u);      // <=1
  EXPECT_EQ(d.counts[1], 1u);      // <=2
  EXPECT_EQ(d.counts[2], 1u);      // <=4
  EXPECT_EQ(d.counts[3], 0u);      // <=8
  EXPECT_EQ(d.counts[4], 1u);      // overflow
}

TEST(HistogramTest, QuantilesFromBuckets) {
  Histogram h(Histogram::ExponentialBounds(1, 10));  // 1..512
  for (int i = 0; i < 90; i++) h.Observe(3);         // <=4 bucket
  for (int i = 0; i < 10; i++) h.Observe(100);       // <=128 bucket
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.Quantile(0.5), 4u);
  EXPECT_EQ(d.Quantile(0.99), 100u);  // clamped by max within the bucket
  EXPECT_EQ(d.Quantile(0.0), 4u);     // bucket upper-edge estimate
  EXPECT_EQ(HistogramData{}.Quantile(0.5), 0u);
}

TEST(HistogramTest, ConcurrentObservationsLoseNothing) {
  Histogram h(Histogram::LatencyBoundsUs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; i++)
        h.Observe(static_cast<uint64_t>(t * 37 + i % 1000));
    });
  for (auto& th : threads) th.join();
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : d.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, d.count);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 7u * 37 + 999);
}

TEST(HistogramTest, ExponentialBoundsDouble) {
  std::vector<uint64_t> b = Histogram::ExponentialBounds(1, 4);
  EXPECT_EQ(b, (std::vector<uint64_t>{1, 2, 4, 8}));
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.AddCounter("x.count");
  Counter* b = reg.AddCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  Gauge* g1 = reg.AddGauge("x.level");
  Gauge* g2 = reg.AddGauge("x.level");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.AddHistogram("x.lat_us", Histogram::LatencyBoundsUs());
  Histogram* h2 = reg.AddHistogram("x.lat_us", Histogram::LatencyBoundsUs());
  EXPECT_EQ(h1, h2);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("x.count"), 3u);
}

TEST(RegistryTest, SnapshotSortedAndCollectorsRun) {
  MetricsRegistry reg;
  reg.AddCounter("b.count")->Add(2);
  reg.AddGauge("c.level")->Set(9);
  reg.AddCollector([](std::vector<Metric>* out) {
    Metric m;
    m.name = "a.collected";
    m.kind = MetricKind::kCounter;
    m.value = 7;
    out->push_back(std::move(m));
  });
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.collected");
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  EXPECT_EQ(snap.metrics[2].name, "c.level");
  EXPECT_EQ(snap.Value("a.collected"), 7u);
  EXPECT_EQ(snap.Value("missing.metric"), 0u);
  EXPECT_EQ(snap.Find("missing.metric"), nullptr);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.AddCounter("buffer.hits")->Add(123);
  reg.AddGauge("engine.collections")->Set(2);
  Histogram* h =
      reg.AddHistogram("query.latency_us", Histogram::ExponentialBounds(1, 6));
  h->Observe(3);
  h->Observe(17);
  h->Observe(1000);
  MetricsSnapshot snap = reg.Snapshot();

  std::string json = snap.ToJson();
  auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MetricsSnapshot& back = parsed.value();
  ASSERT_EQ(back.metrics.size(), snap.metrics.size());
  for (size_t i = 0; i < snap.metrics.size(); i++) {
    EXPECT_EQ(back.metrics[i].name, snap.metrics[i].name);
    EXPECT_EQ(back.metrics[i].kind, snap.metrics[i].kind);
    EXPECT_EQ(back.metrics[i].value, snap.metrics[i].value);
    EXPECT_EQ(back.metrics[i].hist, snap.metrics[i].hist);
  }
  // Serialization is deterministic.
  EXPECT_EQ(back.ToJson(), json);
}

TEST(SnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"x\": [1,2}").ok());
}

TEST(SnapshotTest, ToTextMentionsEveryMetric) {
  MetricsRegistry reg;
  reg.AddCounter("wal.commits")->Add(5);
  Histogram* h = reg.AddHistogram("wal.group_commit.batch_size",
                                  Histogram::ExponentialBounds(1, 9));
  h->Observe(4);
  std::string text = reg.Snapshot().ToText();
  EXPECT_NE(text.find("wal.commits"), std::string::npos);
  EXPECT_NE(text.find("wal.group_commit.batch_size"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(EventLogTest, EmitAndRecentInOrder) {
  EventLog log(16);
  log.Emit(EventKind::kCheckpointBegin, 1, 0, "checkpoint");
  log.Emit(EventKind::kCheckpointEnd, 1, 0, "checkpoint done");
  std::vector<Event> events = log.Recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, EventKind::kCheckpointBegin);
  EXPECT_EQ(events[0].arg0, 1u);
  EXPECT_EQ(events[0].message, "checkpoint");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].kind, EventKind::kCheckpointEnd);
  EXPECT_LE(events[0].timestamp_us, events[1].timestamp_us);
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.overwritten(), 0u);
  std::string s = events[0].ToString();
  EXPECT_NE(s.find("checkpoint.begin"), std::string::npos);
}

TEST(EventLogTest, OverflowKeepsNewestAndCounts) {
  EventLog log(8);  // capacity rounds to 8
  ASSERT_EQ(log.capacity(), 8u);
  for (uint64_t i = 0; i < 20; i++)
    log.Emit(EventKind::kIoRetry, i, 0, "retry " + std::to_string(i));
  std::vector<Event> events = log.Recent();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, contiguous, ending at the newest emit.
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].arg0, 12 + i);
    EXPECT_EQ(events[i].message, "retry " + std::to_string(12 + i));
  }
  EXPECT_EQ(log.emitted(), 20u);
  EXPECT_EQ(log.overwritten(), 12u);
  // `max` trims from the old end.
  std::vector<Event> last3 = log.Recent(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].seq, 17u);
}

TEST(EventLogTest, LongMessagesTruncate) {
  EventLog log(8);
  std::string big(500, 'x');
  log.Emit(EventKind::kScrubFinding, big);
  std::vector<Event> events = log.Recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].message, big.substr(0, EventLog::kMaxMessage));
}

TEST(EventLogTest, ConcurrentEmittersAndReaders) {
  EventLog log(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 10000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Event> events = log.Recent();
      // Whatever survives validation must be in strictly increasing seq
      // order with untorn payloads.
      for (size_t i = 1; i < events.size(); i++)
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      for (const Event& e : events) {
        ASSERT_EQ(e.kind, EventKind::kGroupCommitRound);
        ASSERT_EQ(e.message, "w");
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++)
    writers.emplace_back([&log] {
      for (int i = 0; i < kPerWriter; i++)
        log.Emit(EventKind::kGroupCommitRound, static_cast<uint64_t>(i), 0,
                 "w");
    });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(log.emitted(), static_cast<uint64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace obs
}  // namespace xdb
