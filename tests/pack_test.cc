// Tree-packing tests: record format, bottom-up building with proxies,
// NodeID intervals, cross-record traversal, point navigation, text
// replacement, and the shredded baseline.
#include <gtest/gtest.h>

#include "btree/btree.h"
#include "common/random.h"
#include "index/nodeid_index.h"
#include "pack/packed_record.h"
#include "pack/record_builder.h"
#include "pack/shredded_store.h"
#include "pack/tree_cursor.h"
#include "runtime/iterators.h"
#include "storage/buffer_manager.h"
#include "storage/record_manager.h"
#include "storage/tablespace.h"
#include "util/workload.h"
#include "xml/node_id.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xdb {
namespace {

// Shared harness: parse XML, pack, store, index.
class PackedDocFixture {
 public:
  explicit PackedDocFixture(size_t budget = 3000) {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 512);
    records_ = std::make_unique<RecordManager>(bm_.get());
    tree_ = BTree::Create(bm_.get()).MoveValue();
    index_ = std::make_unique<NodeIdIndex>(tree_.get());
    budget_ = budget;
  }

  Status Store(uint64_t doc_id, const std::string& xml) {
    Parser parser(&dict_);
    TokenWriter tokens;
    XDB_RETURN_NOT_OK(parser.Parse(xml, &tokens));
    original_tokens_[doc_id] = tokens.buffer();
    RecordBuilderOptions opts;
    opts.record_budget = budget_;
    RecordBuilder builder(opts);
    record_count_ = 0;
    return builder.Build(tokens.data(), [&](PackedRecordOut&& rec) -> Status {
      XDB_ASSIGN_OR_RETURN(Rid rid, records_->Insert(rec.bytes));
      XDB_RETURN_NOT_OK(index_->AddRecord(doc_id, rec.bytes, rid));
      record_count_++;
      return Status::OK();
    });
  }

  // Stored traversal -> token stream, for byte-exact comparison with the
  // original parse.
  Result<std::string> ReadBack(uint64_t doc_id) {
    StoredDocSource source(records_.get(), index_.get(), doc_id);
    TokenWriter out;
    XDB_RETURN_NOT_OK(EventsToTokens(&source, &out));
    return out.buffer();
  }

  NameDictionary dict_;
  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<RecordManager> records_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<NodeIdIndex> index_;
  std::map<uint64_t, std::string> original_tokens_;
  size_t budget_;
  int record_count_ = 0;
};

TEST(RecordBuilderTest, SmallDocumentIsOneRecord) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a><b>x</b><c y=\"1\"/></a>", &tokens).ok());
  auto records = PackDocument(tokens.data()).MoveValue();
  ASSERT_EQ(records.size(), 1u);
  // Root record: context is the document (empty id).
  RecordHeader header;
  Slice payload;
  ASSERT_TRUE(ParseRecordHeader(records[0].bytes, &header, &payload).ok());
  EXPECT_TRUE(header.context_node_id.empty());
  EXPECT_TRUE(header.root_path.empty());
  EXPECT_EQ(header.subtree_count, 1u);
  EXPECT_EQ(records[0].min_node_id, nodeid::ChildId(1));
  EXPECT_EQ(CountRecordNodes(records[0].bytes).value(), 5u);
}

TEST(RecordBuilderTest, BudgetForcesEviction) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  std::string xml = workload::GenWideXml(50, 100);
  ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
  RecordBuilderOptions opts;
  opts.record_budget = 600;
  auto records = PackDocument(tokens.data(), opts).MoveValue();
  EXPECT_GT(records.size(), 3u);
  // Total stored nodes across records == total nodes in the document
  // (proxies excluded, nothing lost, nothing duplicated).
  uint64_t total = 0;
  for (auto& rec : records) total += CountRecordNodes(rec.bytes).value();
  // root + 50 items, each with attribute + text.
  EXPECT_EQ(total, 1u + 50u * 3u);
  // The last record emitted is the root record (bottom-up order).
  RecordHeader header;
  Slice payload;
  ASSERT_TRUE(
      ParseRecordHeader(records.back().bytes, &header, &payload).ok());
  EXPECT_TRUE(header.context_node_id.empty());
}

TEST(RecordBuilderTest, EvictedRecordHeaderHasPathAndContext) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser
                  .Parse("<root><mid>" + std::string(500, 'x') +
                             "<leaf>deep</leaf></mid></root>",
                         &tokens)
                  .ok());
  RecordBuilderOptions opts;
  opts.record_budget = 100;
  auto records = PackDocument(tokens.data(), opts).MoveValue();
  ASSERT_GT(records.size(), 1u);
  // The first-emitted record was evicted from inside <mid>; its header
  // carries the root path and the context node's absolute id.
  RecordHeader header;
  Slice payload;
  ASSERT_TRUE(ParseRecordHeader(records[0].bytes, &header, &payload).ok());
  EXPECT_FALSE(header.context_node_id.empty());
  ASSERT_GE(header.root_path.size(), 1u);
  EXPECT_EQ(dict.Name(header.root_path[0].local).value(), "root");
}

TEST(NodeIdIntervalTest, PaperExampleShape) {
  // A record with structure elem(a)[ elem(b){...}, proxy, elem(c) ] yields
  // two intervals split at the proxy.
  std::string children;
  packfmt::AppendText(&children, nodeid::ChildId(1), TypeAnno::kUntyped, "x");
  packfmt::AppendProxy(&children, nodeid::ChildId(2));
  packfmt::AppendText(&children, nodeid::ChildId(3), TypeAnno::kUntyped, "y");
  std::string elem;
  packfmt::AppendElement(&elem, nodeid::ChildId(1), 1, 0, 0, 3, children);
  RecordHeader header;
  std::string record;
  AppendRecordHeader(header, &record);
  record += elem;

  std::vector<std::string> uppers;
  ASSERT_TRUE(ComputeNodeIdIntervals(record, &uppers).ok());
  ASSERT_EQ(uppers.size(), 2u);
  // First interval ends at the text node before the proxy.
  EXPECT_EQ(uppers[0], nodeid::ChildId(1) + nodeid::ChildId(1));
  // Second interval ends at the text node after the proxy.
  EXPECT_EQ(uppers[1], nodeid::ChildId(1) + nodeid::ChildId(3));
}

TEST(PackedRoundTripTest, SingleRecordDocuments) {
  PackedDocFixture fx;
  for (const char* xml :
       {"<a/>", "<a><b>one</b><b>two</b></a>",
        "<a x=\"1\" y=\"2\"><!-- c --><?pi d?>text</a>",
        "<ns:a xmlns:ns=\"urn:n\"><ns:b/></ns:a>"}) {
    static uint64_t doc = 1;
    ASSERT_TRUE(fx.Store(doc, xml).ok()) << xml;
    EXPECT_EQ(fx.ReadBack(doc).value(), fx.original_tokens_[doc]) << xml;
    doc++;
  }
}

TEST(PackedRoundTripTest, MultiRecordDocuments) {
  for (size_t budget : {64, 200, 700, 5000}) {
    PackedDocFixture fx(budget);
    Random rng(101);
    workload::CatalogOptions opts;
    opts.categories = 3;
    opts.products_per_category = 12;
    std::string xml = workload::GenCatalogXml(&rng, opts);
    ASSERT_TRUE(fx.Store(1, xml).ok());
    if (budget <= 200) {
      EXPECT_GT(fx.record_count_, 5) << budget;
    }
    EXPECT_EQ(fx.ReadBack(1).value(), fx.original_tokens_[1])
        << "budget " << budget;
  }
}

TEST(PackedRoundTripTest, RandomizedDocumentsAllBudgets) {
  Random rng(77);
  for (int iter = 0; iter < 25; iter++) {
    std::string xml = workload::GenRandomXml(&rng, 120);
    for (size_t budget : {48, 150, 1000}) {
      PackedDocFixture fx(budget);
      ASSERT_TRUE(fx.Store(1, xml).ok()) << xml;
      ASSERT_EQ(fx.ReadBack(1).value(), fx.original_tokens_[1])
          << "budget " << budget << " xml " << xml;
    }
  }
}

TEST(PackedRoundTripTest, DeepRecursiveDocument) {
  PackedDocFixture fx(128);
  std::string xml = workload::GenRecursiveXml(40, 2);
  ASSERT_TRUE(fx.Store(1, xml).ok());
  EXPECT_EQ(fx.ReadBack(1).value(), fx.original_tokens_[1]);
  EXPECT_GT(fx.record_count_, 2);
}

TEST(NodeIdIndexTest, LookupFindsContainingRecord) {
  PackedDocFixture fx(100);
  ASSERT_TRUE(fx.Store(7, workload::GenWideXml(30, 60)).ok());
  ASSERT_GT(fx.record_count_, 1);
  // Every node of the document must be resolvable.
  StoredDocSource source(fx.records_.get(), fx.index_.get(), 7);
  XmlEvent ev;
  int checked = 0;
  for (;;) {
    auto more = source.Next(&ev);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    if (ev.type == XmlEvent::Type::kEndElement ||
        ev.type == XmlEvent::Type::kStartDocument ||
        ev.type == XmlEvent::Type::kEndDocument)
      continue;
    std::string id = ev.node_id.ToString();
    auto rid = fx.index_->Lookup(7, id);
    ASSERT_TRUE(rid.ok()) << nodeid::ToString(id);
    // The record really contains the node.
    std::string rec;
    ASSERT_TRUE(fx.records_->Get(rid.value(), &rec).ok());
    RecordWalker walker((Slice(rec)));
    ASSERT_TRUE(walker.Init().ok());
    bool found = false;
    for (;;) {
      RecordWalker::Event rev;
      ASSERT_TRUE(walker.Next(&rev).ok());
      if (rev.type == RecordWalker::EventType::kDone) break;
      if (rev.type == RecordWalker::EventType::kStart &&
          rev.entry.kind != NodeKind::kProxy && rev.entry.abs_id == id) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << nodeid::ToString(id);
    checked++;
  }
  EXPECT_GT(checked, 60);
}

TEST(NodeIdIndexTest, MissingNodesReportNotFoundOrWrongDoc) {
  PackedDocFixture fx;
  ASSERT_TRUE(fx.Store(1, "<a><b/></a>").ok());
  // A node id beyond the document's last node.
  std::string huge(1, char(0xFC));
  EXPECT_FALSE(fx.index_->Lookup(1, huge).ok());
  // Unknown document.
  EXPECT_FALSE(fx.index_->Lookup(99, "").ok());
}

TEST(NavigatorTest, GetNodeFirstChildNextSibling) {
  PackedDocFixture fx;
  ASSERT_TRUE(
      fx.Store(1, "<a><b>one</b><c><d/><e/></c><f attr=\"v\"/></a>").ok());
  StoredTreeNavigator nav(fx.records_.get(), fx.index_.get(), 1);

  std::string root_elem = nav.FirstChildId("").value();  // <a>
  auto info = nav.GetNode(root_elem).value();
  EXPECT_EQ(info.kind, NodeKind::kElement);
  EXPECT_EQ(fx.dict_.Name(info.local).value(), "a");
  EXPECT_EQ(info.child_count, 3u);

  std::string b = nav.FirstChildId(root_elem).value();
  EXPECT_EQ(fx.dict_.Name(nav.GetNode(b).value().local).value(), "b");
  std::string c = nav.NextSiblingId(b).value();
  EXPECT_EQ(fx.dict_.Name(nav.GetNode(c).value().local).value(), "c");
  std::string f = nav.NextSiblingId(c).value();
  EXPECT_EQ(fx.dict_.Name(nav.GetNode(f).value().local).value(), "f");
  EXPECT_TRUE(nav.NextSiblingId(f).status().IsNotFound());

  // f's first child is its attribute node.
  std::string attr = nav.FirstChildId(f).value();
  auto attr_info = nav.GetNode(attr).value();
  EXPECT_EQ(attr_info.kind, NodeKind::kAttribute);
  EXPECT_EQ(attr_info.value, "v");
}

TEST(NavigatorTest, NextSiblingSkipsMultiRecordSubtree) {
  PackedDocFixture fx(80);  // tiny budget: subtrees span many records
  ASSERT_TRUE(fx.Store(1, "<a><big>" + workload::GenWideXml(20, 40) +
                              "</big><after>tail</after></a>")
                  .ok());
  ASSERT_GT(fx.record_count_, 3);
  StoredTreeNavigator nav(fx.records_.get(), fx.index_.get(), 1);
  std::string a = nav.FirstChildId("").value();
  std::string big = nav.FirstChildId(a).value();
  EXPECT_EQ(fx.dict_.Name(nav.GetNode(big).value().local).value(), "big");
  std::string after = nav.NextSiblingId(big).value();
  EXPECT_EQ(fx.dict_.Name(nav.GetNode(after).value().local).value(), "after");
  EXPECT_EQ(nav.StringValue(after).value(), "tail");
}

TEST(NavigatorTest, StringValueCrossesRecords) {
  PackedDocFixture fx(64);
  ASSERT_TRUE(fx.Store(1, "<a><p>one </p><p>two </p><p>three</p></a>").ok());
  StoredTreeNavigator nav(fx.records_.get(), fx.index_.get(), 1);
  std::string a = nav.FirstChildId("").value();
  EXPECT_EQ(nav.StringValue(a).value(), "one two three");
}

TEST(SubtreeSourceTest, StreamsOnlyTheSubtree) {
  PackedDocFixture fx;
  ASSERT_TRUE(fx.Store(1, "<a><b><x>1</x></b><c><y>2</y></c></a>").ok());
  StoredTreeNavigator nav(fx.records_.get(), fx.index_.get(), 1);
  std::string a = nav.FirstChildId("").value();
  std::string b = nav.FirstChildId(a).value();
  std::string c = nav.NextSiblingId(b).value();

  StoredDocSource source(fx.records_.get(), fx.index_.get(), 1,
                         c);  // just <c>
  std::vector<std::string> names;
  XmlEvent ev;
  for (;;) {
    auto more = source.Next(&ev);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    if (ev.type == XmlEvent::Type::kStartElement)
      names.push_back(fx.dict_.Name(ev.local).value());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"c", "y"}));
}

TEST(ReplaceTextValueTest, RewritesValueAndPreservesStructure) {
  PackedDocFixture fx;
  ASSERT_TRUE(fx.Store(1, "<a><b>old</b><c>keep</c></a>").ok());
  StoredTreeNavigator nav(fx.records_.get(), fx.index_.get(), 1);
  std::string a = nav.FirstChildId("").value();
  std::string b = nav.FirstChildId(a).value();
  std::string text = nav.FirstChildId(b).value();

  Rid rid = fx.index_->Lookup(1, text).value();
  std::string record;
  ASSERT_TRUE(fx.records_->Get(rid, &record).ok());
  std::string updated =
      ReplaceTextValue(record, text, "replacement value").MoveValue();
  ASSERT_TRUE(fx.records_->Update(rid, updated).ok());

  EXPECT_EQ(nav.StringValue(b).value(), "replacement value");
  std::string c = nav.NextSiblingId(b).value();
  EXPECT_EQ(nav.StringValue(c).value(), "keep");
  // Intervals are unchanged: same ids resolve to the same record.
  EXPECT_EQ(fx.index_->Lookup(1, text).value(), rid);
}

TEST(ReplaceTextValueTest, MissingNodeFails) {
  PackedDocFixture fx;
  ASSERT_TRUE(fx.Store(1, "<a>t</a>").ok());
  Rid rid = fx.index_->Lookup(1, "").value();
  std::string record;
  ASSERT_TRUE(fx.records_->Get(rid, &record).ok());
  std::string bogus_id = nodeid::ChildId(9) + nodeid::ChildId(9);
  EXPECT_TRUE(
      ReplaceTextValue(record, bogus_id, "x").status().IsNotFound());
}

TEST(RecordSurgeryTest, BuildSubtreeEntryShape) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<n a=\"1\"><m>text</m></n>", &tokens).ok());
  uint64_t nodes = 0;
  std::string rel = nodeid::ChildId(5);
  auto entry = BuildSubtreeEntry(tokens.data(), rel, &nodes);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  EXPECT_EQ(nodes, 4u);  // n, @a, m, text
  // Wrap in a record and walk it.
  RecordHeader header;
  header.subtree_count = 1;
  std::string record;
  AppendRecordHeader(header, &record);
  record += entry.value();
  RecordWalker walker((Slice(record)));
  ASSERT_TRUE(walker.Init().ok());
  RecordWalker::Event ev;
  ASSERT_TRUE(walker.Next(&ev).ok());
  EXPECT_EQ(ev.entry.kind, NodeKind::kElement);
  EXPECT_EQ(ev.entry.rel_id.ToString(), rel);
  EXPECT_EQ(ev.entry.child_count, 2u);
}

TEST(RecordSurgeryTest, InsertProxyAndRemoveEntry) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a><b/><d/></a>", &tokens).ok());
  auto records = PackDocument(tokens.data()).MoveValue();
  ASSERT_EQ(records.size(), 1u);
  std::string a_id = nodeid::ChildId(1);
  std::string b_id = a_id + nodeid::ChildId(1);
  std::string d_id = a_id + nodeid::ChildId(2);

  // Splice a proxy between b and d.
  std::string mid_rel;
  ASSERT_TRUE(nodeid::Between(nodeid::ChildId(1), nodeid::ChildId(2), &mid_rel)
                  .ok());
  auto patched = InsertProxyEntry(records[0].bytes, a_id, mid_rel);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  // Walk: a's child count is 3 and the proxy sits between b and d.
  std::vector<std::pair<NodeKind, std::string>> seen;
  RecordWalker walker((Slice(patched.value())));
  ASSERT_TRUE(walker.Init().ok());
  for (;;) {
    RecordWalker::Event ev;
    ASSERT_TRUE(walker.Next(&ev).ok());
    if (ev.type == RecordWalker::EventType::kDone) break;
    if (ev.type == RecordWalker::EventType::kStart)
      seen.emplace_back(ev.entry.kind, ev.entry.abs_id);
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].second, a_id);
  EXPECT_EQ(seen[1].second, b_id);
  EXPECT_EQ(seen[2].first, NodeKind::kProxy);
  EXPECT_EQ(seen[2].second, a_id + mid_rel);
  EXPECT_EQ(seen[3].second, d_id);

  // Interval computation now splits at the proxy.
  std::vector<std::string> uppers;
  ASSERT_TRUE(ComputeNodeIdIntervals(patched.value(), &uppers).ok());
  EXPECT_EQ(uppers.size(), 2u);

  // Remove <b>: count back to 2 (proxy still there).
  bool empty = false;
  auto removed = RemoveEntry(patched.value(), b_id, &empty);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_FALSE(empty);
  RecordWalker w2((Slice(removed.value())));
  ASSERT_TRUE(w2.Init().ok());
  RecordWalker::Event first;
  ASSERT_TRUE(w2.Next(&first).ok());
  EXPECT_EQ(first.entry.child_count, 2u);

  // Removing a non-existent node fails.
  EXPECT_TRUE(RemoveEntry(records[0].bytes, a_id + nodeid::ChildId(9), nullptr)
                  .status()
                  .IsNotFound());
}

TEST(RecordSurgeryTest, AppendAsLastChild) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a><b/></a>", &tokens).ok());
  auto records = PackDocument(tokens.data()).MoveValue();
  std::string a_id = nodeid::ChildId(1);
  std::string tail_rel = nodeid::ChildId(9);
  auto patched = InsertProxyEntry(records[0].bytes, a_id, tail_rel);
  ASSERT_TRUE(patched.ok());
  std::vector<std::string> ids;
  RecordWalker walker((Slice(patched.value())));
  ASSERT_TRUE(walker.Init().ok());
  for (;;) {
    RecordWalker::Event ev;
    ASSERT_TRUE(walker.Next(&ev).ok());
    if (ev.type == RecordWalker::EventType::kDone) break;
    if (ev.type == RecordWalker::EventType::kStart)
      ids.push_back(ev.entry.abs_id);
  }
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids.back(), a_id + tail_rel);
}

TEST(ShreddedStoreTest, RoundTripMatchesPacked) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), 512);
  RecordManager records(&bm);
  auto tree = BTree::Create(&bm).MoveValue();
  ShreddedStore store(&records, tree.get());

  NameDictionary dict;
  Parser parser(&dict);
  Random rng(55);
  std::string xml = workload::GenCatalogXml(&rng, {});
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
  uint64_t node_count = 0;
  ASSERT_TRUE(store.InsertDocument(3, tokens.data(), &node_count).ok());
  EXPECT_GT(node_count, 50u);
  // One record and one index entry per node.
  EXPECT_EQ(records.stats().inserts, node_count);
  EXPECT_EQ(tree->ComputeStats().value().entries, node_count);

  ShreddedStore::Source source(&store, 3);
  TokenWriter out;
  ASSERT_TRUE(EventsToTokens(&source, &out).ok());
  EXPECT_EQ(out.buffer(), tokens.buffer());
  EXPECT_EQ(source.records_fetched(), node_count);
}

TEST(ShreddedStoreTest, GetNodeByid) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto space = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(space.get(), 128);
  RecordManager records(&bm);
  auto tree = BTree::Create(&bm).MoveValue();
  ShreddedStore store(&records, tree.get());

  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  ASSERT_TRUE(parser.Parse("<a><b>x</b></a>", &tokens).ok());
  ASSERT_TRUE(store.InsertDocument(1, tokens.data(), nullptr).ok());
  std::string rec;
  ASSERT_TRUE(store.GetNode(1, nodeid::ChildId(1), &rec).ok());
  EXPECT_FALSE(rec.empty());
  EXPECT_TRUE(store.GetNode(1, nodeid::ChildId(5), &rec).IsNotFound());
}

}  // namespace
}  // namespace xdb
