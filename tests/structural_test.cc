// Structural (pre,post)-interval index tests: the key/value codec, the
// event-walk derivation of (pre, post, level, subtree) numbers, B+tree
// scan order, and the engine-level lifecycle — DDL, backfill, maintenance
// across every mutation path, and planner-visible behaviour of the
// structural access method.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "engine/engine.h"
#include "index/structural_index.h"
#include "leak_check.h"
#include "runtime/virtual_sax.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"
#include "xml/name_dictionary.h"
#include "xml/node_id.h"
#include "xml/parser.h"

namespace xdb {
namespace {

// --- codec ---

TEST(StructuralCodecTest, KeyValueRoundTrip) {
  std::string key, value;
  EncodeStructuralKey(7, 0x123456789ABCDEFull, 42, &key);
  EXPECT_EQ(key.size(), 16u);
  NameId name = 0;
  uint64_t doc = 0;
  uint32_t pre = 0;
  ASSERT_TRUE(DecodeStructuralKey(Slice(key), &name, &doc, &pre).ok());
  EXPECT_EQ(name, 7u);
  EXPECT_EQ(doc, 0x123456789ABCDEFull);
  EXPECT_EQ(pre, 42u);

  std::string node_id = nodeid::ChildId(3);
  EncodeStructuralValue(9, 2, Slice(node_id), &value);
  uint32_t post = 0, level = 0;
  Slice got_id;
  ASSERT_TRUE(DecodeStructuralValue(Slice(value), &post, &level, &got_id).ok());
  EXPECT_EQ(post, 9u);
  EXPECT_EQ(level, 2u);
  EXPECT_EQ(got_id, Slice(node_id));

  EXPECT_FALSE(DecodeStructuralKey(Slice("short"), &name, &doc, &pre).ok());
  EXPECT_FALSE(DecodeStructuralValue(Slice("1234567"), &post, &level, &got_id)
                   .ok());
}

// Key bytes must sort by (name, doc, pre) so one name's entries are a
// contiguous range in (doc, document-order) order.
TEST(StructuralCodecTest, KeysSortByNameDocPre) {
  auto key = [](NameId n, uint64_t d, uint32_t p) {
    std::string k;
    EncodeStructuralKey(n, d, p, &k);
    return k;
  };
  EXPECT_LT(key(1, 9, 9), key(2, 0, 0));
  EXPECT_LT(key(2, 1, 9), key(2, 2, 0));
  EXPECT_LT(key(2, 2, 3), key(2, 2, 4));
}

// --- derivation from the virtual-SAX walk ---

std::vector<StructuralEntry> Derive(const std::string& xml,
                                    NameDictionary* dict) {
  Parser parser(dict);
  TokenWriter tokens;
  EXPECT_TRUE(parser.Parse(xml, &tokens).ok()) << xml;
  TokenStreamSource source(tokens.data());
  std::vector<StructuralEntry> entries;
  EXPECT_TRUE(DeriveStructuralEntries(&source, &entries).ok());
  return entries;
}

TEST(StructuralDeriveTest, NumbersPrePostLevelAndSubtree) {
  NameDictionary dict;
  //  <a>           pre=0 post=3 subtree=3
  //    <b>         pre=1 post=1 subtree=1
  //      <c/>      pre=2 post=0 subtree=0
  //    </b>
  //    <b/>        pre=3 post=2 subtree=0
  //  </a>
  std::vector<StructuralEntry> e = Derive("<a><b><c/></b><b/></a>", &dict);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[0].name_id, dict.Lookup("a"));
  EXPECT_EQ(e[0].pre, 0u);
  EXPECT_EQ(e[0].post, 3u);
  EXPECT_EQ(e[0].subtree_size, 3u);
  EXPECT_EQ(e[1].name_id, dict.Lookup("b"));
  EXPECT_EQ(e[1].pre, 1u);
  EXPECT_EQ(e[1].post, 1u);
  EXPECT_EQ(e[1].subtree_size, 1u);
  EXPECT_EQ(e[2].name_id, dict.Lookup("c"));
  EXPECT_EQ(e[2].pre, 2u);
  EXPECT_EQ(e[2].post, 0u);
  EXPECT_EQ(e[2].subtree_size, 0u);
  EXPECT_EQ(e[3].name_id, dict.Lookup("b"));
  EXPECT_EQ(e[3].pre, 3u);
  EXPECT_EQ(e[3].post, 2u);
  EXPECT_EQ(e[3].subtree_size, 0u);
  // Levels nest: root element 1, children 2, grandchildren 3.
  EXPECT_EQ(e[0].level + 1, e[1].level);
  EXPECT_EQ(e[1].level + 1, e[2].level);
  EXPECT_EQ(e[1].level, e[3].level);

  // The XISS/R ancestry test and Dewey prefix ancestry agree on every pair.
  for (size_t i = 0; i < e.size(); i++) {
    for (size_t j = 0; j < e.size(); j++) {
      if (i == j) continue;
      bool interval = e[i].pre < e[j].pre && e[j].post < e[i].post;
      bool prefix = nodeid::IsAncestor(Slice(e[i].node_id), Slice(e[j].node_id));
      EXPECT_EQ(interval, prefix) << i << " vs " << j;
    }
  }
}

TEST(StructuralDeriveTest, DeepRecursiveDocumentStaysConsistent) {
  NameDictionary dict;
  std::string xml;
  constexpr uint32_t kDepth = 40;
  for (uint32_t i = 0; i < kDepth; i++) xml += "<a>";
  xml += "<t>x</t>";
  for (uint32_t i = 0; i < kDepth; i++) xml += "</a>";
  std::vector<StructuralEntry> e = Derive(xml, &dict);
  ASSERT_EQ(e.size(), kDepth + 1);
  // The spine: each <a> contains everything below it.
  for (uint32_t i = 0; i < kDepth; i++) {
    EXPECT_EQ(e[i].pre, i);
    EXPECT_EQ(e[i].level, i + 1);
    EXPECT_EQ(e[i].subtree_size, kDepth - i);
    EXPECT_EQ(e[i].post, kDepth - i);
  }
}

// --- index-layer add / scan / remove ---

class StructuralIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 128);
    tree_ = BTree::Create(bm_.get()).MoveValue();
    index_ = std::make_unique<StructuralIndex>(
        StructuralIndexDef{"structure", ""}, tree_.get());
  }

  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<StructuralIndex> index_;
};

TEST_F(StructuralIndexTest, AddScanRemoveAcrossDocuments) {
  NameDictionary dict;
  // Insert doc 2 first, then doc 1: Scan must still return (doc, pre) order.
  std::vector<StructuralEntry> doc2 = Derive("<a><b/><b/></a>", &dict);
  std::vector<StructuralEntry> doc1 = Derive("<a><b><b/></b></a>", &dict);
  ASSERT_TRUE(index_->AddEntries(dict, 2, doc2).ok());
  ASSERT_TRUE(index_->AddEntries(dict, 1, doc1).ok());
  EXPECT_EQ(index_->CountEntries().value(), 6u);

  std::vector<StructuralPosting> hits;
  ASSERT_TRUE(index_->Scan(dict.Lookup("b"), &hits).ok());
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].doc_id, 1u);
  EXPECT_EQ(hits[1].doc_id, 1u);
  EXPECT_EQ(hits[2].doc_id, 2u);
  EXPECT_EQ(hits[3].doc_id, 2u);
  EXPECT_LT(hits[0].pre, hits[1].pre);
  EXPECT_LT(hits[2].pre, hits[3].pre);
  // Nested b in doc 1: the interval and level facts came back intact.
  EXPECT_EQ(hits[0].level + 1, hits[1].level);
  EXPECT_TRUE(nodeid::IsAncestor(Slice(hits[0].node_id),
                                 Slice(hits[1].node_id)));

  // Scanning a name with no entries (or an unknown id) is empty, not an
  // error.
  ASSERT_TRUE(index_->Scan(dict.Lookup("zzz"), &hits).ok());
  EXPECT_TRUE(hits.empty());

  ASSERT_TRUE(index_->RemoveEntries(dict, 1, doc1).ok());
  EXPECT_EQ(index_->CountEntries().value(), 3u);
  ASSERT_TRUE(index_->Scan(dict.Lookup("b"), &hits).ok());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc_id, 2u);
}

TEST_F(StructuralIndexTest, PerNameIndexOnlyKeepsItsName) {
  NameDictionary dict;
  StructuralIndex per_name(StructuralIndexDef{"only_b", "b"}, tree_.get());
  EXPECT_TRUE(per_name.CoversName(Slice("b")));
  EXPECT_FALSE(per_name.CoversName(Slice("a")));
  EXPECT_TRUE(index_->CoversName(Slice("a")));  // all-names covers everything

  std::vector<StructuralEntry> entries = Derive("<a><b/><c/></a>", &dict);
  ASSERT_TRUE(per_name.AddEntries(dict, 1, entries).ok());
  EXPECT_EQ(per_name.CountEntries().value(), 1u);
  std::vector<StructuralPosting> hits;
  ASSERT_TRUE(per_name.Scan(dict.Lookup("a"), &hits).ok());
  EXPECT_TRUE(hits.empty());
  ASSERT_TRUE(per_name.Scan(dict.Lookup("b"), &hits).ok());
  EXPECT_EQ(hits.size(), 1u);
}

// --- engine-level lifecycle ---

std::unique_ptr<Engine> MemEngine() {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  return Engine::Open(opts).MoveValue();
}

// Results of a forced-structural query must be byte-identical to the forced
// full scan — the structural path is an access method, not a semantics
// change.
void ExpectStructuralMatchesScan(Collection* coll, const std::string& query) {
  QueryOptions scan;
  scan.force = ForceMethod::kScan;
  QueryOptions structural;
  structural.force = ForceMethod::kStructural;
  auto a = coll->Query(nullptr, query, scan);
  auto b = coll->Query(nullptr, query, structural);
  ASSERT_TRUE(a.ok()) << query << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << query << ": " << b.status().ToString();
  ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size()) << query;
  for (size_t i = 0; i < a.value().nodes.size(); i++) {
    EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id) << query;
    EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id) << query;
  }
}

TEST(StructuralEngineTest, CreateBackfillQueryDrop) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  // Documents inserted BEFORE the index exist: create must backfill.
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(coll->InsertDocument(nullptr,
                                     "<lib><shelf><book><title>t" +
                                         std::to_string(i) +
                                         "</title></book></shelf></lib>")
                    .ok());
  }
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  EXPECT_NE(coll->FindStructuralIndex("structure"), nullptr);
  EXPECT_EQ(coll->FindStructuralIndex("structure")->CountEntries().value(),
            5u * 4u);
  // Duplicate names are rejected; the empty name is rejected.
  EXPECT_FALSE(coll->CreateStructuralIndex({"structure", ""}).ok());
  EXPECT_FALSE(coll->CreateStructuralIndex({"", ""}).ok());

  for (const char* q : {"//book", "//book/title", "//shelf//title", "/lib"}) {
    ExpectStructuralMatchesScan(coll, q);
  }
  // EXPLAIN names the index and the interval scan.
  QueryOptions o;
  o.explain = true;
  o.force = ForceMethod::kStructural;
  auto res = coll->Query(nullptr, "//book", o);
  ASSERT_TRUE(res.ok());
  EXPECT_NE(res.value().profile.PlanText().find("structural-scan"),
            std::string::npos)
      << res.value().profile.PlanText();

  ASSERT_TRUE(coll->DropStructuralIndex("structure").ok());
  EXPECT_EQ(coll->FindStructuralIndex("structure"), nullptr);
  EXPECT_TRUE(coll->DropStructuralIndex("structure").IsNotFound());
  // Forced structural with no index falls back to the full scan — answers
  // stay correct.
  ExpectStructuralMatchesScan(coll, "//book");
  auto after = coll->Query(nullptr, "//book", o);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().profile.reason.find("no covering index"),
            std::string::npos)
      << after.value().profile.PlanText();
}

TEST(StructuralEngineTest, PerNameIndexCoversOnlyItsElement) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"titles", "title"}).ok());
  ASSERT_TRUE(
      coll->InsertDocument(nullptr,
                           "<lib><book><title>t</title></book></lib>")
          .ok());
  EXPECT_EQ(coll->FindStructuralIndex("titles")->CountEntries().value(), 1u);
  ExpectStructuralMatchesScan(coll, "//title");
  // An uncovered name can't ride the per-name index: forced structural
  // degrades to the scan, same answers.
  QueryOptions o;
  o.explain = true;
  o.force = ForceMethod::kStructural;
  auto res = coll->Query(nullptr, "//book", o);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().profile.access_method, "full-scan");
  ExpectStructuralMatchesScan(coll, "//book");
}

TEST(StructuralEngineTest, MaintainedAcrossEveryMutationPath) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  StructuralIndex* ix = coll->FindStructuralIndex("structure");
  ASSERT_NE(ix, nullptr);

  // Insert AFTER create: incremental maintenance, not backfill.
  uint64_t d1 =
      coll->InsertDocument(nullptr, "<a><b><c>1</c></b></a>").value();
  uint64_t d2 = coll->InsertDocument(nullptr, "<a><b>2</b></a>").value();
  EXPECT_EQ(ix->CountEntries().value(), 5u);
  ExpectStructuralMatchesScan(coll, "//b");

  // Subtree insert: the new nodes gain entries (real Between() IDs).
  std::string d2_root;
  auto roots = coll->Query(nullptr, "/a").value().nodes;
  for (const auto& n : roots) {
    if (n.doc_id == d2) d2_root = n.node_id;
  }
  ASSERT_FALSE(d2_root.empty());
  ASSERT_TRUE(
      coll->InsertSubtree(nullptr, d2, d2_root, "", "<b><c>9</c></b>").ok());
  EXPECT_EQ(ix->CountEntries().value(), 7u);
  ExpectStructuralMatchesScan(coll, "//b");
  ExpectStructuralMatchesScan(coll, "//b//c");

  // Text update: shape unchanged, entry count unchanged, answers agree.
  auto texts = coll->Query(nullptr, "//c/text()").value().nodes;
  ASSERT_FALSE(texts.empty());
  ASSERT_TRUE(coll->UpdateTextNode(nullptr, texts[0].doc_id,
                                   texts[0].node_id, "updated")
                  .ok());
  EXPECT_EQ(ix->CountEntries().value(), 7u);
  ExpectStructuralMatchesScan(coll, "//c");

  // Subtree delete: the subtree's entries vanish.
  std::string victim;
  auto bs = coll->Query(nullptr, "//b").value().nodes;
  for (const auto& n : bs) {
    if (n.doc_id == d2) {
      victim = n.node_id;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(coll->DeleteSubtree(nullptr, d2, victim).ok());
  ExpectStructuralMatchesScan(coll, "//b");
  ExpectStructuralMatchesScan(coll, "//c");

  // Document delete: every entry of the document vanishes.
  ASSERT_TRUE(coll->DeleteDocument(nullptr, d1).ok());
  ExpectStructuralMatchesScan(coll, "//b");
  ASSERT_TRUE(coll->DeleteDocument(nullptr, d2).ok());
  EXPECT_EQ(ix->CountEntries().value(), 0u);
}

TEST(StructuralEngineTest, SurvivesCheckpointAndReopen) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("xdb_structural_reopen_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  EngineOptions opts;
  opts.dir = dir;
  {
    auto engine = Engine::Open(opts).MoveValue();
    Collection* coll = engine->CreateCollection("docs").value();
    ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a><b><c>1</c></b></a>").ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
    // One more document rides only the WAL.
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>2</b></a>").ok());
  }
  {
    auto engine = Engine::Open(opts).MoveValue();
    Collection* coll = engine->GetCollection("docs").value();
    StructuralIndex* ix = coll->FindStructuralIndex("structure");
    ASSERT_NE(ix, nullptr);
    EXPECT_EQ(ix->CountEntries().value(), 5u);
    ExpectStructuralMatchesScan(coll, "//b");
    ExpectStructuralMatchesScan(coll, "//b/c");
  }
  std::filesystem::remove_all(dir);
}

// The descendant-branch anchor join (strip_levels == -1 conjuncts joined
// against the structural interval entries) must agree with the scan on
// queries whose predicate sits an unknown depth below the anchor.
TEST(StructuralEngineTest, AnchorJoinMatchesScan) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"price", "//price", ValueType::kDouble, 128})
                  .ok());
  // price appears at varying depth below book; nested books too.
  ASSERT_TRUE(coll->InsertDocument(
                      nullptr,
                      "<lib><book><price>5</price></book>"
                      "<book><info><price>9</price></info></book></lib>")
                  .ok());
  ASSERT_TRUE(coll->InsertDocument(
                      nullptr,
                      "<lib><book><book><deep><price>9</price></deep></book>"
                      "</book><price>9</price></lib>")
                  .ok());
  for (const char* q :
       {"//book[.//price = 9]", "//book[.//price = 5]",
        "//book[.//price = 7]"}) {
    QueryOptions scan;
    scan.force = ForceMethod::kScan;
    QueryOptions node;
    node.force = ForceMethod::kNodeIdList;  // upgrades via the anchor join
    auto a = coll->Query(nullptr, q, scan);
    auto b = coll->Query(nullptr, q, node);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size()) << q;
    for (size_t i = 0; i < a.value().nodes.size(); i++) {
      EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id) << q;
      EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id) << q;
    }
  }
}

// Dropping the index mid-stream invalidates cached structural plans: the
// next execution replans instead of dereferencing a dead index.
TEST(StructuralEngineTest, DropInvalidatesCachedStructuralPlans) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("docs").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>x</b></a>").ok());
  QueryOptions o;
  o.force = ForceMethod::kStructural;
  ASSERT_EQ(coll->Query(nullptr, "//b", o).value().nodes.size(), 3u);
  ASSERT_TRUE(coll->DropStructuralIndex("structure").ok());
  // Same query text, same force mode: must fall back to the scan cleanly.
  auto res = coll->Query(nullptr, "//b", o);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().nodes.size(), 3u);
}

}  // namespace
}  // namespace xdb
