// Fault-injection and crash-recovery tests: armed storage faults (torn
// writes, silent corruption, I/O errors) fired at exact operations, followed
// by the same recovery path a real crash would take. The WAL torn-tail sweep
// truncates the final record at every byte offset and asserts recovery
// yields exactly the pre-crash committed state.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"
#include "storage/wal_log.h"
#include "testing/fault_injector.h"
#include "util/workload.h"

namespace xdb {
namespace testing {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("xdb_fault_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

class FileGuard {
 public:
  explicit FileGuard(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~FileGuard() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- injector mechanics against a table space ---

TEST(FaultInjectorTest, ArmedFaultFiresExactlyOnce) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string buf(ts->page_size(), 'A');

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceWrite, 2, FaultKind::kError);
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());
  Status s = ts->WritePage(p, buf.data());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());  // one-shot
  EXPECT_TRUE(fi->fired());
  EXPECT_EQ(fi->op_count(FaultPoint::kTableSpaceWrite), 3u);
}

TEST(FaultInjectorTest, TornPageWriteLandsPrefixOnly) {
  FileGuard file(TempPath("torn_page"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string a(ts->page_size(), 'A');
  ASSERT_TRUE(ts->WritePage(p, a.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceWrite, 1, FaultKind::kTornWrite, 10);
  std::string b(ts->page_size(), 'B');
  EXPECT_TRUE(ts->WritePage(p, b.data()).IsIOError());

  std::string back(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, back.data()).ok());
  EXPECT_EQ(back.substr(0, 10), std::string(10, 'B'));  // the torn prefix
  EXPECT_EQ(back.substr(10), a.substr(10));             // old bytes beyond it
}

TEST(FaultInjectorTest, SilentReadCorruptionFlipsOneBit) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string data(ts->page_size(), 'Q');
  ASSERT_TRUE(ts->WritePage(p, data.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceRead, 1, FaultKind::kCorruptBit, 5);
  std::string back(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, back.data()).ok());  // corruption is silent
  EXPECT_NE(back, data);
  EXPECT_EQ(back[5], static_cast<char>('Q' ^ 0x01));
}

TEST(FaultInjectorTest, ShortReadSurfacesAsError) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string data(ts->page_size(), 'R');
  ASSERT_TRUE(ts->WritePage(p, data.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceRead, 1, FaultKind::kShortRead, 16);
  std::string back(ts->page_size(), '\0');
  EXPECT_TRUE(ts->ReadPage(p, back.data()).IsIOError());
}

TEST(FaultInjectorTest, CrashModeFailsEverythingAfterTheFault) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string buf(ts->page_size(), 'C');

  ScopedFaultInjector fi;
  fi->set_crash_after_fire(true);
  fi->Arm(FaultPoint::kTableSpaceWrite, 2, FaultKind::kError);
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());
  EXPECT_TRUE(ts->WritePage(p, buf.data()).IsIOError());  // the fault
  EXPECT_TRUE(ts->WritePage(p, buf.data()).IsIOError());  // dead process
  EXPECT_TRUE(ts->WritePage(p, buf.data()).IsIOError());
  fi->Reset();
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());  // "reboot"
}

TEST(FaultInjectorTest, BufferWritebackFaultSurfacesThroughFlush) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(ts.get(), 8);
  {
    PageHandle h = bm.NewPage().MoveValue();
    std::memset(h.MutableData(), 'D', bm.page_size());
  }
  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kBufferWriteback, 1, FaultKind::kError);
  EXPECT_TRUE(bm.FlushAll().IsIOError());
  EXPECT_TRUE(bm.FlushAll().ok());  // one-shot: retry succeeds
}

// --- WAL faults ---

TEST(WalFaultTest, SyncFailureSurfaces) {
  FileGuard file(TempPath("wal_sync"));
  auto wal = WalLog::Open(file.path()).MoveValue();
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "x").ok());
  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kWalSync, 1, FaultKind::kError);
  EXPECT_TRUE(wal->Sync().IsIOError());
  EXPECT_TRUE(wal->Sync().ok());
}

TEST(WalFaultTest, SilentlyCorruptedAppendIsDroppedAtReplay) {
  FileGuard file(TempPath("wal_corrupt"));
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "first").ok());
    ScopedFaultInjector fi;
    // Flip a bit inside the payload region of the second record.
    fi->Arm(FaultPoint::kWalAppend, 1, FaultKind::kCorruptBit, 12);
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "second").ok());
  }
  auto wal = WalLog::Open(file.path()).MoveValue();
  std::vector<std::string> seen;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                   seen.push_back(payload.ToString());
                   return Status::OK();
                 })
                  .ok());
  // The CRC catches the corruption; replay stops cleanly before it.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first");
}

// The torn-tail sweep (table-driven): the final record of the log is torn at
// *every* byte offset via the injector, and recovery must yield exactly the
// committed records before it — never an error, never a partial record.
TEST(WalFaultTest, TornTailSweepRecoversCommittedPrefixAtEveryOffset) {
  const std::string payloads[] = {"alpha-record", "beta-record",
                                  "the-final-record-that-tears"};
  // Record layout is [len u32][type u8][crc u32][payload].
  const size_t final_size = 4 + 1 + 4 + payloads[2].size();
  for (size_t keep = 0; keep < final_size; keep++) {
    FileGuard file(TempPath("wal_torn_sweep"));
    {
      auto wal = WalLog::Open(file.path()).MoveValue();
      ASSERT_TRUE(
          wal->Append(WalRecordType::kInsertDocument, payloads[0]).ok());
      ASSERT_TRUE(
          wal->Append(WalRecordType::kInsertDocument, payloads[1]).ok());
      ScopedFaultInjector fi;
      fi->Arm(FaultPoint::kWalAppend, 1, FaultKind::kTornWrite,
              static_cast<uint32_t>(keep));
      EXPECT_TRUE(wal->Append(WalRecordType::kInsertDocument, payloads[2])
                      .status()
                      .IsIOError())
          << "keep=" << keep;
    }
    auto wal = WalLog::Open(file.path()).MoveValue();
    std::vector<std::string> seen;
    Status s = wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
      seen.push_back(payload.ToString());
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << "keep=" << keep << ": " << s.ToString();
    ASSERT_EQ(seen.size(), 2u) << "keep=" << keep;
    EXPECT_EQ(seen[0], payloads[0]);
    EXPECT_EQ(seen[1], payloads[1]);
  }
}

// Same sweep at the file level (plain truncation instead of a torn write):
// guards the boundary case where the tail is cut *between* records.
TEST(WalFaultTest, TruncationSweepAcrossRecordBoundary) {
  FileGuard file(TempPath("wal_truncate"));
  uint64_t lsn3 = 0, full = 0;
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "one").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kCommit, "two").ok());
    lsn3 = wal->Append(WalRecordType::kInsertDocument, "three").value();
    full = wal->size();
  }
  for (uint64_t cut = lsn3; cut <= full; cut++) {
    std::string copy = TempPath("wal_truncate_copy");
    std::filesystem::copy_file(file.path(), copy,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(copy, cut);
    auto wal = WalLog::Open(copy).MoveValue();
    std::vector<std::string> seen;
    ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                     seen.push_back(payload.ToString());
                     return Status::OK();
                   })
                    .ok())
        << "cut=" << cut;
    if (cut == full) {
      ASSERT_EQ(seen.size(), 3u);
      EXPECT_EQ(seen[2], "three");
    } else {
      ASSERT_EQ(seen.size(), 2u) << "cut=" << cut;
      EXPECT_EQ(seen[0], "one");
      EXPECT_EQ(seen[1], "two");
    }
    std::remove(copy.c_str());
  }
}

// --- engine-level crash recovery: committed documents survive, documents
// whose insert failed vanish ---

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("xdb_fault_engine_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++)))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineOptions FileOptions() {
    EngineOptions opts;
    opts.dir = dir_;
    return opts;
  }

  std::string dir_;
  static int counter_;
};
int EngineFaultTest::counter_ = 0;

// Regression (found by this harness): names interned after the last
// checkpoint existed only in memory, so a crash left replayed documents
// pointing at unknown name ids — the doc id came back but its text read as
// "Corruption: unknown name id". kDefineName WAL records now rebuild the
// dictionary tail during replay.
TEST_F(EngineFaultTest, WalReplayRestoresNamesInternedAfterCheckpoint) {
  uint64_t doc = 0;
  const std::string xml = "<brand attr=\"v\">new<nested/></brand>";
  {
    Engine* crashed = Engine::Open(FileOptions()).MoveValue().release();
    Collection* coll = crashed->CreateCollection("docs").value();
    coll->InsertDocument(nullptr, "<old>1</old>").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    // "brand", "attr", "nested" are all new names with no checkpoint after.
    doc = coll->InsertDocument(nullptr, xml).value();
  }
  {
    Engine* engine = Engine::Open(FileOptions()).MoveValue().release();
    Collection* coll = engine->GetCollection("docs").value();
    auto text = coll->GetDocumentText(nullptr, doc);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_EQ(text.value(), xml);
    // Crash again without a checkpoint: the second replay sees the same
    // kDefineName records plus one for the name added below — both the
    // idempotent-redo and the append-after-replay paths must hold.
    coll->InsertDocument(nullptr, "<later>2</later>").value();
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), xml);
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc + 1).value(), "<later>2</later>");
}

TEST_F(EngineFaultTest, CommittedSurviveUncommittedVanishAcrossFaultSweep) {
  // Fault the Nth post-checkpoint WAL append for several N; each insert
  // appends one redo record, so fault_op = n kills insert n and (in crash
  // mode) everything after it.
  for (uint64_t fault_op : {1u, 2u, 3u, 5u}) {
    SetUp();  // fresh dir per sweep point
    std::vector<std::pair<uint64_t, std::string>> committed;
    uint64_t precheckpoint_doc = 0;
    {
      // Crash idiom (see PersistenceTest): leak the engine so destructors
      // never flush; only WAL + checkpointed pages survive.
      Engine* crashed = Engine::Open(FileOptions()).MoveValue().release();
      Collection* coll = crashed->CreateCollection("docs").value();
      // Uses the same element/attribute names as the post-checkpoint inserts
      // so those append exactly one WAL record each (no kDefineName records
      // for freshly interned names would shift the fault's op count).
      precheckpoint_doc =
          coll->InsertDocument(nullptr, "<doc n=\"base\">safe</doc>").value();
      ASSERT_TRUE(crashed->Checkpoint().ok());

      ScopedFaultInjector fi;
      fi->set_crash_after_fire(true);
      fi->Arm(FaultPoint::kWalAppend, fault_op, FaultKind::kTornWrite, 6);
      Random rng(fault_op);
      for (int i = 0; i < 6; i++) {
        std::string xml = "<doc n=\"" + std::to_string(i) + "\">" +
                          std::to_string(rng.Uniform(100000)) + "</doc>";
        auto r = coll->InsertDocument(nullptr, xml);
        if (r.ok()) committed.emplace_back(r.value(), xml);
      }
      EXPECT_EQ(committed.size(), fault_op - 1);
    }
    auto engine = Engine::Open(FileOptions()).MoveValue();
    Collection* coll = engine->GetCollection("docs").value();
    // The pre-crash committed state, exactly.
    EXPECT_EQ(coll->GetDocumentText(nullptr, precheckpoint_doc).value(),
              "<doc n=\"base\">safe</doc>");
    for (const auto& [doc_id, xml] : committed) {
      EXPECT_EQ(coll->GetDocumentText(nullptr, doc_id).value(), xml)
          << "fault_op=" << fault_op;
    }
    auto ids = coll->ListDocIds().value();
    EXPECT_EQ(ids.size(), 1 + committed.size()) << "fault_op=" << fault_op;
    // And the store is fully usable after recovery.
    uint64_t fresh =
        coll->InsertDocument(nullptr, "<post>recovery</post>").value();
    EXPECT_EQ(coll->GetDocumentText(nullptr, fresh).value(),
              "<post>recovery</post>");
    engine.reset();
    TearDown();
  }
}

TEST_F(EngineFaultTest, CheckpointSyncFaultLeavesStoreRecoverable) {
  uint64_t doc_a = 0, doc_b = 0;
  {
    Engine* crashed = Engine::Open(FileOptions()).MoveValue().release();
    Collection* coll = crashed->CreateCollection("docs").value();
    doc_a = coll->InsertDocument(nullptr, "<a>checkpointed</a>").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    doc_b = coll->InsertDocument(nullptr, "<b>walled</b>").value();
    ScopedFaultInjector fi;
    fi->Arm(FaultPoint::kTableSpaceSync, 1, FaultKind::kError);
    // The failed checkpoint must not reset the WAL: doc_b's redo record is
    // still the only durable trace of it.
    EXPECT_FALSE(crashed->Checkpoint().ok());
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc_a).value(),
            "<a>checkpointed</a>");
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc_b).value(), "<b>walled</b>");
}

}  // namespace
}  // namespace testing
}  // namespace xdb
