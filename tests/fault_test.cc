// Fault-injection and crash-recovery tests: armed storage faults (torn
// writes, silent corruption, I/O errors) fired at exact operations, followed
// by the same recovery path a real crash would take. The WAL torn-tail sweep
// truncates the final record at every byte offset and asserts recovery
// yields exactly the pre-crash committed state.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/engine.h"
#include "leak_check.h"
#include "obs/event_log.h"
#include "repl/replica_applier.h"
#include "repl/ship_transport.h"
#include "repl/wal_segment.h"
#include "repl/wal_shipper.h"
#include "query/stats.h"
#include "storage/buffer_manager.h"
#include "storage/io_retry.h"
#include "storage/page.h"
#include "storage/tablespace.h"
#include "storage/wal_log.h"
#include "testing/fault_injector.h"
#include "util/workload.h"

namespace xdb {
namespace testing {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("xdb_fault_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

class FileGuard {
 public:
  explicit FileGuard(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~FileGuard() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// XORs one byte of a file in place (media-corruption simulation).
void FlipByte(const std::string& path, uint64_t offset, uint8_t mask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ mask));
}

/// IoClock that records the requested sleeps instead of sleeping.
class FakeClock : public IoClock {
 public:
  void SleepMicros(uint64_t us) override { sleeps.push_back(us); }
  std::vector<uint64_t> sleeps;
};

// --- retry policy unit tests ---

TEST(RetryPolicyTest, TransientFailuresAreRetriedWithBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 10000;
  FakeClock clock;
  IoStats stats;
  int calls = 0;
  obs::EventLog events(16);
  Status s = RetryTransient(policy, &clock, &stats, &events, "op",
                            [&]() -> Status {
    if (++calls < 3) return Status::TransientIOError("blip");
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
  // Each backoff leaves an io.retry event carrying the attempt number.
  std::vector<obs::Event> retry_events = events.Recent();
  ASSERT_EQ(retry_events.size(), 2u);
  EXPECT_EQ(retry_events[0].kind, obs::EventKind::kIoRetry);
  EXPECT_EQ(retry_events[0].message, "op");
  EXPECT_EQ(stats.retries.load(), 2u);
  EXPECT_EQ(stats.transient_errors.load(), 2u);
  EXPECT_EQ(stats.permanent_failures.load(), 0u);
  // Exponential backoff with up to 50% jitter: [100,150], then [200,300].
  ASSERT_EQ(clock.sleeps.size(), 2u);
  EXPECT_GE(clock.sleeps[0], 100u);
  EXPECT_LE(clock.sleeps[0], 150u);
  EXPECT_GE(clock.sleeps[1], 200u);
  EXPECT_LE(clock.sleeps[1], 300u);
}

TEST(RetryPolicyTest, PermanentErrorsAreNotRetried) {
  FakeClock clock;
  IoStats stats;
  int calls = 0;
  Status s = RetryTransient(RetryPolicy{}, &clock, &stats, nullptr, "op", [&] {
    calls++;
    return Status::IOError("disk on fire");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_FALSE(s.IsTransient());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps.empty());
  EXPECT_EQ(stats.permanent_failures.load(), 1u);
}

TEST(RetryPolicyTest, ExhaustionSurfacesAsPermanentFailure) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  FakeClock clock;
  IoStats stats;
  int calls = 0;
  Status s = RetryTransient(policy, &clock, &stats, nullptr, "flaky op", [&] {
    calls++;
    return Status::TransientIOError("still flaky");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_FALSE(s.IsTransient()) << "exhaustion must not itself be retried";
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.sleeps.size(), 2u);
  EXPECT_EQ(stats.transient_errors.load(), 3u);
  EXPECT_EQ(stats.retries.load(), 2u);
  EXPECT_EQ(stats.permanent_failures.load(), 1u);
}

// --- injector mechanics against a table space ---

TEST(FaultInjectorTest, ArmedFaultFiresExactlyOnce) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string buf(ts->page_size(), 'A');

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceWrite, 2, FaultKind::kError);
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());
  Status s = ts->WritePage(p, buf.data());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());  // one-shot
  EXPECT_TRUE(fi->fired());
  EXPECT_EQ(fi->op_count(FaultPoint::kTableSpaceWrite), 3u);
}

TEST(FaultInjectorTest, TornPageWriteLandsPrefixOnly) {
  FileGuard file(TempPath("torn_page"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string a(ts->page_size(), 'A');
  ASSERT_TRUE(ts->WritePage(p, a.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceWrite, 1, FaultKind::kTornWrite, 10);
  std::string b(ts->page_size(), 'B');
  EXPECT_TRUE(ts->WritePage(p, b.data()).IsIOError());

  std::string back(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, back.data()).ok());
  EXPECT_EQ(back.substr(0, 10), std::string(10, 'B'));  // the torn prefix
  EXPECT_EQ(back.substr(10), a.substr(10));             // old bytes beyond it
}

TEST(FaultInjectorTest, SilentReadCorruptionFlipsOneBit) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string data(ts->page_size(), 'Q');
  ASSERT_TRUE(ts->WritePage(p, data.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceRead, 1, FaultKind::kCorruptBit, 5);
  std::string back(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, back.data()).ok());  // corruption is silent
  EXPECT_NE(back, data);
  EXPECT_EQ(back[5], static_cast<char>('Q' ^ 0x01));
}

TEST(FaultInjectorTest, ShortReadSurfacesAsError) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string data(ts->page_size(), 'R');
  ASSERT_TRUE(ts->WritePage(p, data.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceRead, 1, FaultKind::kShortRead, 16);
  std::string back(ts->page_size(), '\0');
  EXPECT_TRUE(ts->ReadPage(p, back.data()).IsIOError());
}

TEST(FaultInjectorTest, CrashModeFailsEverythingAfterTheFault) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  PageId p = ts->AllocatePage().value();
  std::string buf(ts->page_size(), 'C');

  ScopedFaultInjector fi;
  fi->set_crash_after_fire(true);
  fi->Arm(FaultPoint::kTableSpaceWrite, 2, FaultKind::kError);
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());
  EXPECT_TRUE(ts->WritePage(p, buf.data()).IsIOError());  // the fault
  EXPECT_TRUE(ts->WritePage(p, buf.data()).IsIOError());  // dead process
  EXPECT_TRUE(ts->WritePage(p, buf.data()).IsIOError());
  fi->Reset();
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());  // "reboot"
}

TEST(FaultInjectorTest, BufferWritebackFaultSurfacesThroughFlush) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  BufferManager bm(ts.get(), 8);
  {
    PageHandle h = bm.NewPage().MoveValue();
    std::memset(h.MutableData(), 'D', bm.page_size());
  }
  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kBufferWriteback, 1, FaultKind::kError);
  EXPECT_TRUE(bm.FlushAll().IsIOError());
  EXPECT_TRUE(bm.FlushAll().ok());  // one-shot: retry succeeds
}

TEST(FaultInjectorTest, TransientWriteFaultIsMaskedByRetry) {
  TableSpaceOptions opts;
  opts.in_memory = true;
  auto ts = TableSpace::Create("", opts).MoveValue();
  FakeClock clock;
  ts->set_io_clock(&clock);
  PageId p = ts->AllocatePage().value();
  std::string buf(ts->page_size(), 'T');

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceWrite, 1, FaultKind::kTransientError);
  EXPECT_TRUE(ts->WritePage(p, buf.data()).ok());  // masked, not surfaced
  EXPECT_TRUE(fi->fired());
  EXPECT_EQ(ts->io_stats().retries, 1u);
  EXPECT_EQ(ts->io_stats().transient_errors, 1u);
  EXPECT_EQ(ts->io_stats().permanent_failures, 0u);
  EXPECT_EQ(clock.sleeps.size(), 1u);

  std::string back(ts->page_size(), '\0');
  ASSERT_TRUE(ts->ReadPage(p, back.data()).ok());
  EXPECT_EQ(back, buf);
}

TEST(FaultInjectorTest, TransientReadAndSyncFaultsAreMasked) {
  FileGuard file(TempPath("transient_rs"));
  auto ts = TableSpace::Create(file.path()).MoveValue();
  FakeClock clock;
  ts->set_io_clock(&clock);
  PageId p = ts->AllocatePage().value();
  std::string buf(ts->page_size(), 'S');
  ASSERT_TRUE(ts->WritePage(p, buf.data()).ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kTableSpaceRead, 1, FaultKind::kTransientError);
  std::string back(ts->page_size(), '\0');
  EXPECT_TRUE(ts->ReadPage(p, back.data()).ok());
  EXPECT_EQ(back, buf);
  fi->Arm(FaultPoint::kTableSpaceSync, 1, FaultKind::kTransientError);
  EXPECT_TRUE(ts->Sync().ok());
  EXPECT_EQ(ts->io_stats().retries, 2u);
}

TEST(WalFaultTest, TransientAppendFaultIsMaskedByRetry) {
  FileGuard file(TempPath("wal_transient"));
  auto wal = WalLog::Open(file.path()).MoveValue();
  FakeClock clock;
  wal->set_io_clock(&clock);
  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kWalAppend, 1, FaultKind::kTransientError);
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "masked").ok());
  EXPECT_EQ(wal->io_stats().retries, 1u);
  std::vector<std::string> seen;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                   seen.push_back(payload.ToString());
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "masked");
}

// --- WAL faults ---

TEST(WalFaultTest, SyncFailureSurfaces) {
  FileGuard file(TempPath("wal_sync"));
  auto wal = WalLog::Open(file.path()).MoveValue();
  ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "x").ok());
  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kWalSync, 1, FaultKind::kError);
  EXPECT_TRUE(wal->Sync().IsIOError());
  EXPECT_TRUE(wal->Sync().ok());
}

TEST(WalFaultTest, SilentlyCorruptedAppendIsDroppedAtReplay) {
  FileGuard file(TempPath("wal_corrupt"));
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "first").ok());
    ScopedFaultInjector fi;
    // Flip a bit inside the payload region of the second record.
    fi->Arm(FaultPoint::kWalAppend, 1, FaultKind::kCorruptBit, 12);
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "second").ok());
  }
  auto wal = WalLog::Open(file.path()).MoveValue();
  std::vector<std::string> seen;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                   seen.push_back(payload.ToString());
                   return Status::OK();
                 })
                  .ok());
  // The CRC catches the corruption; replay stops cleanly before it.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first");
}

// Mid-log corruption (a CRC-failing record with intact records *after* it)
// is media damage, not a crash artifact: replay must skip it, keep going,
// and report it — silently truncating history there would drop the intact
// tail records.
TEST(WalFaultTest, MidLogCorruptionIsSkippedAndCounted) {
  FileGuard file(TempPath("wal_midlog"));
  uint64_t lsn2 = 0;
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "first").ok());
    lsn2 = wal->Append(WalRecordType::kInsertDocument, "second").value();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "third").ok());
  }
  // Flip a payload byte of the middle record ([len u32][type u8][crc u32]
  // header is 9 bytes).
  FlipByte(file.path(), lsn2 + 9 + 2, 0x40);
  auto wal = WalLog::Open(file.path()).MoveValue();
  std::vector<std::string> seen;
  WalReplayInfo info;
  ASSERT_TRUE(wal->Replay(
                     [&](uint64_t, WalRecordType, Slice payload) {
                       seen.push_back(payload.ToString());
                       return Status::OK();
                     },
                     &info)
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "first");
  EXPECT_EQ(seen[1], "third");
  EXPECT_EQ(info.records_replayed, 2u);
  EXPECT_EQ(info.corrupt_records_skipped, 1u);
  EXPECT_EQ(info.bytes_skipped, 9u + 6u);
  EXPECT_FALSE(info.torn_tail);
}

// A corrupt *last* record with nothing after it is indistinguishable from a
// torn final write — that stays the clean torn-tail case, not a warning.
TEST(WalFaultTest, CorruptLastRecordIsATornTailNotMidLogDamage) {
  FileGuard file(TempPath("wal_tail_crc"));
  uint64_t lsn2 = 0;
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "first").ok());
    lsn2 = wal->Append(WalRecordType::kInsertDocument, "second").value();
  }
  FlipByte(file.path(), lsn2 + 9 + 2, 0x40);
  auto wal = WalLog::Open(file.path()).MoveValue();
  std::vector<std::string> seen;
  WalReplayInfo info;
  ASSERT_TRUE(wal->Replay(
                     [&](uint64_t, WalRecordType, Slice payload) {
                       seen.push_back(payload.ToString());
                       return Status::OK();
                     },
                     &info)
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(info.corrupt_records_skipped, 0u);
  EXPECT_TRUE(info.torn_tail);
}

// The torn-tail sweep (table-driven): the final record of the log is torn at
// *every* byte offset via the injector, and recovery must yield exactly the
// committed records before it — never an error, never a partial record.
TEST(WalFaultTest, TornTailSweepRecoversCommittedPrefixAtEveryOffset) {
  const std::string payloads[] = {"alpha-record", "beta-record",
                                  "the-final-record-that-tears"};
  // Record layout is [len u32][type u8][crc u32][payload].
  const size_t final_size = 4 + 1 + 4 + payloads[2].size();
  for (size_t keep = 0; keep < final_size; keep++) {
    FileGuard file(TempPath("wal_torn_sweep"));
    {
      auto wal = WalLog::Open(file.path()).MoveValue();
      ASSERT_TRUE(
          wal->Append(WalRecordType::kInsertDocument, payloads[0]).ok());
      ASSERT_TRUE(
          wal->Append(WalRecordType::kInsertDocument, payloads[1]).ok());
      ScopedFaultInjector fi;
      fi->Arm(FaultPoint::kWalAppend, 1, FaultKind::kTornWrite,
              static_cast<uint32_t>(keep));
      EXPECT_TRUE(wal->Append(WalRecordType::kInsertDocument, payloads[2])
                      .status()
                      .IsIOError())
          << "keep=" << keep;
    }
    auto wal = WalLog::Open(file.path()).MoveValue();
    std::vector<std::string> seen;
    Status s = wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
      seen.push_back(payload.ToString());
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << "keep=" << keep << ": " << s.ToString();
    ASSERT_EQ(seen.size(), 2u) << "keep=" << keep;
    EXPECT_EQ(seen[0], payloads[0]);
    EXPECT_EQ(seen[1], payloads[1]);
  }
}

// Group-commit variant of the torn-tail sweep: the first two records are made
// durable through WalLog::Commit() — the group-commit path, one fdatasync
// covering both — and then the third record tears at every byte offset.
// Recovery must always yield exactly the synced prefix.
TEST(WalFaultTest, GroupCommitTornTailSweepRecoversSyncedPrefix) {
  const std::string payloads[] = {"alpha-record", "beta-record",
                                  "the-final-record-that-tears"};
  const size_t final_size = 4 + 1 + 4 + payloads[2].size();
  for (size_t keep = 0; keep < final_size; keep++) {
    FileGuard file(TempPath("wal_group_torn_sweep"));
    {
      auto wal = WalLog::Open(file.path()).MoveValue();
      ASSERT_TRUE(
          wal->Append(WalRecordType::kInsertDocument, payloads[0]).ok());
      ASSERT_TRUE(
          wal->Append(WalRecordType::kInsertDocument, payloads[1]).ok());
      ASSERT_TRUE(wal->Commit().ok());
      auto stats = wal->commit_stats();
      EXPECT_EQ(stats.commits, 1u) << "keep=" << keep;
      EXPECT_EQ(stats.syncs, 1u) << "keep=" << keep;
      ScopedFaultInjector fi;
      fi->Arm(FaultPoint::kWalAppend, 1, FaultKind::kTornWrite,
              static_cast<uint32_t>(keep));
      EXPECT_TRUE(wal->Append(WalRecordType::kInsertDocument, payloads[2])
                      .status()
                      .IsIOError())
          << "keep=" << keep;
    }
    auto wal = WalLog::Open(file.path()).MoveValue();
    std::vector<std::string> seen;
    Status s = wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
      seen.push_back(payload.ToString());
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << "keep=" << keep << ": " << s.ToString();
    ASSERT_EQ(seen.size(), 2u) << "keep=" << keep;
    EXPECT_EQ(seen[0], payloads[0]);
    EXPECT_EQ(seen[1], payloads[1]);
  }
}

// A failed fsync fails the Commit() that led the round without marking its
// CSN durable; the next Commit() becomes the retry leader, re-syncs, and the
// record is durable after all. Guards against a failed round poisoning
// synced_upto_ (which would make later commits no-op on unsynced data).
TEST(WalFaultTest, GroupCommitSyncFaultIsRetriedByNextCommit) {
  FileGuard file(TempPath("wal_group_sync_fault"));
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "solo").ok());
    {
      ScopedFaultInjector fi;
      fi->Arm(FaultPoint::kWalSync, 1, FaultKind::kError, 0);
      EXPECT_TRUE(wal->Commit().IsIOError());
    }
    EXPECT_TRUE(wal->Commit().ok());
    auto stats = wal->commit_stats();
    EXPECT_EQ(stats.commits, 2u);
    EXPECT_EQ(stats.syncs, 2u);
    // Coverage reached: a third commit piggybacks, no extra fsync.
    EXPECT_TRUE(wal->Commit().ok());
    EXPECT_EQ(wal->commit_stats().syncs, 2u);
  }
  auto wal = WalLog::Open(file.path()).MoveValue();
  std::vector<std::string> seen;
  ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                   seen.push_back(payload.ToString());
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "solo");
}

// Same sweep at the file level (plain truncation instead of a torn write):
// guards the boundary case where the tail is cut *between* records.
TEST(WalFaultTest, TruncationSweepAcrossRecordBoundary) {
  FileGuard file(TempPath("wal_truncate"));
  uint64_t lsn3 = 0, full = 0;
  {
    auto wal = WalLog::Open(file.path()).MoveValue();
    ASSERT_TRUE(wal->Append(WalRecordType::kInsertDocument, "one").ok());
    ASSERT_TRUE(wal->Append(WalRecordType::kCommit, "two").ok());
    lsn3 = wal->Append(WalRecordType::kInsertDocument, "three").value();
    full = wal->size();
  }
  for (uint64_t cut = lsn3; cut <= full; cut++) {
    std::string copy = TempPath("wal_truncate_copy");
    std::filesystem::copy_file(file.path(), copy,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(copy, cut);
    auto wal = WalLog::Open(copy).MoveValue();
    std::vector<std::string> seen;
    ASSERT_TRUE(wal->Replay([&](uint64_t, WalRecordType, Slice payload) {
                     seen.push_back(payload.ToString());
                     return Status::OK();
                   })
                    .ok())
        << "cut=" << cut;
    if (cut == full) {
      ASSERT_EQ(seen.size(), 3u);
      EXPECT_EQ(seen[2], "three");
    } else {
      ASSERT_EQ(seen.size(), 2u) << "cut=" << cut;
      EXPECT_EQ(seen[0], "one");
      EXPECT_EQ(seen[1], "two");
    }
    std::remove(copy.c_str());
  }
}

// --- engine-level crash recovery: committed documents survive, documents
// whose insert failed vanish ---

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("xdb_fault_engine_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++)))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineOptions FileOptions() {
    EngineOptions opts;
    opts.dir = dir_;
    return opts;
  }

  std::string dir_;
  static int counter_;
};
int EngineFaultTest::counter_ = 0;

// Regression (found by this harness): names interned after the last
// checkpoint existed only in memory, so a crash left replayed documents
// pointing at unknown name ids — the doc id came back but its text read as
// "Corruption: unknown name id". kDefineName WAL records now rebuild the
// dictionary tail during replay.
TEST_F(EngineFaultTest, WalReplayRestoresNamesInternedAfterCheckpoint) {
  uint64_t doc = 0;
  const std::string xml = "<brand attr=\"v\">new<nested/></brand>";
  {
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    coll->InsertDocument(nullptr, "<old>1</old>").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    // "brand", "attr", "nested" are all new names with no checkpoint after.
    doc = coll->InsertDocument(nullptr, xml).value();
  }
  {
    Engine* engine = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = engine->GetCollection("docs").value();
    auto text = coll->GetDocumentText(nullptr, doc);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_EQ(text.value(), xml);
    // Crash again without a checkpoint: the second replay sees the same
    // kDefineName records plus one for the name added below — both the
    // idempotent-redo and the append-after-replay paths must hold.
    coll->InsertDocument(nullptr, "<later>2</later>").value();
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), xml);
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc + 1).value(), "<later>2</later>");
}

TEST_F(EngineFaultTest, CommittedSurviveUncommittedVanishAcrossFaultSweep) {
  // Fault the Nth post-checkpoint WAL append for several N; each insert
  // appends one redo record, so fault_op = n kills insert n and (in crash
  // mode) everything after it.
  for (uint64_t fault_op : {1u, 2u, 3u, 5u}) {
    SetUp();  // fresh dir per sweep point
    std::vector<std::pair<uint64_t, std::string>> committed;
    uint64_t precheckpoint_doc = 0;
    {
      // Crash idiom (see PersistenceTest): leak the engine so destructors
      // never flush; only WAL + checkpointed pages survive.
      Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
      Collection* coll = crashed->CreateCollection("docs").value();
      // Uses the same element/attribute names as the post-checkpoint inserts
      // so those append exactly one WAL record each (no kDefineName records
      // for freshly interned names would shift the fault's op count).
      precheckpoint_doc =
          coll->InsertDocument(nullptr, "<doc n=\"base\">safe</doc>").value();
      ASSERT_TRUE(crashed->Checkpoint().ok());

      ScopedFaultInjector fi;
      fi->set_crash_after_fire(true);
      fi->Arm(FaultPoint::kWalAppend, fault_op, FaultKind::kTornWrite, 6);
      Random rng(fault_op);
      for (int i = 0; i < 6; i++) {
        std::string xml = "<doc n=\"" + std::to_string(i) + "\">" +
                          std::to_string(rng.Uniform(100000)) + "</doc>";
        auto r = coll->InsertDocument(nullptr, xml);
        if (r.ok()) committed.emplace_back(r.value(), xml);
      }
      EXPECT_EQ(committed.size(), fault_op - 1);
    }
    auto engine = Engine::Open(FileOptions()).MoveValue();
    Collection* coll = engine->GetCollection("docs").value();
    // The pre-crash committed state, exactly.
    EXPECT_EQ(coll->GetDocumentText(nullptr, precheckpoint_doc).value(),
              "<doc n=\"base\">safe</doc>");
    for (const auto& [doc_id, xml] : committed) {
      EXPECT_EQ(coll->GetDocumentText(nullptr, doc_id).value(), xml)
          << "fault_op=" << fault_op;
    }
    auto ids = coll->ListDocIds().value();
    EXPECT_EQ(ids.size(), 1 + committed.size()) << "fault_op=" << fault_op;
    // And the store is fully usable after recovery.
    uint64_t fresh =
        coll->InsertDocument(nullptr, "<post>recovery</post>").value();
    EXPECT_EQ(coll->GetDocumentText(nullptr, fresh).value(),
              "<post>recovery</post>");
    engine.reset();
    TearDown();
  }
}

// The committed-survive sweep again with sync_commits=true: every committed
// insert goes through the WAL group-commit path (append + fdatasync) before
// it returns. Crash recovery must behave exactly as in checkpoint-durability
// mode, and the commit stats must show the group-commit path engaged.
TEST_F(EngineFaultTest, SyncCommitsCommittedSurviveAcrossFaultSweep) {
  for (uint64_t fault_op : {1u, 3u, 5u}) {
    SetUp();  // fresh dir per sweep point
    EngineOptions opts = FileOptions();
    opts.sync_commits = true;
    std::vector<std::pair<uint64_t, std::string>> committed;
    uint64_t precheckpoint_doc = 0;
    {
      Engine* crashed =
          IntentionallyLeaked(Engine::Open(opts).MoveValue().release());
      Collection* coll = crashed->CreateCollection("docs").value();
      precheckpoint_doc =
          coll->InsertDocument(nullptr, "<doc n=\"base\">safe</doc>").value();
      ASSERT_TRUE(crashed->Checkpoint().ok());

      ScopedFaultInjector fi;
      fi->set_crash_after_fire(true);
      fi->Arm(FaultPoint::kWalAppend, fault_op, FaultKind::kTornWrite, 6);
      Random rng(fault_op);
      for (int i = 0; i < 6; i++) {
        std::string xml = "<doc n=\"" + std::to_string(i) + "\">" +
                          std::to_string(rng.Uniform(100000)) + "</doc>";
        auto r = coll->InsertDocument(nullptr, xml);
        if (r.ok()) committed.emplace_back(r.value(), xml);
      }
      EXPECT_EQ(committed.size(), fault_op - 1);
      // Each successful insert ran one Commit(); a commit never takes more
      // than one fsync here, and commits before the fault all synced.
      auto stats = crashed->wal()->commit_stats();
      EXPECT_GE(stats.commits, committed.size()) << "fault_op=" << fault_op;
      EXPECT_LE(stats.syncs, stats.commits) << "fault_op=" << fault_op;
      EXPECT_GT(stats.syncs, 0u) << "fault_op=" << fault_op;
    }
    auto engine = Engine::Open(opts).MoveValue();
    Collection* coll = engine->GetCollection("docs").value();
    EXPECT_EQ(coll->GetDocumentText(nullptr, precheckpoint_doc).value(),
              "<doc n=\"base\">safe</doc>");
    for (const auto& [doc_id, xml] : committed) {
      EXPECT_EQ(coll->GetDocumentText(nullptr, doc_id).value(), xml)
          << "fault_op=" << fault_op;
    }
    auto ids = coll->ListDocIds().value();
    EXPECT_EQ(ids.size(), 1 + committed.size()) << "fault_op=" << fault_op;
    uint64_t fresh =
        coll->InsertDocument(nullptr, "<post>recovery</post>").value();
    EXPECT_EQ(coll->GetDocumentText(nullptr, fresh).value(),
              "<post>recovery</post>");
    engine.reset();
    TearDown();
  }
}

TEST_F(EngineFaultTest, CheckpointSyncFaultLeavesStoreRecoverable) {
  uint64_t doc_a = 0, doc_b = 0;
  {
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    doc_a = coll->InsertDocument(nullptr, "<a>checkpointed</a>").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    doc_b = coll->InsertDocument(nullptr, "<b>walled</b>").value();
    ScopedFaultInjector fi;
    fi->Arm(FaultPoint::kTableSpaceSync, 1, FaultKind::kError);
    // The failed checkpoint must not reset the WAL: doc_b's redo record is
    // still the only durable trace of it.
    EXPECT_FALSE(crashed->Checkpoint().ok());
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc_a).value(),
            "<a>checkpointed</a>");
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc_b).value(), "<b>walled</b>");
}

// --- planner statistics durability (stats.xdb) ---

/// True when some recent event records degraded planner statistics.
bool SawStatsDegraded(Engine* engine) {
  for (const obs::Event& e : engine->RecentEvents())
    if (e.kind == obs::EventKind::kStatsDegraded) return true;
  return false;
}

// Stats written at checkpoint plus WAL replay of post-checkpoint writes
// must reproduce the exact pre-crash statistics: the reopened engine keeps
// planning cost-based, with the document counts including the replayed
// inserts (replay re-runs the same incremental maintenance the original
// inserts did).
TEST_F(EngineFaultTest, StatsSurviveCheckpointAndCrashReplay) {
  uint64_t pre_crash_epoch = 0;
  {
    Engine* crashed =
        IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    ASSERT_TRUE(coll->CreateValueIndex({"k", "/doc/k", ValueType::kString, 64})
                    .ok());
    for (int i = 0; i < 6; i++) {
      ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>a" +
                                                    std::to_string(i) +
                                                    "</k></doc>")
                      .ok());
    }
    ASSERT_TRUE(crashed->Checkpoint().ok());
    // Two more documents live only in the WAL.
    for (int i = 6; i < 8; i++) {
      ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>a" +
                                                    std::to_string(i) +
                                                    "</k></doc>")
                      .ok());
    }
    pre_crash_epoch = coll->stats()->epoch();
  }
  Engine* engine =
      IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_FALSE(SawStatsDegraded(engine));
  EXPECT_TRUE(coll->stats()->valid());
  query::CollectionStatsSnapshot snap = coll->stats()->Snapshot();
  EXPECT_EQ(snap.doc_count, 8u);
  EXPECT_EQ(snap.epoch, pre_crash_epoch);
  ASSERT_EQ(snap.indexes.count("k"), 1u);
  EXPECT_EQ(snap.indexes.at("k").entry_count, 8u);
  // And the planner actually uses them: EXPLAIN says cost-based.
  QueryOptions o;
  o.explain = true;
  auto res = coll->Query(nullptr, "/doc[k = \"a3\"]", o);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().nodes.size(), 1u);
  EXPECT_NE(res.value().profile.PlanText().find("(cost-based)"),
            std::string::npos)
      << res.value().profile.PlanText();
}

// Structural-index DDL through the full durability matrix: a create that
// made the checkpoint (catalog V4 entry + checkpointed B+tree pages), a
// create and an insert that live only in the WAL (kCreateStructuralIndex
// redo + backfill replay), then a WAL-only drop across a second crash.
TEST_F(EngineFaultTest, StructuralIndexDdlSurvivesCrashReplay) {
  {
    Engine* crashed =
        IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    ASSERT_TRUE(coll->CreateStructuralIndex({"pre_ckpt", ""}).ok());
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a><b><c>1</c></b></a>").ok());
    ASSERT_TRUE(crashed->Checkpoint().ok());
    // WAL-only tail: a per-name index (backfilled over the checkpointed
    // document) and a second document that both indexes must cover.
    ASSERT_TRUE(coll->CreateStructuralIndex({"post_ckpt", "b"}).ok());
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>2</b></a>").ok());
  }
  {
    Engine* engine =
        IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = engine->GetCollection("docs").value();
    StructuralIndex* pre = coll->FindStructuralIndex("pre_ckpt");
    StructuralIndex* post = coll->FindStructuralIndex("post_ckpt");
    ASSERT_NE(pre, nullptr);
    ASSERT_NE(post, nullptr);
    // pre_ckpt covers all names: 3 elements in doc 1, 2 in doc 2. post_ckpt
    // covers only <b>: one per document (the first via backfill replay).
    EXPECT_EQ(pre->CountEntries().value(), 5u);
    EXPECT_EQ(post->CountEntries().value(), 2u);
    QueryOptions structural;
    structural.force = ForceMethod::kStructural;
    QueryOptions scan;
    scan.force = ForceMethod::kScan;
    for (const char* q : {"//b", "//a//c", "//c"}) {
      auto a = coll->Query(nullptr, q, structural);
      auto b = coll->Query(nullptr, q, scan);
      ASSERT_TRUE(a.ok() && b.ok()) << q;
      ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size()) << q;
      for (size_t i = 0; i < a.value().nodes.size(); i++) {
        EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id) << q;
        EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id)
            << q;
      }
    }
    // Drop the all-names index and crash without a checkpoint: only the
    // kDropStructuralIndex WAL record carries the intent.
    ASSERT_TRUE(coll->DropStructuralIndex("pre_ckpt").ok());
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->FindStructuralIndex("pre_ckpt"), nullptr);
  StructuralIndex* post = coll->FindStructuralIndex("post_ckpt");
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->CountEntries().value(), 2u);
  QueryOptions structural;
  structural.force = ForceMethod::kStructural;
  auto res = coll->Query(nullptr, "//b", structural);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().nodes.size(), 2u);
}

// A fresh collection checkpointed before any write carries stats epoch 0 —
// a valid empty state, not a degradation.
TEST_F(EngineFaultTest, FreshCollectionEpochZeroStaysValidAcrossReopen) {
  {
    auto engine = Engine::Open(FileOptions()).MoveValue();
    engine->CreateCollection("docs").value();
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_FALSE(SawStatsDegraded(engine.get()));
  EXPECT_TRUE(coll->stats()->valid());
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>x</k></doc>").ok());
  EXPECT_EQ(coll->Query(nullptr, "/doc/k").value().nodes.size(), 1u);
}

// Missing or corrupt stats.xdb must never fail Open: the collection
// degrades to the Section 4.3 heuristic (logged as an event) and every
// query still answers exactly.
TEST_F(EngineFaultTest, MissingOrCorruptStatsFileDegradesToHeuristic) {
  for (int corrupt = 0; corrupt < 2; corrupt++) {
    SetUp();  // fresh dir per mode
    {
      auto engine = Engine::Open(FileOptions()).MoveValue();
      Collection* coll = engine->CreateCollection("docs").value();
      ASSERT_TRUE(
          coll->CreateValueIndex({"k", "/doc/k", ValueType::kString, 64})
              .ok());
      for (int i = 0; i < 5; i++) {
        ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>v" +
                                                      std::to_string(i) +
                                                      "</k></doc>")
                        .ok());
      }
      ASSERT_TRUE(engine->Checkpoint().ok());
    }
    std::string stats_path = dir_ + "/stats.xdb";
    ASSERT_TRUE(std::filesystem::exists(stats_path));
    if (corrupt) {
      FlipByte(stats_path, std::filesystem::file_size(stats_path) / 2, 0x40);
    } else {
      std::filesystem::remove(stats_path);
    }

    auto engine = Engine::Open(FileOptions()).MoveValue();
    Collection* coll = engine->GetCollection("docs").value();
    EXPECT_TRUE(SawStatsDegraded(engine.get())) << "corrupt=" << corrupt;
    EXPECT_FALSE(coll->stats()->valid()) << "corrupt=" << corrupt;
    QueryOptions o;
    o.explain = true;
    auto res = coll->Query(nullptr, "/doc[k = \"v2\"]", o);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res.value().nodes.size(), 1u);
    EXPECT_NE(res.value().profile.PlanText().find("(heuristic)"),
              std::string::npos)
        << res.value().profile.PlanText();
    // Writes revalidate nothing by themselves, but the next checkpoint
    // persists fresh (partially rebuilt) stats without tripping anything.
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>new</k></doc>").ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
    engine.reset();
    TearDown();
  }
}

// A stats file from an older checkpoint than the catalog (crash between
// the two writes, restored backup, …) is detected by the epoch handshake
// and degraded rather than trusted.
TEST_F(EngineFaultTest, StaleStatsFileEpochMismatchDegrades) {
  std::string stats_path = dir_ + "/stats.xdb";
  {
    auto engine = Engine::Open(FileOptions()).MoveValue();
    Collection* coll = engine->CreateCollection("docs").value();
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>one</k></doc>").ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
    std::filesystem::copy_file(stats_path, stats_path + ".old");
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>two</k></doc>").ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  // The catalog now expects the second checkpoint's epoch; hand it the
  // first checkpoint's stats instead.
  std::filesystem::remove(stats_path);
  std::filesystem::rename(stats_path + ".old", stats_path);

  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_TRUE(SawStatsDegraded(engine.get()));
  EXPECT_FALSE(coll->stats()->valid());
  auto res = coll->Query(nullptr, "/doc/k");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().nodes.size(), 2u);
}

// A catalog checkpointed before collected statistics existed (stats epoch
// 0) but holding documents must not open as "valid empty stats": the
// checkpointed documents are not in the WAL (checkpoint resets it), so the
// zero counts would never self-correct and the cost model would price full
// scans at zero forever. The collection degrades to heuristic planning.
TEST_F(EngineFaultTest, PreStatsCatalogWithDocumentsDegradesToHeuristic) {
  {
    auto engine = Engine::Open(FileOptions()).MoveValue();
    Collection* coll = engine->CreateCollection("docs").value();
    ASSERT_TRUE(coll->CreateValueIndex({"k", "/doc/k", ValueType::kString, 64})
                    .ok());
    for (int i = 0; i < 5; i++) {
      ASSERT_TRUE(coll->InsertDocument(nullptr, "<doc><k>v" +
                                                    std::to_string(i) +
                                                    "</k></doc>")
                      .ok());
    }
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  // Rewrite the catalog as a pre-stats one (epoch 0, no stats.xdb) — the
  // on-disk state a v1 engine would have left behind.
  const std::string catalog_path = dir_ + "/catalog.xdb";
  CatalogData cat = LoadCatalog(catalog_path).MoveValue();
  for (auto& [name, meta] : cat.collections) meta.stats_epoch = 0;
  ASSERT_TRUE(SaveCatalog(cat, catalog_path).ok());
  std::filesystem::remove(dir_ + "/stats.xdb");

  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_TRUE(SawStatsDegraded(engine.get()));
  EXPECT_FALSE(coll->stats()->valid());
  QueryOptions o;
  o.explain = true;
  auto res = coll->Query(nullptr, "/doc[k = \"v2\"]", o);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().nodes.size(), 1u);
  EXPECT_NE(res.value().profile.PlanText().find("(heuristic)"),
            std::string::npos)
      << res.value().profile.PlanText();
}

// --- corruption scrub & repair ---

/// Byte offset of the n-th (1-based) WAL record of `type`, or 0 if absent.
uint64_t NthWalRecordOffset(const std::string& path, WalRecordType type,
                            int n) {
  std::ifstream f(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  uint64_t pos = 0;
  int seen = 0;
  while (pos + 9 <= data.size()) {
    uint32_t len = DecodeFixed32(data.data() + pos);
    if (static_cast<WalRecordType>(data[pos + 4]) == type && ++seen == n)
      return pos;
    pos += 9 + len;
  }
  return 0;
}

TEST_F(EngineFaultTest, RecoveryWarnsAboutMidLogWalCorruption) {
  uint64_t docs[3];
  {
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    docs[0] = coll->InsertDocument(nullptr, "<d>one</d>").value();
    docs[1] = coll->InsertDocument(nullptr, "<d>two</d>").value();
    docs[2] = coll->InsertDocument(nullptr, "<d>three</d>").value();
    // Crash without flushing: the WAL is the only copy of all three.
  }
  uint64_t rec2 = NthWalRecordOffset(dir_ + "/wal.log",
                                     WalRecordType::kInsertDocument, 2);
  ASSERT_GT(rec2, 0u);
  FlipByte(dir_ + "/wal.log", rec2 + 9 + 4, 0x08);  // inside the payload

  auto engine = Engine::Open(FileOptions()).MoveValue();
  const RecoveryInfo& info = engine->recovery_info();
  EXPECT_EQ(info.wal.corrupt_records_skipped, 1u);
  EXPECT_FALSE(info.wal.torn_tail);
  EXPECT_NE(info.warning.find("corrupt mid-log"), std::string::npos)
      << info.warning;
  // Records around the damage still replay.
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, docs[0]).value(), "<d>one</d>");
  EXPECT_FALSE(coll->GetDocumentText(nullptr, docs[1]).ok());
  EXPECT_EQ(coll->GetDocumentText(nullptr, docs[2]).value(), "<d>three</d>");
}

TEST_F(EngineFaultTest, ScrubOnCleanStoreReportsClean) {
  auto engine = Engine::Open(FileOptions()).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  uint64_t doc = coll->InsertDocument(nullptr, "<ok>fine</ok>").value();
  auto rep = engine->Scrub();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep.value().clean);
  ASSERT_EQ(rep.value().collections.size(), 1u);
  const CollectionScrubReport& c = rep.value().collections[0];
  EXPECT_EQ(c.collection, "docs");
  EXPECT_GT(c.pages_scanned, 0u);
  EXPECT_EQ(c.checksum_failures, 0u);
  EXPECT_EQ(c.envelope_failures, 0u);
  EXPECT_FALSE(c.rebuilt);
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), "<ok>fine</ok>");
}

TEST_F(EngineFaultTest, ScrubCountsMatchInjectedFaults) {
  uint64_t doc = 0;
  uint64_t flipped_pages = 3;
  {
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    ASSERT_TRUE(crashed->Checkpoint().ok());
    doc = coll->InsertDocument(nullptr, "<d>payload</d>").value();
    for (int i = 0; i < 40; i++)
      coll->InsertDocument(nullptr, "<filler>" + std::to_string(i) +
                                        "</filler>")
          .value();
    ASSERT_TRUE(coll->buffer_manager()->FlushAll().ok());
  }
  // Corrupt a known number of distinct pages (skipping the header page).
  for (uint64_t p = 1; p <= flipped_pages; p++)
    FlipByte(dir_ + "/docs.xts", p * kDefaultPageSize + 100 + p, 0x20);

  auto engine = Engine::Open(FileOptions()).MoveValue();
  auto rep = engine->Scrub();
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep.value().clean);
  ASSERT_EQ(rep.value().collections.size(), 1u);
  const CollectionScrubReport& c = rep.value().collections[0];
  EXPECT_EQ(c.checksum_failures + c.envelope_failures, flipped_pages);
  EXPECT_TRUE(c.rebuilt);
  EXPECT_EQ(c.docs_lost, 0u);
  EXPECT_EQ(c.docs_salvaged + c.docs_recovered_from_wal, 41u);
  Collection* coll = engine->GetCollection("docs").value();
  EXPECT_EQ(coll->GetDocumentText(nullptr, doc).value(), "<d>payload</d>");
  EXPECT_EQ(coll->DocCount().value(), 41u);
}

// The tentpole acceptance test: flip one byte in *every* page of a populated
// table space (one page at a time, fresh store each time). Required
// invariants: the store always opens; every pre-repair read is either
// correct or kCorruption — never a wrong answer, never a crash; Scrub()
// always succeeds; after Scrub() every document reads back correct and
// nothing is lost (every insert is still in the WAL); a second Scrub()
// reports clean.
TEST_F(EngineFaultTest, BitFlipSweepNeverWrongNeverLost) {
  std::map<uint64_t, std::string> expected;
  {
    Engine* crashed = IntentionallyLeaked(Engine::Open(FileOptions()).MoveValue().release());
    Collection* coll = crashed->CreateCollection("docs").value();
    // Checkpoint first so the catalog knows the collection while every
    // insert's redo record stays in the WAL (nothing may be lost below).
    ASSERT_TRUE(crashed->Checkpoint().ok());
    for (int i = 0; i < 6; i++) {
      std::string xml = "<doc n=\"" + std::to_string(i) + "\"><v>" +
                        std::to_string(i * 1234567) + "</v></doc>";
      uint64_t id = coll->InsertDocument(nullptr, xml).value();
      expected[id] = xml;
    }
    // One document big enough to span overflow chains.
    std::string big = "<big>" + std::string(20000, 'x') + "</big>";
    uint64_t big_id = coll->InsertDocument(nullptr, big).value();
    expected[big_id] = big;
    ASSERT_TRUE(coll->buffer_manager()->FlushAll().ok());
    // Crash idiom: leak the engine so nothing checkpoints.
  }
  const std::string space = dir_ + "/docs.xts";
  const uint64_t pages =
      std::filesystem::file_size(space) / kDefaultPageSize;
  ASSERT_GT(pages, 8u) << "workload too small to be a meaningful sweep";

  const std::string pristine = dir_ + "_pristine";
  std::filesystem::remove_all(pristine);
  std::filesystem::copy(dir_, pristine,
                        std::filesystem::copy_options::recursive);

  for (uint64_t page = 0; page < pages; page++) {
    SCOPED_TRACE("page=" + std::to_string(page));
    std::filesystem::remove_all(dir_);
    std::filesystem::copy(pristine, dir_,
                          std::filesystem::copy_options::recursive);
    // Vary the offset within the page so headers, payload bytes, and slot
    // directories all get hit across the sweep.
    uint64_t off = page * kDefaultPageSize + (page * 997 + 13) % kDefaultPageSize;
    FlipByte(space, off, 1u << (page % 8));

    auto opened = Engine::Open(FileOptions());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto engine = opened.MoveValue();
    Collection* coll = engine->GetCollection("docs").value();

    // Phase 1 — detection: right answer or a corruption error, nothing else.
    size_t refused = 0;
    for (const auto& [id, xml] : expected) {
      auto text = coll->GetDocumentText(nullptr, id);
      if (text.ok()) {
        EXPECT_EQ(text.value(), xml) << "silent wrong answer, doc " << id;
      } else {
        EXPECT_TRUE(text.status().IsCorruption()) << text.status().ToString();
        refused++;
      }
    }

    // Phase 2 — repair.
    auto rep = engine->Scrub();
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    uint64_t lost = 0;
    for (const auto& c : rep.value().collections) lost += c.docs_lost;
    EXPECT_EQ(lost, 0u);
    if (refused > 0 ||
        !engine->recovery_info().quarantined_collections.empty()) {
      EXPECT_FALSE(rep.value().clean)
          << "reads failed but the scrub saw nothing";
    }

    // Phase 3 — everything is back, bit for bit.
    for (const auto& [id, xml] : expected) {
      auto text = coll->GetDocumentText(nullptr, id);
      ASSERT_TRUE(text.ok()) << "doc " << id << " lost: "
                             << text.status().ToString();
      EXPECT_EQ(text.value(), xml);
    }

    // Phase 4 — the repaired store passes a clean scrub.
    auto rep2 = engine->Scrub();
    ASSERT_TRUE(rep2.ok()) << rep2.status().ToString();
    EXPECT_TRUE(rep2.value().clean);
  }
  std::filesystem::remove_all(pristine);
}

// ---------------------------------------------------------------------------
// Replication fault sweep: every way a delivery can go wrong — torn segment
// tails, mid-segment bit flips on the spool, a primary crash mid-ship, and a
// promotion that races stale deliveries — must end in either convergence to
// the primary's exact state or an explicit refusal. Never a wrong answer.
// ---------------------------------------------------------------------------

class ReplFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("xdb_fault_repl_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter_++)))
            .string();
    primary_dir_ = stem + "_p";
    replica_dir_ = stem + "_r";
    spool_dir_ = stem + "_s";
    for (const std::string& d : {primary_dir_, replica_dir_, spool_dir_}) {
      std::filesystem::remove_all(d);
      std::filesystem::create_directories(d);
    }
  }
  void TearDown() override {
    for (const std::string& d : {primary_dir_, replica_dir_, spool_dir_})
      std::filesystem::remove_all(d);
  }

  EngineOptions PrimaryOptions() {
    EngineOptions opts;
    opts.dir = primary_dir_;
    return opts;
  }
  EngineOptions ReplicaOptions() {
    EngineOptions opts;
    opts.dir = replica_dir_;
    opts.replica = true;
    return opts;
  }

  static void Pump(repl::WalShipper* shipper, repl::ReplicaApplier* applier,
                   int rounds = 8) {
    for (int i = 0; i < rounds; i++) {
      Status s = shipper->ShipAll();
      ASSERT_TRUE(s.ok()) << s.ToString();
      s = applier->CatchUp();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  }

  std::string primary_dir_, replica_dir_, spool_dir_;
  static int counter_;
};
int ReplFaultTest::counter_ = 0;

// Torn deliveries at every interesting cut point: inside the magic, inside
// the header, one byte into the payload, one byte short of complete. Each
// truncated segment must be quarantined (corrupt counter), trigger a resync,
// and the stream must converge to the exact document set.
TEST_F(ReplFaultTest, TruncatedDeliverySweepQuarantinesAndResyncs) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  repl::InProcessTransport transport;
  repl::WalShipper shipper(primary.get(), &transport);
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>seed</a>").ok());
  Pump(&shipper, applier.get());

  const uint32_t cuts[] = {0, 2, static_cast<uint32_t>(repl::kSegmentHeaderSize) - 1,
                           static_cast<uint32_t>(repl::kSegmentHeaderSize) + 1, 48};
  uint64_t expect_docs = 1;
  for (uint32_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>cut" + std::to_string(cut) +
                                                  "</a>")
                    .ok());
    expect_docs++;
    ScopedFaultInjector fi;
    // bytes = 4 | (len << 8): truncate the next delivery to `cut` bytes.
    fi->Arm(FaultPoint::kShipTransport, 1, FaultKind::kNetworkError,
            4u + (static_cast<uint64_t>(cut) << 8));
    Pump(&shipper, applier.get());
    ASSERT_EQ(replica->applied_csn(), shipper.shipped_csn());
    ASSERT_EQ(replica->GetCollection("docs").value()->DocCount().value(),
              expect_docs);
  }
  const auto snap = replica->MetricsSnapshot();
  // Every cut except ones that happened to keep the segment whole was
  // detected; resyncs healed them all.
  EXPECT_GE(snap.Value("repl.apply.corrupt_segments"), 4u);
  const auto psnap = primary->MetricsSnapshot();
  EXPECT_GE(psnap.Value("repl.ship.resyncs"), 4u);
}

// Media corruption on the shipping spool itself: flip one byte of a spooled
// segment file before the replica reads it. The CRC catches it, the applier
// requests a resync, and fresh segments (written after the resync rewound
// the shipper) converge the replica. The flipped file stays quarantined on
// disk — it is simply never read again.
TEST_F(ReplFaultTest, SpoolBitFlipSweepHealsViaResync) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  auto transport = repl::FileTransport::Open(spool_dir_).MoveValue();
  repl::WalShipper shipper(primary.get(), transport.get());
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), transport.get()).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();

  uint64_t expect_docs = 0;
  // Sweep the flip across header bytes, the CRC field, and payload bytes.
  const uint64_t offsets[] = {0, 4, 13, 21, 25, 29,
                              repl::kSegmentHeaderSize + 7,
                              repl::kSegmentHeaderSize + 63};
  for (uint64_t off : offsets) {
    SCOPED_TRACE("offset=" + std::to_string(off));
    ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>f" + std::to_string(off) +
                                                  "</a>")
                    .ok());
    expect_docs++;
    // Ship (spools a fresh segment file) but do not apply yet.
    ASSERT_TRUE(shipper.ShipAll().ok());
    ASSERT_GT(transport->next_write_seq(), 0u);
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%08llu",
                  static_cast<unsigned long long>(transport->next_write_seq() -
                                                  1));
    const std::string path = spool_dir_ + "/" + name;
    const uint64_t size = std::filesystem::file_size(path);
    FlipByte(path, off % size, 1u << (off % 8));
    // Apply sees the damage, resyncs; subsequent rounds re-ship cleanly.
    Pump(&shipper, applier.get());
    ASSERT_EQ(replica->applied_csn(), shipper.shipped_csn());
    ASSERT_EQ(replica->GetCollection("docs").value()->DocCount().value(),
              expect_docs);
  }
  // Not every flip lands in CRC-covered bytes: a stream_offset flip shows
  // up as a continuity gap, and flips in the advisory wal_gen/record_count
  // fields deliver a byte-identical payload (harmless by construction).
  // Magic, length, CRC and payload flips must all be caught as corruption.
  const auto snap = replica->MetricsSnapshot();
  EXPECT_GE(snap.Value("repl.apply.corrupt_segments"), 4u);
  EXPECT_GE(snap.Value("repl.apply.corrupt_segments") +
                snap.Value("repl.apply.gaps"),
            5u);
}

// Primary crashes mid-ship: some segments delivered, some not, then the
// machine dies. A reopened primary (fresh shipper, stream position zero)
// re-ships from genesis; the replica skips exact duplicates and resyncs on
// the first segment that straddles its watermark. No document is lost,
// duplicated, or torn.
TEST_F(ReplFaultTest, PrimaryCrashMidShipResyncsExactlyOnce) {
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  repl::InProcessTransport transport;
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), &transport).MoveValue();

  {
    Engine* crashed = IntentionallyLeaked(
        Engine::Open(PrimaryOptions()).MoveValue().release());
    repl::ShipperOptions sopts;
    sopts.max_segment_bytes = 96;  // several segments for 12 docs
    repl::WalShipper shipper(crashed, &transport, sopts);
    Collection* coll = crashed->CreateCollection("docs").value();
    for (int i = 0; i < 12; i++)
      ASSERT_TRUE(
          coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
              .ok());
    // Ship a strict prefix, apply it, then crash with the rest unshipped.
    ASSERT_TRUE(shipper.ShipOnce().value());
    ASSERT_TRUE(shipper.ShipOnce().value());
    ASSERT_TRUE(applier->CatchUp().ok());
    ASSERT_GT(replica->applied_csn(), 0u);
    ASSERT_LT(replica->applied_csn(), crashed->wal()->size());
  }

  // Reopen: WAL replay restores all 12 documents on the primary. The new
  // shipper knows nothing of the old one's progress and uses different
  // segment boundaries, so its early segments are duplicates and at least
  // one straddles the replica's watermark — exercising both heal paths.
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  repl::ShipperOptions sopts;
  sopts.max_segment_bytes = 200;
  repl::WalShipper shipper(primary.get(), &transport, sopts);
  Pump(&shipper, applier.get(), /*rounds=*/12);

  EXPECT_EQ(replica->applied_csn(), shipper.shipped_csn());
  Collection* rcoll = replica->GetCollection("docs").value();
  ASSERT_EQ(rcoll->DocCount().value(), 12u);
  for (uint64_t d = 1; d <= 12; d++)
    EXPECT_EQ(rcoll->GetDocumentText(nullptr, d).value(),
              "<a>" + std::to_string(d - 1) + "</a>");
  const auto snap = replica->MetricsSnapshot();
  EXPECT_GT(snap.Value("repl.apply.duplicates") +
                snap.Value("repl.apply.gaps"),
            0u);
}

// Promote under fire: deliveries are being dropped when the replica is
// promoted. Whatever prefix it applied is exactly a prefix of the primary's
// history (never a torn or reordered subset), the promoted node accepts its
// own writes, and everything the stale primary ships afterwards is refused.
TEST_F(ReplFaultTest, PromoteUnderFaultsKeepsTimelinesApart) {
  auto primary = Engine::Open(PrimaryOptions()).MoveValue();
  auto replica = Engine::Open(ReplicaOptions()).MoveValue();
  repl::InProcessTransport transport;
  repl::ShipperOptions sopts;
  sopts.max_segment_bytes = 96;
  repl::WalShipper shipper(primary.get(), &transport, sopts);
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("docs").value();

  ScopedFaultInjector fi;
  fi->Arm(FaultPoint::kShipTransport, 3, FaultKind::kNetworkError, 1);  // drop
  fi->Arm(FaultPoint::kShipTransport, 5, FaultKind::kNetworkError, 1);  // drop
  for (int i = 0; i < 10; i++)
    ASSERT_TRUE(
        coll->InsertDocument(nullptr, "<a>" + std::to_string(i) + "</a>")
            .ok());
  // One ship pass + one apply pass only: with drops armed the replica is
  // likely mid-stream, possibly stalled on a gap. Promote right there.
  ASSERT_TRUE(shipper.ShipAll().ok());
  ASSERT_TRUE(applier->CatchUp().ok());

  ASSERT_TRUE(applier->Promote().ok());
  Collection* rcoll = replica->GetCollection("docs").value();
  const uint64_t kept = rcoll->DocCount().value();
  ASSERT_LE(kept, 10u);
  // Prefix property: every surviving document is bit-identical to the
  // primary's copy — applied segments are whole records in order.
  for (uint64_t d = 1; d <= kept; d++)
    EXPECT_EQ(rcoll->GetDocumentText(nullptr, d).value(),
              "<a>" + std::to_string(d - 1) + "</a>");

  // The new timeline diverges...
  ASSERT_TRUE(rcoll->InsertDocument(nullptr, "<a>newborn</a>").ok());
  // ...and the old primary keeps writing and shipping into the void. The
  // first rounds may spend themselves on gap-resync housekeeping (the
  // replica was possibly stalled when promoted), but the moment a segment
  // actually lines up with the watermark the promoted node refuses it.
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a>stale</a>").ok());
  bool refused = false;
  for (int round = 0; round < 6 && !refused; round++) {
    ASSERT_TRUE(shipper.ShipAll().ok());
    Status s = applier->CatchUp();
    if (s.IsNotSupported()) {
      refused = true;
    } else {
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    ASSERT_EQ(rcoll->DocCount().value(), kept + 1)
        << "stale timeline leaked into the promoted node";
  }
  EXPECT_TRUE(refused);
  EXPECT_EQ(rcoll->DocCount().value(), kept + 1);
  EXPECT_EQ(rcoll->GetDocumentText(nullptr, kept + 1).value(),
            "<a>newborn</a>");
}

}  // namespace
}  // namespace testing
}  // namespace xdb
