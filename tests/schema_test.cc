// Schema subsystem tests: language parsing, Glushkov-DFA compilation, binary
// round trip, and validation-VM behaviour (content models, attributes,
// simple types, annotations).
#include <gtest/gtest.h>

#include "schema/schema_compiler.h"
#include "schema/schema_parser.h"
#include "schema/validator_vm.h"
#include "util/workload.h"
#include "xml/parser.h"

namespace xdb {
namespace schema {
namespace {

const char* kSchemaText = R"(
schema shop;
root Order;
element Order {
  attribute id: integer required;
  attribute priority: string optional;
  content: Customer, Item+, (GiftNote | Coupon)?;
}
element Customer { text: string; }
element Item {
  attribute sku: string required;
  content: Qty, Price;
}
element Qty { text: integer; }
element Price { text: decimal; }
element GiftNote { mixed; }
element Coupon { empty; }
)";

TEST(SchemaParserTest, ParsesDeclarations) {
  auto doc = ParseSchema(kSchemaText);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().name, "shop");
  EXPECT_EQ(doc.value().root, "Order");
  EXPECT_EQ(doc.value().elements.size(), 7u);
  const ElementDecl& order = doc.value().elements[0];
  EXPECT_EQ(order.name, "Order");
  ASSERT_EQ(order.attrs.size(), 2u);
  EXPECT_TRUE(order.attrs[0].required);
  EXPECT_EQ(order.attrs[0].type, SimpleType::kInteger);
  EXPECT_FALSE(order.attrs[1].required);
  EXPECT_EQ(order.content, ContentKind::kChildren);
}

TEST(SchemaParserTest, RejectsUndeclaredReferences) {
  EXPECT_FALSE(ParseSchema("element A { content: Missing; }").ok());
  EXPECT_FALSE(ParseSchema("root Nope; element A { empty; }").ok());
  EXPECT_FALSE(
      ParseSchema("element A { empty; } element A { empty; }").ok());
  EXPECT_FALSE(ParseSchema("element A { text: bogustype; }").ok());
}

TEST(SchemaCompilerTest, DfaAcceptsAndRejects) {
  auto cs = CompileSchemaText(kSchemaText).MoveValue();
  int order = cs.FindElement("Order");
  ASSERT_GE(order, 0);
  const CompiledElement& e = cs.elements()[order];
  EXPECT_EQ(e.content, ContentKind::kChildren);
  EXPECT_GE(e.symbols.size(), 4u);  // Customer, Item, GiftNote, Coupon
  EXPECT_GT(e.trans.size(), 1u);
  EXPECT_EQ(cs.FindElement("NoSuch"), -1);
}

class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cs_ = CompileSchemaText(kSchemaText).MoveValue();
  }

  Status Validate(const std::string& xml, TokenWriter* out = nullptr) {
    Parser parser(&dict_);
    TokenWriter tokens;
    XDB_RETURN_NOT_OK(parser.Parse(xml, &tokens));
    TokenWriter local;
    ValidatorVm vm(&cs_, &dict_);
    return vm.Validate(tokens.data(), out != nullptr ? out : &local);
  }

  CompiledSchema cs_;
  NameDictionary dict_;
};

TEST_F(ValidatorTest, AcceptsValidDocument) {
  Status st = Validate(
      "<Order id=\"42\"><Customer>Ann</Customer>"
      "<Item sku=\"X\"><Qty>2</Qty><Price>9.99</Price></Item>"
      "<Item sku=\"Y\"><Qty>1</Qty><Price>3.50</Price></Item>"
      "<GiftNote>Happy <b>day</b>!</GiftNote></Order>");
  // GiftNote is mixed but <b> is undeclared -> that IS an error; use only
  // declared elements inside mixed content.
  EXPECT_FALSE(st.ok());
  st = Validate(
      "<Order id=\"42\"><Customer>Ann</Customer>"
      "<Item sku=\"X\"><Qty>2</Qty><Price>9.99</Price></Item>"
      "<GiftNote>Happy day!</GiftNote></Order>");
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ValidatorTest, OptionalTailAndEmptyElement) {
  EXPECT_TRUE(Validate("<Order id=\"1\"><Customer>B</Customer>"
                       "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                       "<Coupon/></Order>")
                  .ok());
  EXPECT_TRUE(Validate("<Order id=\"1\"><Customer>B</Customer>"
                       "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                       "</Order>")
                  .ok());
}

TEST_F(ValidatorTest, RejectsOrderViolations) {
  // Item before Customer.
  EXPECT_FALSE(Validate("<Order id=\"1\">"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "<Customer>B</Customer></Order>")
                   .ok());
  // Missing required Item.
  EXPECT_FALSE(Validate("<Order id=\"1\"><Customer>B</Customer></Order>").ok());
  // Both GiftNote and Coupon (only one allowed).
  EXPECT_FALSE(Validate("<Order id=\"1\"><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "<GiftNote>x</GiftNote><Coupon/></Order>")
                   .ok());
}

TEST_F(ValidatorTest, RejectsAttributeViolations) {
  // Missing required id.
  EXPECT_FALSE(Validate("<Order><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "</Order>")
                   .ok());
  // Undeclared attribute.
  EXPECT_FALSE(Validate("<Order id=\"1\" bogus=\"x\"><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "</Order>")
                   .ok());
  // id must be an integer.
  EXPECT_FALSE(Validate("<Order id=\"forty-two\"><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "</Order>")
                   .ok());
}

TEST_F(ValidatorTest, RejectsTypeViolations) {
  EXPECT_FALSE(Validate("<Order id=\"1\"><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>lots</Qty><Price>1</Price></Item>"
                        "</Order>")
                   .ok());
  EXPECT_FALSE(Validate("<Order id=\"1\"><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>cheap</Price>"
                        "</Item></Order>")
                   .ok());
}

TEST_F(ValidatorTest, RejectsTextInElementContent) {
  EXPECT_FALSE(Validate("<Order id=\"1\">stray text<Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "</Order>")
                   .ok());
  // Whitespace between children is fine.
  EXPECT_TRUE(Validate("<Order id=\"1\">\n  <Customer>B</Customer>\n  "
                       "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>\n"
                       "</Order>")
                  .ok());
}

TEST_F(ValidatorTest, RejectsWrongRootAndUnknownElements) {
  EXPECT_FALSE(Validate("<Customer>hi</Customer>").ok());
  EXPECT_FALSE(Validate("<Order id=\"1\"><Customer>B</Customer>"
                        "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item>"
                        "<Martian/></Order>")
                   .ok());
}

TEST_F(ValidatorTest, AnnotatesTypes) {
  TokenWriter out;
  ASSERT_TRUE(Validate("<Order id=\"7\"><Customer>B</Customer>"
                       "<Item sku=\"s\"><Qty>3</Qty><Price>19.99</Price>"
                       "</Item></Order>",
                       &out)
                  .ok());
  TokenReader reader(out.data());
  Token t;
  bool saw_decimal_text = false, saw_integer_attr = false;
  for (;;) {
    auto more = reader.Next(&t);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    if (t.kind == TokenKind::kText && t.type == TypeAnno::kDecimal)
      saw_decimal_text = true;
    if (t.kind == TokenKind::kAttribute && t.type == TypeAnno::kInteger)
      saw_integer_attr = true;
  }
  EXPECT_TRUE(saw_decimal_text);
  EXPECT_TRUE(saw_integer_attr);
}

TEST_F(ValidatorTest, BinaryRoundTripValidatesIdentically) {
  std::string binary;
  cs_.Serialize(&binary);
  auto reloaded = CompiledSchema::Deserialize(binary);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  const std::string good =
      "<Order id=\"1\"><Customer>B</Customer>"
      "<Item sku=\"s\"><Qty>1</Qty><Price>1</Price></Item></Order>";
  const std::string bad =
      "<Order id=\"1\"><Customer>B</Customer></Order>";

  Parser parser(&dict_);
  for (const auto& [xml, expect_ok] :
       {std::pair{good, true}, std::pair{bad, false}}) {
    TokenWriter tokens, out;
    ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
    ValidatorVm vm(&reloaded.value(), &dict_);
    EXPECT_EQ(vm.Validate(tokens.data(), &out).ok(), expect_ok);
  }
}

TEST(CatalogSchemaTest, MatchesGeneratedCatalogs) {
  auto cs = CompileSchemaText(workload::CatalogSchemaText()).MoveValue();
  NameDictionary dict;
  Parser parser(&dict);
  Random rng(31);
  workload::CatalogOptions opts;
  opts.categories = 2;
  opts.products_per_category = 8;
  for (int i = 0; i < 5; i++) {
    std::string xml = workload::GenCatalogXml(&rng, opts);
    TokenWriter tokens, out;
    ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
    ValidatorVm vm(&cs, &dict);
    Status st = vm.Validate(tokens.data(), &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

TEST(GlushkovTest, StarPlusOptCombinations) {
  auto cs = CompileSchemaText(R"(
root R;
element R { content: (A, B?)+, C*; }
element A { empty; }
element B { empty; }
element C { empty; }
)")
                .MoveValue();
  NameDictionary dict;
  Parser parser(&dict);
  auto check = [&](const std::string& xml, bool expect_ok) {
    TokenWriter tokens, out;
    ASSERT_TRUE(parser.Parse(xml, &tokens).ok());
    ValidatorVm vm(&cs, &dict);
    EXPECT_EQ(vm.Validate(tokens.data(), &out).ok(), expect_ok) << xml;
  };
  check("<R><A/></R>", true);
  check("<R><A/><B/></R>", true);
  check("<R><A/><B/><A/><C/><C/></R>", true);
  check("<R><A/><A/><A/></R>", true);
  check("<R></R>", false);       // at least one A
  check("<R><B/></R>", false);   // B cannot lead
  check("<R><A/><C/><A/></R>", false);  // A cannot follow C
  check("<R><C/></R>", false);
}

}  // namespace
}  // namespace schema
}  // namespace xdb
