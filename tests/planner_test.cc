// Planner regression suite: pins the cost-based access-path choice (and its
// EXPLAIN rendering, cardinality funnel included) at the statistics-driven
// crossover points the paper's Section 4.3 rules approximate:
//
//  1. Collection size  — tiny collections full-scan, grown ones probe the
//     index (the SAME query flips when only the stats move).
//  2. Selectivity      — a probe that matches everything costs more than the
//     scan it fails to avoid; distinct keys make the list path win.
//  3. Records per doc  — single-record documents evaluate whole docs off a
//     DocID list; multi-record documents anchor at node level (the old
//     "> 2 records/doc" rule emerges from the cost arithmetic).
//
// Every golden pins PlanText() exactly: access path, cost breakdown, stats
// line (epoch, docs, records/doc, nodes/doc), plan-cache state, and the
// postings -> candidates -> evaluated -> results funnel. If a cost-constant
// or estimator change moves a crossover, these tests are the tripwire.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "leak_check.h"

namespace xdb {
namespace {

std::unique_ptr<Engine> MemEngine() {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  return Engine::Open(opts).MoveValue();
}

std::string BookDoc(int i) {
  return "<lib><book><title>t" + std::to_string(i) + "</title></book></lib>";
}

std::string Explain(Collection* coll, const std::string& xpath) {
  QueryOptions o;
  o.explain = true;
  auto res = coll->Query(nullptr, xpath, o);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  if (!res.ok()) return "";
  return res.value().profile.PlanText();
}

// Crossover 1: collection size. Two documents -> the full scan is cheaper
// than one B-tree descent; forty documents -> the index probe wins. Same
// query text, same index — only the statistics (and their epoch) changed.
TEST(PlannerCrossoverTest, CollectionSizeFlipsScanToDocList) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"title", "/lib/book/title", ValueType::kString, 128})
                  .ok());
  for (int i = 0; i < 2; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i)).ok());

  EXPECT_EQ(Explain(coll, "/lib/book[title = \"t1\"]"),
            "query: /lib/book[title = \"t1\"]\n"
            "access path: full-scan (cost: full-scan=34* docid-list=41 "
            "nodeid-list=60; est postings=1 docs=1)\n"
            "stats: epoch=3 docs=2 records/doc=1.00 nodes/doc=4.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=0 candidate_docs=2 candidate_anchors=0"
            " docs_evaluated=2 records_fetched=2 results=1\n"
            "scan: events=18 instances=8 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");

  for (int i = 2; i < 40; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i)).ok());

  EXPECT_EQ(Explain(coll, "/lib/book[title = \"t1\"]"),
            "query: /lib/book[title = \"t1\"]\n"
            "access path: docid-list (cost: full-scan=672 "
            "docid-list=41* nodeid-list=60; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=41 docs=40 records/doc=1.00 nodes/doc=4.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no\n"
            "cardinality: postings=1 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=9 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
}

// Crossover 2: selectivity. Same collection size, same query shape; an index
// whose every key is identical emits every posting (the probe saves
// nothing), while a distinct-keyed index emits one.
TEST(PlannerCrossoverTest, SelectivityFlipsDocListToScan) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"cat", "/lib/book/cat", ValueType::kString, 128})
                  .ok());
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"title", "/lib/book/title", ValueType::kString, 128})
                  .ok());
  for (int i = 0; i < 30; i++) {
    std::string doc = "<lib><book><title>t" + std::to_string(i) +
                      "</title><cat>fiction</cat></book></lib>";
    ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
  }

  // Every book is "fiction": the probe would emit all 30 postings and then
  // evaluate all 30 documents anyway — the cost model keeps the scan.
  EXPECT_EQ(Explain(coll, "/lib/book[cat = \"fiction\"]"),
            "query: /lib/book[cat = \"fiction\"]\n"
            "access path: full-scan (cost: full-scan=576* docid-list=602 "
            "nodeid-list=1106; est postings=30 docs=30)\n"
            "stats: epoch=32 docs=30 records/doc=1.00 nodes/doc=6.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=0 candidate_docs=30 candidate_anchors=0"
            " docs_evaluated=30 records_fetched=30 results=30\n"
            "scan: events=360 instances=120 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");

  // Distinct titles: one expected posting, one candidate document.
  EXPECT_EQ(Explain(coll, "/lib/book[title = \"t7\"]"),
            "query: /lib/book[title = \"t7\"]\n"
            "access path: docid-list (cost: full-scan=576 "
            "docid-list=43* nodeid-list=60; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=32 docs=30 records/doc=1.00 nodes/doc=6.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no\n"
            "cardinality: postings=1 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=12 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
}

// Crossover 3: records per document. Small documents (one record each) fetch
// whole candidates off the DocID list; fat documents packed into many
// records anchor at node level so only the matching subtree is fetched. The
// paper's "> 2 records per document" rule falls out of the arithmetic.
TEST(PlannerCrossoverTest, RecordsPerDocFlipsDocListToNodeList) {
  auto engine = MemEngine();
  CollectionOptions small_records;
  small_records.record_budget = 64;  // force multi-record packing
  Collection* thin = engine->CreateCollection("thin").value();
  Collection* fat = engine->CreateCollection("fat", small_records).value();
  for (Collection* coll : {thin, fat}) {
    ASSERT_TRUE(coll->CreateValueIndex(
                        {"title", "/lib/book/title", ValueType::kString, 128})
                    .ok());
    for (int i = 0; i < 40; i++) {
      std::string doc = "<lib><book><title>t" + std::to_string(i) +
                        "</title>";
      for (int j = 0; j < 6; j++)
        doc += "<blurb>some longer prose to fill the record budget " +
               std::to_string(j) + "</blurb>";
      doc += "</book></lib>";
      ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
    }
  }

  // Default budget: each document is one record; fetch-and-eval is cheap.
  EXPECT_EQ(Explain(thin, "/lib/book[title = \"t5\"]"),
            "query: /lib/book[title = \"t5\"]\n"
            "access path: docid-list (cost: full-scan=1248 "
            "docid-list=55* nodeid-list=60; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=41 docs=40 records/doc=1.00 nodes/doc=16.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no\n"
            "cardinality: postings=1 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=27 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");

  // Tight budget: five records per document make whole-document evaluation
  // expensive; the NodeID list fetches the anchor subtree instead.
  EXPECT_EQ(Explain(fat, "/lib/book[title = \"t5\"]"),
            "query: /lib/book[title = \"t5\"]\n"
            "access path: nodeid-list (cost: full-scan=2208 docid-list=79 "
            "nodeid-list=60*; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=41 docs=40 records/doc=5.00 nodes/doc=16.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no  anchor step: 1\n"
            "cardinality: postings=1 candidate_docs=0 candidate_anchors=1"
            " docs_evaluated=0 records_fetched=4 results=1\n"
            "scan: events=23 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
}

// Crossover 4: structural index. A descendant query has no value predicate
// to probe, so historically it always full-scanned. With a covering
// structural index the cost model compares an interval scan (price per
// matching anchor) against the collection scan (price per stored node):
// a rare element in deep documents flips to structural-scan, while the
// spine element that IS most of the collection stays on the scan. Same
// index, same statistics — only the anchor-count estimate differs.
TEST(PlannerCrossoverTest, StructuralIndexFlipsScanForSelectiveDescendant) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("deep").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  for (int i = 0; i < 8; i++) {
    std::string doc;
    for (int l = 0; l < 50; l++) doc += "<a>";
    doc += "<t>payload" + std::to_string(i) + "</t>";
    for (int l = 0; l < 50; l++) doc += "</a>";
    ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
  }

  // One <t> per document, buried 50 levels down: eight interval probes
  // beat re-scanning 416 stored nodes.
  EXPECT_EQ(Explain(coll, "//t"),
            "query: //t\n"
            "access path: structural-scan (cost: full-scan=595 "
            "structural=312*; est anchors=8)\n"
            "  probe: structural element 't' ... index 'structure' "
            "(interval)\n"
            "stats: epoch=9 docs=8 records/doc=1.00 nodes/doc=52.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=8 candidate_docs=0 candidate_anchors=8"
            " docs_evaluated=0 records_fetched=8 results=8\n"
            "scan: events=24 instances=24 peak_live=3\n"
            "parallelism: 1 (chunks=1)\n");

  // <a> is 400 of the 416 elements: the estimator prices 400 anchor
  // rechecks and keeps the full scan.
  EXPECT_EQ(Explain(coll, "//a"),
            "query: //a\n"
            "access path: full-scan (cost: full-scan=595* "
            "structural=26680; est anchors=400)\n"
            "stats: epoch=9 docs=8 records/doc=1.00 nodes/doc=52.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=0 candidate_docs=8 candidate_anchors=0"
            " docs_evaluated=8 records_fetched=8 results=400\n"
            "scan: events=840 instances=408 peak_live=51\n"
            "parallelism: 1 (chunks=1)\n");

  // The heuristic planner predates the cost model and stays conservative:
  // it never chooses the structural path on its own.
  QueryOptions heur;
  heur.explain = true;
  heur.use_heuristic_planner = true;
  auto h = coll->Query(nullptr, "//t", heur);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().profile.access_method, "full-scan");
  EXPECT_EQ(h.value().profile.PlanText().find("structural"),
            std::string::npos);

  // Whatever the access path, the answer is the scan's answer.
  QueryOptions forced;
  forced.force = ForceMethod::kStructural;
  QueryOptions scan;
  scan.force = ForceMethod::kScan;
  auto a = coll->Query(nullptr, "//t", forced);
  auto b = coll->Query(nullptr, "//t", scan);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size());
  for (size_t i = 0; i < a.value().nodes.size(); i++) {
    EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id);
    EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id);
  }
}

// A descendant-branch conjunct (predicate path with strip_levels == -1,
// e.g. //book[.//price = 7]) used to disqualify the node-level plan: the
// probe's postings are <price> nodes, not <book> anchors. With a covering
// structural index the planner now keeps the node plan and joins each
// posting upward to its enclosing anchor through the (pre, post)
// intervals. Pinned via the forced node plan so the golden stays stable
// as cost constants move.
TEST(PlannerCrossoverTest, DescendantConjunctAnchorsThroughStructuralIndex) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("shop").value();
  ASSERT_TRUE(coll->CreateStructuralIndex({"structure", ""}).ok());
  ASSERT_TRUE(
      coll->CreateValueIndex({"price", "//price", ValueType::kDouble, 128})
          .ok());
  for (int i = 0; i < 12; i++) {
    std::string doc = "<shop><book><info><price>" + std::to_string(i) +
                      "</price></info><title>b" + std::to_string(i) +
                      "</title></book></shop>";
    ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
  }

  QueryOptions o;
  o.explain = true;
  o.force = ForceMethod::kNodeIdList;
  auto res = coll->Query(nullptr, "//book[.//price = 7]", o);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().profile.PlanText(),
            "query: //book[self::node()//price = 7.000000]\n"
            "access path: nodeid-list (forced)\n"
            "  probe: //book//price = ... index 'price' (filtering)\n"
            "  probe: structural element 'book' ... index 'structure' "
            "(interval, anchor join)\n"
            "  combine: ANDing\n"
            "stats: epoch=14 docs=12 records/doc=1.00 nodes/doc=7.00 "
            "(heuristic)\n"
            "plan cache: miss\n"
            "recheck: yes  anchor step: 0\n"
            "cardinality: postings=13 candidate_docs=0 candidate_anchors=1"
            " docs_evaluated=0 records_fetched=1 results=1\n"
            "scan: events=10 instances=5 peak_live=5\n"
            "parallelism: 1 (chunks=1)\n");

  // Anchored plan ≡ scan, node for node, across every match.
  for (int v = 0; v < 12; v++) {
    std::string q = "//book[.//price = " + std::to_string(v) + "]";
    QueryOptions forced;
    forced.force = ForceMethod::kNodeIdList;
    QueryOptions scan;
    scan.force = ForceMethod::kScan;
    auto a = coll->Query(nullptr, q, forced);
    auto b = coll->Query(nullptr, q, scan);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size()) << q;
    for (size_t i = 0; i < a.value().nodes.size(); i++) {
      EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id) << q;
      EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id) << q;
    }
  }
}

// The answers must not depend on the planner flavor: force the heuristic on
// the size-crossover collection and compare node-for-node.
TEST(PlannerCrossoverTest, CostBasedAndHeuristicAgree) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"title", "/lib/book/title", ValueType::kString, 128})
                  .ok());
  for (int i = 0; i < 25; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i % 7)).ok());
  for (const char* q :
       {"/lib/book[title = \"t1\"]", "/lib/book[title = \"t9\"]",
        "/lib/book[title > \"t3\"]", "/lib/book/title"}) {
    QueryOptions cost;
    QueryOptions heur;
    heur.use_heuristic_planner = true;
    auto a = coll->Query(nullptr, q, cost);
    auto b = coll->Query(nullptr, q, heur);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size()) << q;
    for (size_t i = 0; i < a.value().nodes.size(); i++) {
      EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id) << q;
      EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id) << q;
    }
  }
}

// A served cached plan renders "plan cache: hit" and attributes zero
// planning time — the hit path never parses, prices, or compiles.
TEST(PlannerCrossoverTest, CacheHitGolden) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i)).ok());
  QueryOptions o;
  o.explain = true;
  auto first = coll->Query(nullptr, "/lib/book/title", o).MoveValue();
  EXPECT_EQ(first.profile.plan_cache, "miss");
  auto second = coll->Query(nullptr, "/lib/book/title", o).MoveValue();
  EXPECT_EQ(second.profile.plan_cache, "hit");
  ASSERT_FALSE(second.profile.phases.empty());
  EXPECT_EQ(second.profile.phases[0].name, "plan");
  EXPECT_EQ(second.profile.phases[0].wall_us, 0u);
  EXPECT_EQ(first.nodes.size(), second.nodes.size());
}

}  // namespace
}  // namespace xdb
