// Planner regression suite: pins the cost-based access-path choice (and its
// EXPLAIN rendering, cardinality funnel included) at the statistics-driven
// crossover points the paper's Section 4.3 rules approximate:
//
//  1. Collection size  — tiny collections full-scan, grown ones probe the
//     index (the SAME query flips when only the stats move).
//  2. Selectivity      — a probe that matches everything costs more than the
//     scan it fails to avoid; distinct keys make the list path win.
//  3. Records per doc  — single-record documents evaluate whole docs off a
//     DocID list; multi-record documents anchor at node level (the old
//     "> 2 records/doc" rule emerges from the cost arithmetic).
//
// Every golden pins PlanText() exactly: access path, cost breakdown, stats
// line (epoch, docs, records/doc, nodes/doc), plan-cache state, and the
// postings -> candidates -> evaluated -> results funnel. If a cost-constant
// or estimator change moves a crossover, these tests are the tripwire.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "leak_check.h"

namespace xdb {
namespace {

std::unique_ptr<Engine> MemEngine() {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  return Engine::Open(opts).MoveValue();
}

std::string BookDoc(int i) {
  return "<lib><book><title>t" + std::to_string(i) + "</title></book></lib>";
}

std::string Explain(Collection* coll, const std::string& xpath) {
  QueryOptions o;
  o.explain = true;
  auto res = coll->Query(nullptr, xpath, o);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  if (!res.ok()) return "";
  return res.value().profile.PlanText();
}

// Crossover 1: collection size. Two documents -> the full scan is cheaper
// than one B-tree descent; forty documents -> the index probe wins. Same
// query text, same index — only the statistics (and their epoch) changed.
TEST(PlannerCrossoverTest, CollectionSizeFlipsScanToDocList) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"title", "/lib/book/title", ValueType::kString, 128})
                  .ok());
  for (int i = 0; i < 2; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i)).ok());

  EXPECT_EQ(Explain(coll, "/lib/book[title = \"t1\"]"),
            "query: /lib/book[title = \"t1\"]\n"
            "access path: full-scan (cost: full-scan=102* docid-list=112 "
            "nodeid-list=135; est postings=1 docs=1)\n"
            "stats: epoch=3 docs=2 records/doc=1.00 nodes/doc=4.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=0 candidate_docs=2 candidate_anchors=0"
            " docs_evaluated=2 records_fetched=2 results=1\n"
            "scan: events=18 instances=8 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");

  for (int i = 2; i < 40; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i)).ok());

  EXPECT_EQ(Explain(coll, "/lib/book[title = \"t1\"]"),
            "query: /lib/book[title = \"t1\"]\n"
            "access path: docid-list (cost: full-scan=2032 "
            "docid-list=112* nodeid-list=135; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=41 docs=40 records/doc=1.00 nodes/doc=4.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no\n"
            "cardinality: postings=1 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=9 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
}

// Crossover 2: selectivity. Same collection size, same query shape; an index
// whose every key is identical emits every posting (the probe saves
// nothing), while a distinct-keyed index emits one.
TEST(PlannerCrossoverTest, SelectivityFlipsDocListToScan) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"cat", "/lib/book/cat", ValueType::kString, 128})
                  .ok());
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"title", "/lib/book/title", ValueType::kString, 128})
                  .ok());
  for (int i = 0; i < 30; i++) {
    std::string doc = "<lib><book><title>t" + std::to_string(i) +
                      "</title><cat>fiction</cat></book></lib>";
    ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
  }

  // Every book is "fiction": the probe would emit all 30 postings and then
  // evaluate all 30 documents anyway — the cost model keeps the scan.
  EXPECT_EQ(Explain(coll, "/lib/book[cat = \"fiction\"]"),
            "query: /lib/book[cat = \"fiction\"]\n"
            "access path: full-scan (cost: full-scan=1596* docid-list=1692 "
            "nodeid-list=2316; est postings=30 docs=30)\n"
            "stats: epoch=32 docs=30 records/doc=1.00 nodes/doc=6.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: yes\n"
            "cardinality: postings=0 candidate_docs=30 candidate_anchors=0"
            " docs_evaluated=30 records_fetched=30 results=30\n"
            "scan: events=360 instances=120 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");

  // Distinct titles: one expected posting, one candidate document.
  EXPECT_EQ(Explain(coll, "/lib/book[title = \"t7\"]"),
            "query: /lib/book[title = \"t7\"]\n"
            "access path: docid-list (cost: full-scan=1596 "
            "docid-list=114* nodeid-list=135; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=32 docs=30 records/doc=1.00 nodes/doc=6.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no\n"
            "cardinality: postings=1 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=12 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
}

// Crossover 3: records per document. Small documents (one record each) fetch
// whole candidates off the DocID list; fat documents packed into many
// records anchor at node level so only the matching subtree is fetched. The
// paper's "> 2 records per document" rule falls out of the arithmetic.
TEST(PlannerCrossoverTest, RecordsPerDocFlipsDocListToNodeList) {
  auto engine = MemEngine();
  CollectionOptions small_records;
  small_records.record_budget = 64;  // force multi-record packing
  Collection* thin = engine->CreateCollection("thin").value();
  Collection* fat = engine->CreateCollection("fat", small_records).value();
  for (Collection* coll : {thin, fat}) {
    ASSERT_TRUE(coll->CreateValueIndex(
                        {"title", "/lib/book/title", ValueType::kString, 128})
                    .ok());
    for (int i = 0; i < 40; i++) {
      std::string doc = "<lib><book><title>t" + std::to_string(i) +
                        "</title>";
      for (int j = 0; j < 6; j++)
        doc += "<blurb>some longer prose to fill the record budget " +
               std::to_string(j) + "</blurb>";
      doc += "</book></lib>";
      ASSERT_TRUE(coll->InsertDocument(nullptr, doc).ok());
    }
  }

  // Default budget: each document is one record; fetch-and-eval is cheap.
  EXPECT_EQ(Explain(thin, "/lib/book[title = \"t5\"]"),
            "query: /lib/book[title = \"t5\"]\n"
            "access path: docid-list (cost: full-scan=2608 "
            "docid-list=126* nodeid-list=135; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=41 docs=40 records/doc=1.00 nodes/doc=16.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no\n"
            "cardinality: postings=1 candidate_docs=1 candidate_anchors=0"
            " docs_evaluated=1 records_fetched=1 results=1\n"
            "scan: events=27 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");

  // Tight budget: five records per document make whole-document evaluation
  // expensive; the NodeID list fetches the anchor subtree instead.
  EXPECT_EQ(Explain(fat, "/lib/book[title = \"t5\"]"),
            "query: /lib/book[title = \"t5\"]\n"
            "access path: nodeid-list (cost: full-scan=4848 docid-list=182 "
            "nodeid-list=135*; est postings=1 docs=1)\n"
            "  probe: /lib/book/title = ... index 'title' (exact)\n"
            "stats: epoch=41 docs=40 records/doc=5.00 nodes/doc=16.00 "
            "(cost-based)\n"
            "plan cache: miss\n"
            "recheck: no  anchor step: 1\n"
            "cardinality: postings=1 candidate_docs=0 candidate_anchors=1"
            " docs_evaluated=0 records_fetched=4 results=1\n"
            "scan: events=23 instances=4 peak_live=4\n"
            "parallelism: 1 (chunks=1)\n");
}

// The answers must not depend on the planner flavor: force the heuristic on
// the size-crossover collection and compare node-for-node.
TEST(PlannerCrossoverTest, CostBasedAndHeuristicAgree) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  ASSERT_TRUE(coll->CreateValueIndex(
                      {"title", "/lib/book/title", ValueType::kString, 128})
                  .ok());
  for (int i = 0; i < 25; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i % 7)).ok());
  for (const char* q :
       {"/lib/book[title = \"t1\"]", "/lib/book[title = \"t9\"]",
        "/lib/book[title > \"t3\"]", "/lib/book/title"}) {
    QueryOptions cost;
    QueryOptions heur;
    heur.use_heuristic_planner = true;
    auto a = coll->Query(nullptr, q, cost);
    auto b = coll->Query(nullptr, q, heur);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    ASSERT_EQ(a.value().nodes.size(), b.value().nodes.size()) << q;
    for (size_t i = 0; i < a.value().nodes.size(); i++) {
      EXPECT_EQ(a.value().nodes[i].doc_id, b.value().nodes[i].doc_id) << q;
      EXPECT_EQ(a.value().nodes[i].node_id, b.value().nodes[i].node_id) << q;
    }
  }
}

// A served cached plan renders "plan cache: hit" and attributes zero
// planning time — the hit path never parses, prices, or compiles.
TEST(PlannerCrossoverTest, CacheHitGolden) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("books").value();
  for (int i = 0; i < 3; i++)
    ASSERT_TRUE(coll->InsertDocument(nullptr, BookDoc(i)).ok());
  QueryOptions o;
  o.explain = true;
  auto first = coll->Query(nullptr, "/lib/book/title", o).MoveValue();
  EXPECT_EQ(first.profile.plan_cache, "miss");
  auto second = coll->Query(nullptr, "/lib/book/title", o).MoveValue();
  EXPECT_EQ(second.profile.plan_cache, "hit");
  ASSERT_FALSE(second.profile.phases.empty());
  EXPECT_EQ(second.profile.phases[0].name, "plan");
  EXPECT_EQ(second.profile.phases[0].wall_us, 0u);
  EXPECT_EQ(first.nodes.size(), second.nodes.size());
}

}  // namespace
}  // namespace xdb
