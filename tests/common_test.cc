// Unit tests for the common layer: Status/Result, Slice, codings, Decimal,
// Arena, Random.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/coding.h"
#include "common/decimal.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace xdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::Corruption().code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::InvalidArgument().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::IOError().code(), Status::Code::kIOError);
  EXPECT_EQ(Status::NotSupported().code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::Busy().code(), Status::Code::kBusy);
  EXPECT_EQ(Status::Deadlock().code(), Status::Code::kDeadlock);
  EXPECT_EQ(Status::ParseError().code(), Status::Code::kParseError);
  EXPECT_EQ(Status::ValidationError().code(), Status::Code::kValidationError);
  EXPECT_EQ(Status::Full().code(), Status::Code::kFull);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::IOError("disk"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kIOError);
}

TEST(SliceTest, CompareIsBytewise) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("").Compare(Slice("a")), 0);
  // Unsigned comparison: 0x80 > 0x7F.
  char hi = static_cast<char>(0x80);
  char lo = 0x7F;
  EXPECT_GT(Slice(&hi, 1).Compare(Slice(&lo, 1)), 0);
}

TEST(SliceTest, StartsWithAndPrefixRemoval) {
  Slice s("hello world");
  EXPECT_TRUE(s.StartsWith("hello"));
  EXPECT_FALSE(s.StartsWith("world"));
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(CodingTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFull);
}

TEST(CodingTest, BigEndianOrdersNumerically) {
  std::string a, b;
  PutBig64(&a, 100);
  PutBig64(&b, 200);
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_EQ(DecodeBig64(a.data()), 100u);
  std::string c, d;
  PutBig32(&c, 7);
  PutBig32(&d, 0x01000000u);
  EXPECT_LT(Slice(c).Compare(Slice(d)), 0);
  EXPECT_EQ(DecodeBig32(d.data()), 0x01000000u);
}

TEST(CodingTest, VarintRoundTrip) {
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    uint64_t decoded;
    size_t n = GetVarint64(buf.data(), buf.data() + buf.size(), &decoded);
    EXPECT_EQ(n, buf.size());
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  uint64_t v;
  EXPECT_EQ(GetVarint64(buf.data(), buf.data() + 2, &v), 0u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, OrderedDoublePreservesOrder) {
  std::vector<double> values = {-1e300, -42.5, -1.0, -1e-30, 0.0,
                                1e-30,  1.0,   3.14, 42.5,   1e300};
  for (size_t i = 0; i + 1 < values.size(); i++) {
    std::string a, b;
    PutOrderedDouble(&a, values[i]);
    PutOrderedDouble(&b, values[i + 1]);
    EXPECT_LT(Slice(a).Compare(Slice(b)), 0)
        << values[i] << " vs " << values[i + 1];
    EXPECT_DOUBLE_EQ(DecodeOrderedDouble(a.data()), values[i]);
  }
}

TEST(DecimalTest, ParseAndToString) {
  auto dec = [](const char* s) {
    auto r = Decimal::FromString(s);
    EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
    return r.value();
  };
  EXPECT_EQ(dec("0").ToString(), "0");
  EXPECT_EQ(dec("42").ToString(), "42");
  EXPECT_EQ(dec("-3.14").ToString(), "-3.14");
  EXPECT_EQ(dec("0.001").ToString(), "0.001");
  EXPECT_EQ(dec("1e3").ToString(), "1000");
  EXPECT_EQ(dec("1.5e-2").ToString(), "0.015");
  EXPECT_EQ(dec("  7.25  ").ToString(), "7.25");
  EXPECT_EQ(dec("100.00").ToString(), "100");
}

TEST(DecimalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Decimal::FromString("").ok());
  EXPECT_FALSE(Decimal::FromString("abc").ok());
  EXPECT_FALSE(Decimal::FromString("1.2.3").ok());
  EXPECT_FALSE(Decimal::FromString("1e").ok());
  EXPECT_FALSE(Decimal::FromString("12x").ok());
}

TEST(DecimalTest, ExactComparisonBeyondDoublePrecision) {
  // Two values a double cannot distinguish.
  auto a = Decimal::FromString("100000000000000.01").value();
  auto b = Decimal::FromString("100000000000000.02").value();
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(DecimalTest, CompareMixedSignsAndMagnitudes) {
  auto d = [](const char* s) { return Decimal::FromString(s).value(); };
  EXPECT_LT(d("-5").Compare(d("3")), 0);
  EXPECT_LT(d("-50").Compare(d("-5")), 0);
  EXPECT_LT(d("0.5").Compare(d("5")), 0);
  EXPECT_LT(d("0").Compare(d("0.0001")), 0);
  EXPECT_GT(d("0").Compare(d("-0.0001")), 0);
  EXPECT_EQ(d("2.50").Compare(d("2.5")), 0);
}

TEST(DecimalTest, KeyEncodingOrdersNumerically) {
  Random rng(11);
  std::vector<Decimal> values;
  for (int i = 0; i < 300; i++) {
    int64_t coeff = static_cast<int64_t>(rng.Next() % 2000000) - 1000000;
    int32_t exp = static_cast<int32_t>(rng.Uniform(9)) - 4;
    values.push_back(Decimal(coeff, exp));
  }
  for (int i = 0; i < 300; i++) {
    const Decimal& a = values[rng.Uniform(values.size())];
    const Decimal& b = values[rng.Uniform(values.size())];
    std::string ka, kb;
    a.EncodeKey(&ka);
    b.EncodeKey(&kb);
    int key_cmp = Slice(ka).Compare(Slice(kb));
    int num_cmp = a.Compare(b);
    if (num_cmp < 0) {
      EXPECT_LT(key_cmp, 0) << a.ToString() << " " << b.ToString();
    } else if (num_cmp > 0) {
      EXPECT_GT(key_cmp, 0) << a.ToString() << " " << b.ToString();
    } else {
      EXPECT_EQ(key_cmp, 0) << a.ToString() << " " << b.ToString();
    }
  }
}

TEST(DecimalTest, KeyRoundTrip) {
  for (const char* s : {"0", "1", "-1", "123.456", "-0.001", "99999999", "1e10"}) {
    Decimal d = Decimal::FromString(s).value();
    std::string key;
    d.EncodeKey(&key);
    Slice in(key);
    auto back = Decimal::DecodeKey(&in);
    ASSERT_TRUE(back.ok()) << s;
    EXPECT_EQ(back.value().Compare(d), 0) << s;
    EXPECT_TRUE(in.empty());
  }
}

TEST(ArenaTest, AllocatesAlignedAndTracksUsage) {
  Arena arena;
  char* p1 = arena.Allocate(1);
  char* p2 = arena.Allocate(13);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 8, 0u);
  EXPECT_GT(arena.MemoryUsage(), 0u);
  // Large allocations get their own block.
  char* big = arena.Allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 'x';
  big[(1 << 20) - 1] = 'y';
  EXPECT_GE(arena.MemoryUsage(), 1u << 20);
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
  Random r(1);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace xdb
