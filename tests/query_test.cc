// Query-planning tests: candidate extraction, index matching, access-method
// selection (Table 2), anchoring, and posting-list algebra.
#include <gtest/gtest.h>

#include "btree/btree.h"
#include "engine/engine.h"
#include "obs/event_log.h"
#include "query/access_path.h"
#include "query/executor.h"
#include "storage/buffer_manager.h"
#include "storage/tablespace.h"
#include "xml/node_id.h"
#include "xpath/parser.h"

namespace xdb {
namespace query {
namespace {

using xpath::ParsePath;

TEST(ExtractCandidatesTest, SingleComparison) {
  auto path =
      ParsePath("/Catalog/Categories/Product[RegPrice > 100]").MoveValue();
  std::vector<CandidatePredicate> cands;
  bool leftover;
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_FALSE(leftover);
  EXPECT_EQ(cands[0].step_index, 2u);
  EXPECT_EQ(cands[0].full_path.ToString(),
            "/Catalog/Categories/Product/RegPrice");
  EXPECT_EQ(cands[0].op, xpath::CompOp::kGt);
  EXPECT_EQ(cands[0].strip_levels, 1);
  EXPECT_FALSE(cands[0].or_group);
}

TEST(ExtractCandidatesTest, ConjunctsSplitAndOrGroups) {
  auto path =
      ParsePath("/c/p[a > 1 and b < 2][x = \"s\" or y = \"t\"]").MoveValue();
  std::vector<CandidatePredicate> cands;
  bool leftover;
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  ASSERT_EQ(cands.size(), 4u);
  EXPECT_FALSE(leftover);
  int and_count = 0, or_count = 0;
  for (auto& c : cands) (c.or_group ? or_count : and_count)++;
  EXPECT_EQ(and_count, 2);
  EXPECT_EQ(or_count, 2);
  EXPECT_EQ(cands[2].group_id, cands[3].group_id);
}

TEST(ExtractCandidatesTest, UnindexableShapesFlagged) {
  // not(...) and != are not probes.
  auto path = ParsePath("/c/p[not(a = 1)]").MoveValue();
  std::vector<CandidatePredicate> cands;
  bool leftover;
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  EXPECT_TRUE(cands.empty());
  EXPECT_TRUE(leftover);

  path = ParsePath("/c/p[a != 1]").MoveValue();
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  EXPECT_TRUE(cands.empty());
  EXPECT_TRUE(leftover);
}

TEST(ExtractCandidatesTest, DescendantBranchForbidsAnchoring) {
  auto path = ParsePath("/c/p[.//deep = 5]").MoveValue();
  std::vector<CandidatePredicate> cands;
  bool leftover;
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].strip_levels, -1);
}

TEST(ClonePathSkeletonTest, DropsPredicatesKeepsShape) {
  auto path = ParsePath("/a/b[c > 1]//d[@x]").MoveValue();
  xpath::Path skel = ClonePathSkeleton(path);
  EXPECT_EQ(skel.ToString(), "/a/b//d");
  for (const auto& s : skel.steps) EXPECT_TRUE(s.predicates.empty());
}

TEST(AnchorPostingsTest, StripsBranchLevels) {
  std::vector<Posting> postings;
  Posting p;
  p.doc_id = 1;
  p.node_id = nodeid::ChildId(1) + nodeid::ChildId(2) + nodeid::ChildId(3);
  p.rid = Rid{1, 0};
  postings.push_back(p);
  std::vector<Posting> anchored;
  ASSERT_TRUE(AnchorPostings(postings, 1, &anchored).ok());
  EXPECT_EQ(anchored[0].node_id, nodeid::ChildId(1) + nodeid::ChildId(2));
  ASSERT_TRUE(AnchorPostings(postings, 2, &anchored).ok());
  EXPECT_EQ(anchored[0].node_id, nodeid::ChildId(1));
  EXPECT_FALSE(AnchorPostings(postings, -1, &anchored).ok());
}

TEST(PostingAlgebraTest, IntersectAndUnion) {
  auto mk = [](uint64_t doc, uint32_t child) {
    Posting p;
    p.doc_id = doc;
    p.node_id = nodeid::ChildId(child);
    p.rid = Rid{1, 0};
    return p;
  };
  std::vector<Posting> a = {mk(1, 1), mk(1, 2), mk(2, 1)};
  std::vector<Posting> b = {mk(1, 2), mk(2, 2), mk(1, 1)};
  auto inter = IntersectPostings({a, b});
  ASSERT_EQ(inter.size(), 2u);
  EXPECT_EQ(inter[0].node_id, nodeid::ChildId(1));
  EXPECT_EQ(inter[1].node_id, nodeid::ChildId(2));
  auto uni = UnionPostings({a, b});
  EXPECT_EQ(uni.size(), 4u);

  EXPECT_EQ(IntersectDocIds({{1, 2, 3}, {2, 3, 4}, {3, 2}}),
            (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(UnionDocIds({{1, 2}, {2, 4}}), (std::vector<uint64_t>{1, 2, 4}));
  EXPECT_TRUE(IntersectDocIds({}).empty());
}

class PlannerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space_ = TableSpace::Create("", opts).MoveValue();
    bm_ = std::make_unique<BufferManager>(space_.get(), 128);
  }

  ValueIndex* AddIndex(const std::string& name, const std::string& path,
                       ValueType type) {
    trees_.push_back(BTree::Create(bm_.get()).MoveValue());
    ValueIndexDef def;
    def.name = name;
    def.path = path;
    def.type = type;
    indexes_.push_back(
        std::make_unique<ValueIndex>(def, trees_.back().get()));
    ctx_.indexes.push_back(indexes_.back().get());
    return indexes_.back().get();
  }

  QueryPlan Plan(const std::string& query,
                 ForceMethod force = ForceMethod::kAuto) {
    auto path = ParsePath(query).MoveValue();
    auto plan = ChoosePlan(path, ctx_, force);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.MoveValue();
  }

  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> bm_;
  std::vector<std::unique_ptr<BTree>> trees_;
  std::vector<std::unique_ptr<ValueIndex>> indexes_;
  PlannerContext ctx_;
};

TEST_F(PlannerFixture, NoIndexesMeansFullScan) {
  QueryPlan plan = Plan("/Catalog/Categories/Product[RegPrice > 100]");
  EXPECT_EQ(plan.method, AccessMethod::kFullScan);
}

TEST_F(PlannerFixture, Table2Case1ExactDocIdList) {
  AddIndex("regprice", "/Catalog/Categories/Product/RegPrice",
           ValueType::kDouble);
  ctx_.avg_records_per_doc = 1.0;  // small documents -> DocID level
  QueryPlan plan = Plan("/Catalog/Categories/Product[RegPrice > 100]");
  EXPECT_EQ(plan.method, AccessMethod::kDocIdList);
  ASSERT_EQ(plan.probes.size(), 1u);
  EXPECT_EQ(plan.probes[0].match, xpath::IndexMatch::kExact);
}

TEST_F(PlannerFixture, Table2Case2FilteringViaContainment) {
  AddIndex("discount", "//Discount", ValueType::kDouble);
  ctx_.avg_records_per_doc = 1.0;
  QueryPlan plan = Plan("/Catalog/Categories/Product[Discount > 0.1]");
  EXPECT_EQ(plan.method, AccessMethod::kDocIdList);
  ASSERT_EQ(plan.probes.size(), 1u);
  EXPECT_EQ(plan.probes[0].match, xpath::IndexMatch::kContains);
  EXPECT_TRUE(plan.need_recheck);
}

TEST_F(PlannerFixture, Table2Case3Anding) {
  AddIndex("regprice", "/Catalog/Categories/Product/RegPrice",
           ValueType::kDouble);
  AddIndex("discount", "//Discount", ValueType::kDouble);
  ctx_.avg_records_per_doc = 8.0;  // large documents -> NodeID level
  QueryPlan plan =
      Plan("/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]");
  EXPECT_EQ(plan.method, AccessMethod::kNodeIdAndOr);
  EXPECT_EQ(plan.probes.size(), 2u);
  EXPECT_FALSE(plan.disjunctive);
  // One exact + one containment: node-level ANDing makes the list exact,
  // but the residual path below the anchor still runs.
}

TEST_F(PlannerFixture, LargeDocsPickNodeIdList) {
  AddIndex("regprice", "/Catalog/Categories/Product/RegPrice",
           ValueType::kDouble);
  ctx_.avg_records_per_doc = 10.0;
  QueryPlan plan = Plan("/Catalog/Categories/Product[RegPrice > 100]");
  EXPECT_EQ(plan.method, AccessMethod::kNodeIdList);
  EXPECT_EQ(plan.anchor_step, 2u);
}

TEST_F(PlannerFixture, ForceOverridesHeuristic) {
  AddIndex("regprice", "/Catalog/Categories/Product/RegPrice",
           ValueType::kDouble);
  ctx_.avg_records_per_doc = 10.0;
  EXPECT_EQ(Plan("/Catalog/Categories/Product[RegPrice > 100]",
                 ForceMethod::kDocIdList)
                .method,
            AccessMethod::kDocIdList);
  EXPECT_EQ(Plan("/Catalog/Categories/Product[RegPrice > 100]",
                 ForceMethod::kScan)
                .method,
            AccessMethod::kFullScan);
}

TEST_F(PlannerFixture, OrGroupNeedsAllMembersIndexed) {
  AddIndex("regprice", "/Catalog/Categories/Product/RegPrice",
           ValueType::kDouble);
  // Only one side of the OR is indexed: the whole group is unusable.
  QueryPlan plan =
      Plan("/Catalog/Categories/Product[RegPrice > 100 or Discount > 0.1]");
  EXPECT_EQ(plan.method, AccessMethod::kFullScan);

  AddIndex("discount", "//Discount", ValueType::kDouble);
  plan = Plan("/Catalog/Categories/Product[RegPrice > 100 or Discount > 0.1]");
  EXPECT_EQ(plan.method, AccessMethod::kDocIdAndOr);
  EXPECT_TRUE(plan.disjunctive);
  EXPECT_EQ(plan.probes.size(), 2u);
}

TEST_F(PlannerFixture, TypeMismatchSkipsIndex) {
  AddIndex("name", "/Catalog/Categories/Product/ProductName",
           ValueType::kDouble);
  // A string literal cannot be probed against a double index.
  QueryPlan plan =
      Plan("/Catalog/Categories/Product[ProductName = \"gizmo\"]");
  EXPECT_EQ(plan.method, AccessMethod::kFullScan);
}

TEST_F(PlannerFixture, ProbeBoundsFromOperators) {
  ValueIndex* idx = AddIndex("price", "/c/p/v", ValueType::kDouble);
  auto path = ParsePath("/c/p[v >= 10]").MoveValue();
  std::vector<CandidatePredicate> cands;
  bool leftover;
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  std::optional<KeyBound> lo, hi;
  bool ne;
  ASSERT_TRUE(ProbeBounds(*idx, cands[0], &lo, &hi, &ne).ok());
  ASSERT_TRUE(lo.has_value());
  EXPECT_TRUE(lo->inclusive);
  EXPECT_FALSE(hi.has_value());

  path = ParsePath("/c/p[v < 10]").MoveValue();
  ASSERT_TRUE(ExtractCandidates(path, &cands, &leftover).ok());
  ASSERT_TRUE(ProbeBounds(*idx, cands[0], &lo, &hi, &ne).ok());
  EXPECT_FALSE(lo.has_value());
  ASSERT_TRUE(hi.has_value());
  EXPECT_FALSE(hi->inclusive);
}

// --- compiled-plan cache lifecycle (hits, misses, evictions, invalidation) ---

std::unique_ptr<Engine> CacheEngine(size_t capacity) {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  opts.plan_cache_capacity = capacity;
  return Engine::Open(opts).MoveValue();
}

uint64_t Counter(Engine* engine, const char* name) {
  return engine->MetricsSnapshot().Value(name);
}

TEST(PlanCacheTest, HitMissCountersAndProfileState) {
  auto engine = CacheEngine(8);
  Collection* coll = engine->CreateCollection("c").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());

  QueryOptions o;
  o.explain = true;
  auto first = coll->Query(nullptr, "/a/b", o).MoveValue();
  EXPECT_EQ(first.profile.plan_cache, "miss");
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.misses"), 1u);
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.hits"), 0u);
  EXPECT_EQ(coll->plan_cache()->size(), 1u);

  auto second = coll->Query(nullptr, "/a/b", o).MoveValue();
  EXPECT_EQ(second.profile.plan_cache, "hit");
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.hits"), 1u);
  EXPECT_EQ(coll->plan_cache()->size(), 1u);

  // Different want_values / force / text are distinct keys.
  QueryOptions vals = o;
  vals.want_values = true;
  EXPECT_TRUE(coll->Query(nullptr, "/a/b", vals).ok());
  QueryOptions forced = o;
  forced.force = ForceMethod::kScan;
  EXPECT_TRUE(coll->Query(nullptr, "/a/b", forced).ok());
  EXPECT_TRUE(coll->Query(nullptr, "/a", o).ok());
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.misses"), 4u);
  EXPECT_EQ(coll->plan_cache()->size(), 4u);
}

TEST(PlanCacheTest, EpochBumpMakesCachedPlansUnreachable) {
  auto engine = CacheEngine(8);
  Collection* coll = engine->CreateCollection("c").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  QueryOptions o;
  o.explain = true;
  EXPECT_EQ(coll->Query(nullptr, "/a/b", o).value().profile.plan_cache,
            "miss");
  EXPECT_EQ(coll->Query(nullptr, "/a/b", o).value().profile.plan_cache,
            "hit");
  // Any document write bumps the stats epoch: the cached plan's key no
  // longer matches and the same text compiles (and re-prices) again.
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>2</b></a>").ok());
  EXPECT_EQ(coll->Query(nullptr, "/a/b", o).value().profile.plan_cache,
            "miss");
  EXPECT_EQ(coll->Query(nullptr, "/a/b", o).value().profile.plan_cache,
            "hit");
}

TEST(PlanCacheTest, LruEvictsAtCapacity) {
  auto engine = CacheEngine(2);
  Collection* coll = engine->CreateCollection("c").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b><c>2</c></a>").ok());
  QueryOptions o;
  EXPECT_TRUE(coll->Query(nullptr, "/a/b", o).ok());
  EXPECT_TRUE(coll->Query(nullptr, "/a/c", o).ok());
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.evictions"), 0u);
  EXPECT_TRUE(coll->Query(nullptr, "/a", o).ok());  // evicts LRU (/a/b)
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.evictions"), 1u);
  EXPECT_EQ(coll->plan_cache()->size(), 2u);
  // /a/b was the least recently used entry, so it is the one that left.
  QueryOptions ex;
  ex.explain = true;
  EXPECT_EQ(coll->Query(nullptr, "/a/c", ex).value().profile.plan_cache,
            "hit");
  EXPECT_EQ(coll->Query(nullptr, "/a/b", ex).value().profile.plan_cache,
            "miss");
}

TEST(PlanCacheTest, IndexLifecycleInvalidatesOutright) {
  auto engine = CacheEngine(8);
  Collection* coll = engine->CreateCollection("c").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  EXPECT_TRUE(coll->Query(nullptr, "/a/b").ok());
  EXPECT_GT(coll->plan_cache()->size(), 0u);

  ASSERT_TRUE(
      coll->CreateValueIndex({"b", "/a/b", ValueType::kString, 64}).ok());
  EXPECT_EQ(coll->plan_cache()->size(), 0u);
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.invalidations"), 1u);

  EXPECT_TRUE(coll->Query(nullptr, "/a/b").ok());
  EXPECT_GT(coll->plan_cache()->size(), 0u);
  ASSERT_TRUE(coll->DropValueIndex("b").ok());
  EXPECT_EQ(coll->plan_cache()->size(), 0u);
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.invalidations"), 2u);

  // Both invalidations landed in the event log with their causes.
  int created = 0, dropped = 0;
  for (const obs::Event& e : engine->RecentEvents()) {
    if (e.kind != obs::EventKind::kPlanCacheInvalidated) continue;
    if (e.message.find("index created") != std::string::npos) created++;
    if (e.message.find("index dropped") != std::string::npos) dropped++;
  }
  EXPECT_EQ(created, 1);
  EXPECT_EQ(dropped, 1);

  // Queries still work (and re-cache) after the drop.
  EXPECT_TRUE(coll->Query(nullptr, "/a/b").ok());
  EXPECT_GT(coll->plan_cache()->size(), 0u);
}

TEST(PlanCacheTest, DisabledCacheReportsOffAndStoresNothing) {
  auto engine = CacheEngine(0);
  Collection* coll = engine->CreateCollection("c").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  QueryOptions o;
  o.explain = true;
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(coll->Query(nullptr, "/a/b", o).value().profile.plan_cache,
              "off");
  }
  EXPECT_EQ(coll->plan_cache()->size(), 0u);
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.hits"), 0u);
  EXPECT_EQ(Counter(engine.get(), "query.plan_cache.misses"), 0u);
}

TEST(PlanCacheTest, HeuristicPlannerBypassesCache) {
  auto engine = CacheEngine(8);
  Collection* coll = engine->CreateCollection("c").value();
  ASSERT_TRUE(coll->InsertDocument(nullptr, "<a><b>1</b></a>").ok());
  QueryOptions o;
  o.explain = true;
  o.use_heuristic_planner = true;
  EXPECT_EQ(coll->Query(nullptr, "/a/b", o).value().profile.plan_cache,
            "off");
  EXPECT_EQ(coll->plan_cache()->size(), 0u);
  // The cost-based flavor of the same query caches normally afterwards.
  QueryOptions cost;
  cost.explain = true;
  EXPECT_EQ(coll->Query(nullptr, "/a/b", cost).value().profile.plan_cache,
            "miss");
  EXPECT_EQ(coll->Query(nullptr, "/a/b", cost).value().profile.plan_cache,
            "hit");
}

}  // namespace
}  // namespace query
}  // namespace xdb
