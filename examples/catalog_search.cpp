// Catalog search: the paper's running example end to end.
//
// Registers a schema (compiled to the binary validation format), loads a
// product catalog with validation, creates the two XPath value indexes of
// Table 2, and runs the three Table-2 queries under every access method,
// printing each plan's explain line and work counters.
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "engine/engine.h"
#include "util/workload.h"

using namespace xdb;

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

void Must(Status st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void RunAllMethods(Collection* catalog, const char* query) {
  std::printf("\nQuery: %s\n", query);
  struct {
    ForceMethod method;
    const char* label;
  } methods[] = {
      {ForceMethod::kScan, "full scan   "},
      {ForceMethod::kDocIdList, "docid level "},
      {ForceMethod::kNodeIdList, "nodeid level"},
      {ForceMethod::kAuto, "auto        "},
  };
  for (const auto& m : methods) {
    QueryOptions o;
    o.force = m.method;
    auto res = Unwrap(catalog->Query(nullptr, query, o), "query");
    std::printf(
        "  %s -> %3zu results | postings=%llu docs=%llu anchors=%llu "
        "evaluated=%llu records=%llu\n",
        m.label, res.nodes.size(),
        static_cast<unsigned long long>(res.stats.index_postings),
        static_cast<unsigned long long>(res.stats.candidate_docs),
        static_cast<unsigned long long>(res.stats.candidate_anchors),
        static_cast<unsigned long long>(res.stats.docs_evaluated),
        static_cast<unsigned long long>(res.stats.records_fetched));
    if (m.method == ForceMethod::kAuto)
      std::printf("  planner chose: %s\n", res.stats.explain.c_str());
  }
}

int main() {
  EngineOptions options;
  options.in_memory = true;
  options.enable_wal = false;
  auto engine = Unwrap(Engine::Open(options), "open engine");

  // Schema registration (Figure 4): compiled once, stored in the catalog,
  // executed by the validation VM on every insert.
  Must(engine->RegisterSchema("catalog", workload::CatalogSchemaText()),
       "register schema");

  CollectionOptions copts;
  copts.schema = "catalog";
  copts.record_budget = 1200;  // multi-record documents
  Collection* catalog =
      Unwrap(engine->CreateCollection("catalog", copts), "create collection");

  // The two indexes of Table 2.
  Must(catalog->CreateValueIndex({"regprice",
                                  "/Catalog/Categories/Product/RegPrice",
                                  ValueType::kDecimal, 128}),
       "create RegPrice index");
  Must(catalog->CreateValueIndex(
           {"discount", "//Discount", ValueType::kDecimal, 128}),
       "create Discount index");

  // Load validated documents.
  Random rng(2026);
  workload::CatalogOptions wopts;
  wopts.categories = 2;
  wopts.products_per_category = 25;
  for (int i = 0; i < 50; i++) {
    Unwrap(catalog->InsertDocument(nullptr,
                                   workload::GenCatalogXml(&rng, wopts)),
           "insert catalog document");
  }
  std::printf("loaded %llu validated catalog documents\n",
              static_cast<unsigned long long>(
                  Unwrap(catalog->DocCount(), "count")));

  // A malformed document is rejected by the validation VM.
  auto bad = catalog->InsertDocument(
      nullptr, "<Catalog><Categories><Product id=\"x\"><RegPrice>10"
               "</RegPrice></Product></Categories></Catalog>");
  std::printf("invalid document rejected: %s\n",
              bad.status().ToString().c_str());

  // Table 2, case 1: exact index match.
  RunAllMethods(catalog, "/Catalog/Categories/Product[RegPrice > 400]");
  // Table 2, case 2: containment index (//Discount) used for filtering.
  RunAllMethods(catalog, "/Catalog/Categories/Product[Discount > 0.4]");
  // Table 2, case 3: ANDing two indexes.
  RunAllMethods(catalog,
                "/Catalog/Categories/Product[RegPrice > 300 and "
                "Discount > 0.25]");
  // A residual path below the anchor.
  RunAllMethods(catalog,
                "/Catalog/Categories/Product[RegPrice > 450]/ProductName");
  return 0;
}
