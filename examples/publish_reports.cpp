// Publishing reports: SQL/XML constructor functions (Section 4.1).
//
// Builds the paper's XMLELEMENT/XMLATTRIBUTES/XMLFOREST example, compiles
// it once into a tagging template, generates XML for a batch of "relational"
// employee rows, aggregates them with XMLAGG ORDER BY (linked-list
// quicksort), and inserts the constructed report straight into an XML
// collection via the token pipeline — no XML-text round trip.
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "construct/constructor.h"
#include "construct/xml_agg.h"
#include "engine/engine.h"
#include "util/workload.h"

using namespace xdb;
using namespace xdb::construct;

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

void Must(Status st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

int main() {
  // SELECT XMLELEMENT(NAME "Emp",
  //                   XMLATTRIBUTES(e.id AS "id",
  //                                 e.fname || ' ' || e.lname AS "name"),
  //                   XMLFOREST(e.hire AS "HIRE", e.dept AS "department"))
  std::vector<CtorExpr> children;
  children.push_back(XmlAttribute("id", 0));
  children.push_back(XmlAttribute("name", 1));
  children.push_back(XmlForestItem("HIRE", 2));
  children.push_back(XmlForestItem("department", 3));
  CtorExpr expr = XmlElement("Emp", std::move(children));

  auto tmpl = Unwrap(CompiledConstructor::Compile(expr), "compile template");
  std::printf("compiled tagging template: %zu ops, %d argument slots\n",
              tmpl.op_count(), tmpl.arg_count());

  // One row, rendered through the template.
  std::string one_row;
  Must(tmpl.SerializeRow({"1234", "John Doe", "1998-02-01", "Accting"},
                         &one_row),
       "serialize row");
  std::printf("one row: %s\n", one_row.c_str());

  // XMLAGG over a batch of rows, ORDER BY hire date: the rows live as
  // {sort key, argument record} nodes; the template is never copied.
  Random rng(7);
  auto rows = workload::GenEmployees(&rng, 500);
  XmlAgg agg(&tmpl);
  for (const auto& row : rows) {
    std::string name = row.fname + " " + row.lname;
    agg.Add(row.hire + row.id,
            MakeArgRecord({row.id, name, row.hire, row.dept}));
  }
  std::string employees;
  Must(agg.Finish(&employees), "xmlagg finish");
  std::printf("XMLAGG produced %zu bytes for %zu rows\n", employees.size(),
              rows.size());

  // Wrap the aggregate in a report element and store it as a document —
  // constructed data feeds the insert pipeline as tokens (Figure 8: tree
  // construction from constructed data, shared runtime).
  EngineOptions options;
  options.in_memory = true;
  options.enable_wal = false;
  auto engine = Unwrap(Engine::Open(options), "open engine");
  Collection* reports =
      Unwrap(engine->CreateCollection("reports"), "create collection");

  std::string report_xml = "<Report year=\"2026\">" + employees + "</Report>";
  uint64_t doc =
      Unwrap(reports->InsertDocument(nullptr, report_xml), "insert report");

  // And query it back.
  QueryOptions q;
  q.want_values = true;
  auto hires = Unwrap(
      reports->Query(nullptr, "/Report/Emp[department = \"Sales\"]/@name", q),
      "query");
  std::printf("report %llu stored; %zu Sales employees, e.g.:\n",
              static_cast<unsigned long long>(doc), hires.nodes.size());
  for (size_t i = 0; i < hires.nodes.size() && i < 5; i++) {
    std::printf("  %s\n", hires.nodes[i].string_value.c_str());
  }
  return 0;
}
