// EXPLAIN and engine metrics: run the same query over the streaming path and
// the index path, print each plan (cost breakdown, statistics line and
// plan-cache state included), show a plan-cache hit, the forced heuristic
// planner, and a descendant query flipping to the structural interval
// index, then dump the engine metrics snapshot.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/explain
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"

using namespace xdb;

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

int main() {
  EngineOptions options;
  options.in_memory = true;
  options.enable_wal = false;
  auto engine = Unwrap(Engine::Open(options), "open engine");
  Collection* shop = Unwrap(engine->CreateCollection("shop"),
                            "create collection");

  // A value index over the price path. Without it the planner has no choice
  // but the QuickXScan full scan; with it the same query becomes an index
  // probe plus (if needed) a recheck.
  for (int i = 1; i <= 50; i++) {
    std::string xml = "<item><name>widget-" + std::to_string(i) +
                      "</name><price>" + std::to_string(i * 3) +
                      "</price></item>";
    Unwrap(shop->InsertDocument(nullptr, xml), "insert");
  }

  const char* query = "/item[price = 42]/name";
  QueryOptions opts;
  opts.explain = true;

  // 1. Streaming path: no index exists yet.
  auto scan = Unwrap(shop->Query(nullptr, query, opts), "scan query");
  std::printf("--- without an index ---\n%s\n",
              scan.profile.PlanText().c_str());

  // 2. Index path: same query after CreateValueIndex.
  Status st =
      shop->CreateValueIndex({"price", "/item/price", ValueType::kDouble, 128});
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL (create index): %s\n", st.ToString().c_str());
    return 1;
  }
  auto probed = Unwrap(shop->Query(nullptr, query, opts), "index query");
  std::printf("--- with the price index ---\n%s\n",
              probed.profile.PlanText().c_str());

  // 3. Run it again: the plan is served from the compiled-plan cache
  // ("plan cache: hit", and the plan phase costs zero). Any insert or
  // index change bumps the stats epoch and retires the cached plan.
  auto cached = Unwrap(shop->Query(nullptr, query, opts), "cached query");
  std::printf("--- same query again (cached plan) ---\n%s\n",
              cached.profile.PlanText().c_str());

  // 4. The pre-statistics Section 4.3 rules are still there for comparison
  // (and as the automatic fallback when stats are missing after a crash).
  QueryOptions heur = opts;
  heur.use_heuristic_planner = true;
  auto ruled = Unwrap(shop->Query(nullptr, query, heur), "heuristic query");
  std::printf("--- forced heuristic planner ---\n%s\n",
              ruled.profile.PlanText().c_str());

  // 5. Structural (pre,post)-interval index: a descendant query has no
  // value predicate to probe, so it full-scans — until a structural index
  // covers the element and the interval range scan becomes cheaper than
  // walking every document. Deep documents where only a few contain the
  // queried element are the payoff case.
  for (int i = 0; i < 16; i++) {
    std::string xml;
    for (int d = 0; d < 30; d++) xml += "<section>";
    if (i % 8 == 0) xml += "<appendix>notes</appendix>";
    for (int d = 0; d < 30; d++) xml += "</section>";
    Unwrap(shop->InsertDocument(nullptr, xml), "insert deep");
  }
  auto deep_scan =
      Unwrap(shop->Query(nullptr, "//section//appendix", opts), "deep scan");
  std::printf("--- descendant query, no structural index ---\n%s\n",
              deep_scan.profile.PlanText().c_str());
  st = shop->CreateStructuralIndex({"structure", ""});
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL (create structural index): %s\n",
                 st.ToString().c_str());
    return 1;
  }
  auto interval = Unwrap(shop->Query(nullptr, "//section//appendix", opts),
                         "structural query");
  std::printf("--- with the structural index (interval scan) ---\n%s\n",
              interval.profile.PlanText().c_str());

  // 6. trace=true adds per-step lines and phase timings (ToText).
  opts.trace = true;
  auto traced = Unwrap(shop->Query(nullptr, query, opts), "traced query");
  std::printf("--- full trace ---\n%s\n", traced.profile.ToText().c_str());

  // 7. The engine-wide metrics snapshot those queries fed — including
  // query.plan_cache.{hits,misses,evictions,invalidations}.
  std::printf("--- engine metrics ---\n%s",
              engine->MetricsSnapshot().ToText().c_str());
  return 0;
}
