// EXPLAIN and engine metrics: run the same query over the streaming path and
// the index path, print each plan, then dump the engine metrics snapshot.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/explain
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"

using namespace xdb;

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

int main() {
  EngineOptions options;
  options.in_memory = true;
  options.enable_wal = false;
  auto engine = Unwrap(Engine::Open(options), "open engine");
  Collection* shop = Unwrap(engine->CreateCollection("shop"),
                            "create collection");

  // A value index over the price path. Without it the planner has no choice
  // but the QuickXScan full scan; with it the same query becomes an index
  // probe plus (if needed) a recheck.
  for (int i = 1; i <= 50; i++) {
    std::string xml = "<item><name>widget-" + std::to_string(i) +
                      "</name><price>" + std::to_string(i * 3) +
                      "</price></item>";
    Unwrap(shop->InsertDocument(nullptr, xml), "insert");
  }

  const char* query = "/item[price = 42]/name";
  QueryOptions opts;
  opts.explain = true;

  // 1. Streaming path: no index exists yet.
  auto scan = Unwrap(shop->Query(nullptr, query, opts), "scan query");
  std::printf("--- without an index ---\n%s\n",
              scan.profile.PlanText().c_str());

  // 2. Index path: same query after CreateValueIndex.
  Status st =
      shop->CreateValueIndex({"price", "/item/price", ValueType::kDouble, 128});
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL (create index): %s\n", st.ToString().c_str());
    return 1;
  }
  auto probed = Unwrap(shop->Query(nullptr, query, opts), "index query");
  std::printf("--- with the price index ---\n%s\n",
              probed.profile.PlanText().c_str());

  // 3. trace=true adds per-step lines and phase timings (ToText).
  opts.trace = true;
  auto traced = Unwrap(shop->Query(nullptr, query, opts), "traced query");
  std::printf("--- full trace ---\n%s\n", traced.profile.ToText().c_str());

  // 4. The engine-wide metrics snapshot those queries fed.
  std::printf("--- engine metrics ---\n%s",
              engine->MetricsSnapshot().ToText().c_str());
  return 0;
}
