// Replication walkthrough: a primary ships its WAL to a read-only replica
// through a spool directory, reads are freshness-bounded with `min_csn`,
// and the replica is finally promoted to a writable primary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/replica
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "engine/engine.h"
#include "repl/replica_applier.h"
#include "repl/ship_transport.h"
#include "repl/wal_shipper.h"

using namespace xdb;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::xdb::Status _st = (expr);                               \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "FATAL at %s:%d: %s\n", __FILE__,  \
                   __LINE__, _st.ToString().c_str());         \
      std::exit(1);                                           \
    }                                                         \
  } while (0)

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

int main() {
  const std::string base =
      (std::filesystem::temp_directory_path() / "xdb_replica_example")
          .string();
  const std::string primary_dir = base + "/primary";
  const std::string replica_dir = base + "/replica";
  const std::string spool_dir = base + "/spool";
  std::filesystem::remove_all(base);
  for (const std::string& d : {primary_dir, replica_dir, spool_dir})
    std::filesystem::create_directories(d);

  // Two disk-backed engines: a normal primary and a read-only replica.
  EngineOptions popts;
  popts.dir = primary_dir;
  auto primary = Unwrap(Engine::Open(popts), "open primary");
  EngineOptions ropts;
  ropts.dir = replica_dir;
  ropts.replica = true;
  auto replica = Unwrap(Engine::Open(ropts), "open replica");

  // The shipping channel: a spool directory of checksummed segment files
  // (swap in any ShipTransport — the pipeline does not care).
  auto transport = Unwrap(repl::FileTransport::Open(spool_dir), "open spool");
  repl::WalShipper shipper(primary.get(), transport.get());
  auto applier = Unwrap(
      repl::ReplicaApplier::Attach(replica.get(), transport.get()),
      "attach applier");

  // Writes — including DDL — happen on the primary only.
  Collection* orders = Unwrap(primary->CreateCollection("orders"),
                              "create collection");
  for (int i = 0; i < 3; i++) {
    Unwrap(orders->InsertDocument(
               nullptr, "<order id=\"" + std::to_string(i) +
                            "\"><sku>SKU-" + std::to_string(100 + i) +
                            "</sku></order>"),
           "insert");
  }

  // Ship the durable WAL prefix and apply it. The watermark the applier
  // publishes is a stream CSN: "the replica has applied everything up to
  // this byte of the primary's history".
  CHECK_OK(shipper.ShipAll());
  CHECK_OK(applier->CatchUp());
  std::printf("shipped_csn=%llu applied_csn=%llu lag=%llu\n",
              static_cast<unsigned long long>(shipper.shipped_csn()),
              static_cast<unsigned long long>(replica->applied_csn()),
              static_cast<unsigned long long>(shipper.shipped_csn() -
                                              replica->applied_csn()));

  // The replica serves reads, and refuses local writes.
  Collection* rorders = Unwrap(replica->GetCollection("orders"), "replica get");
  std::printf("replica sees %llu order(s)\n",
              static_cast<unsigned long long>(
                  Unwrap(rorders->DocCount(), "count")));
  Status write = rorders->InsertDocument(nullptr, "<order/>").status();
  std::printf("replica write rejected: %s\n", write.ToString().c_str());

  // Read-your-writes: insert on the primary, then query the replica with a
  // freshness bound. Before the apply the bounded read reports kStale
  // instead of silently serving old data; after it, the read succeeds.
  Unwrap(orders->InsertDocument(nullptr, "<order id=\"99\"><sku>RUSH</sku>"
                                         "</order>"),
         "insert");
  CHECK_OK(shipper.ShipAll());  // spooled, not yet applied
  QueryOptions fresh;
  fresh.min_csn = shipper.shipped_csn();
  fresh.freshness_timeout_us = 1000;
  Status stale = rorders->Query(nullptr, "/order/sku", fresh).status();
  std::printf("bounded read before apply: %s\n", stale.ToString().c_str());
  CHECK_OK(applier->CatchUp());
  auto result = Unwrap(rorders->Query(nullptr, "/order/sku", fresh),
                       "fresh query");
  std::printf("bounded read after apply: %zu skus\n", result.nodes.size());

  // Failover: promote the replica. It scrubs, lifts the read-only gate, and
  // permanently fences segments from the old timeline.
  CHECK_OK(applier->Promote());
  Unwrap(rorders->InsertDocument(nullptr, "<order id=\"100\"><sku>NEW-ERA"
                                          "</sku></order>"),
         "write on promoted node");
  std::printf("promoted replica accepted a write; %llu order(s) now\n",
              static_cast<unsigned long long>(
                  Unwrap(rorders->DocCount(), "count")));

  std::filesystem::remove_all(base);
  return 0;
}
