// Quickstart: open an engine, store XML documents, query them with XPath.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "xml/node_id.h"

using namespace xdb;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::xdb::Status _st = (expr);                               \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "FATAL at %s:%d: %s\n", __FILE__,  \
                   __LINE__, _st.ToString().c_str());         \
      std::exit(1);                                           \
    }                                                         \
  } while (0)

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

int main() {
  // An in-memory engine; pass a directory (and drop in_memory) for a
  // persistent database with WAL recovery.
  EngineOptions options;
  options.in_memory = true;
  options.enable_wal = false;
  auto engine = Unwrap(Engine::Open(options), "open engine");

  // A collection is a base table with an XML column (Figure 2 of the
  // paper): DocID index + internal XML table + NodeID index.
  Collection* notes = Unwrap(engine->CreateCollection("notes"),
                             "create collection");

  // Insert documents. Parsing produces the buffered token stream, which is
  // packed into tree records bottom-up — no intermediate DOM.
  uint64_t doc1 = Unwrap(
      notes->InsertDocument(
          nullptr,
          "<note priority=\"high\"><to>Ada</to><body>Ship it!</body></note>"),
      "insert");
  uint64_t doc2 = Unwrap(
      notes->InsertDocument(
          nullptr,
          "<note priority=\"low\"><to>Brin</to><body>Maybe later.</body>"
          "</note>"),
      "insert");
  std::printf("stored documents %llu and %llu\n",
              static_cast<unsigned long long>(doc1),
              static_cast<unsigned long long>(doc2));

  // Query with XPath. Without indexes this runs QuickXScan — one streaming
  // pass — over each stored document.
  QueryOptions q;
  q.want_values = true;
  auto result = Unwrap(
      notes->Query(nullptr, "/note[@priority = \"high\"]/body", q), "query");
  std::printf("plan: %s\n", result.stats.explain.c_str());
  for (const ResultNode& node : result.nodes) {
    std::printf("  doc %llu node %s value \"%s\"\n",
                static_cast<unsigned long long>(node.doc_id),
                nodeid::ToString(node.node_id).c_str(),
                node.string_value.c_str());
  }

  // Round-trip a whole document back to XML text.
  std::string text = Unwrap(notes->GetDocumentText(nullptr, doc2), "fetch");
  std::printf("document %llu: %s\n", static_cast<unsigned long long>(doc2),
              text.c_str());

  // Update a single text node in place (subdocument update: the paper's
  // reason XML columns are not LOBs).
  auto body = Unwrap(notes->Query(nullptr, "/note/body/text()", {}),
                     "find text node");
  for (const ResultNode& n : body.nodes) {
    if (n.doc_id == doc2) {
      CHECK_OK(notes->UpdateTextNode(nullptr, doc2, n.node_id,
                                     "Actually, now."));
    }
  }
  std::printf("after update: %s\n",
              Unwrap(notes->GetDocumentText(nullptr, doc2), "fetch").c_str());

  CHECK_OK(notes->DeleteDocument(nullptr, doc1));
  std::printf("deleted doc %llu; %llu document(s) remain\n",
              static_cast<unsigned long long>(doc1),
              static_cast<unsigned long long>(
                  Unwrap(notes->DocCount(), "count")));
  return 0;
}
