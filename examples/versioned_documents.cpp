// Versioned documents: Section 5's concurrency schemes in action.
//
// An MVCC collection lets snapshot readers run against a stable version
// while writers update subtrees under prefix node-ID locks; a locking
// collection shows the classic reader/writer exclusion. Finishes with a
// checkpoint + reopen cycle against a persistent directory.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "engine/engine.h"

using namespace xdb;

template <typename T>
T Unwrap(Result<T> res, const char* what) {
  if (!res.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 res.status().ToString().c_str());
    std::exit(1);
  }
  return res.MoveValue();
}

void Must(Status st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

int main() {
  std::string dir = "/tmp/xdb_versioned_example";
  std::filesystem::remove_all(dir);

  EngineOptions options;
  options.dir = dir;
  {
    auto engine = Unwrap(Engine::Open(options), "open engine");

    CollectionOptions mvcc_opts;
    mvcc_opts.mvcc = true;
    Collection* wiki =
        Unwrap(engine->CreateCollection("wiki", mvcc_opts), "create");

    uint64_t page = Unwrap(
        wiki->InsertDocument(
            nullptr, "<page><title>MVCC</title><body>draft one</body></page>"),
        "insert");

    // Pin a snapshot, then update the body text under the hood.
    Transaction reader = engine->Begin(IsolationMode::kSnapshot);
    std::string v1 = Unwrap(wiki->GetDocumentText(&reader, page), "read v1");

    auto body_text =
        Unwrap(wiki->Query(nullptr, "/page/body/text()", {}), "find text");
    Must(wiki->UpdateTextNode(nullptr, page, body_text.nodes[0].node_id,
                              "draft two, improved"),
         "update");

    std::string still_v1 =
        Unwrap(wiki->GetDocumentText(&reader, page), "read v1 again");
    Must(engine->Commit(&reader), "commit reader");
    std::string v2 = Unwrap(wiki->GetDocumentText(nullptr, page), "read v2");

    std::printf("pinned snapshot saw:   %s\n", v1.c_str());
    std::printf("after the update, it still saw: %s\n", still_v1.c_str());
    std::printf("a fresh reader sees:   %s\n", v2.c_str());

    // Subdocument concurrency: two transactions edit DISJOINT subtrees of
    // the same document at once — prefix node-ID locks do not conflict.
    uint64_t doc = Unwrap(
        wiki->InsertDocument(
            nullptr, "<doc><intro>i0</intro><outro>o0</outro></doc>"),
        "insert");
    auto intro =
        Unwrap(wiki->Query(nullptr, "/doc/intro/text()", {}), "intro");
    auto outro =
        Unwrap(wiki->Query(nullptr, "/doc/outro/text()", {}), "outro");
    std::string intro_id, outro_id;
    for (auto& n : intro.nodes)
      if (n.doc_id == doc) intro_id = n.node_id;
    for (auto& n : outro.nodes)
      if (n.doc_id == doc) outro_id = n.node_id;

    Transaction t1 = engine->Begin(IsolationMode::kLocking);
    Transaction t2 = engine->Begin(IsolationMode::kLocking);
    Must(wiki->UpdateTextNode(&t1, doc, intro_id, "i1 (txn 1)"), "t1 update");
    Must(wiki->UpdateTextNode(&t2, doc, outro_id, "o1 (txn 2)"), "t2 update");
    Must(engine->Commit(&t1), "commit t1");
    Must(engine->Commit(&t2), "commit t2");
    std::printf("disjoint-subtree writers both committed: %s\n",
                Unwrap(wiki->GetDocumentText(nullptr, doc), "read").c_str());

    // A conflicting writer on the SAME subtree times out instead.
    Transaction t3 = engine->Begin(IsolationMode::kLocking);
    Must(wiki->UpdateTextNode(&t3, doc, intro_id, "i2"), "t3 update");
    Transaction t4 = engine->Begin(IsolationMode::kLocking);
    Status conflict = wiki->UpdateTextNode(&t4, doc, intro_id, "i2 too");
    std::printf("overlapping writer correctly failed: %s\n",
                conflict.ToString().c_str());
    Must(engine->Abort(&t4), "abort t4");
    Must(engine->Commit(&t3), "commit t3");

    Must(engine->Checkpoint(), "checkpoint");
  }

  // Reopen: catalog, dictionary, indexes and data all come back.
  {
    auto engine = Unwrap(Engine::Open(options), "reopen engine");
    Collection* wiki = Unwrap(engine->GetCollection("wiki"), "get collection");
    std::printf("after reopen, %llu documents; page 1 reads: %s\n",
                static_cast<unsigned long long>(
                    Unwrap(wiki->DocCount(), "count")),
                Unwrap(wiki->GetDocumentText(nullptr, 1), "read").c_str());
  }
  std::filesystem::remove_all(dir);
  return 0;
}
