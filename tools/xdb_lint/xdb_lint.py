#!/usr/bin/env python3
"""xdb_lint: project-invariant checks Clang TSA cannot express.

The static half of xdb-check (the dynamic half is the LockRank enforcer in
src/common/lock_order.h). Rules:

  latch-then-log      (a) no WalLog append/commit reachable while a
                          Collection::latch_ scope is open in the same
                          function: the engine's log-before-latch rule.
  guard-writable      (b) every public Engine/Collection mutating entry
                          point calls GuardWritable/GuardWrite (directly or
                          via its designated guarded delegate) before its
                          first state change.
  replay-apply        (c) replay-only Apply* variants never call the logging
                          variants (Log*/AppendWal) and never name ddl_mu_.
  raw-std-sync        (d) no raw std::mutex / std::shared_mutex /
                          std::lock_guard / std::unique_lock /
                          std::condition_variable outside common/mutex.h.
  lockmgr-in-latch    (e) no LockManager acquisition (LockDocument/LockNode)
                          inside a latch scope: transaction locks come
                          BEFORE the structure latch, never under it.
  wait-span-rank      (i) an armed obs::WaitSpan must not stay open across
                          the construction of a mutex guard whose LockRank
                          is strictly below the span's component rank: such
                          a span would attribute a coarser-scope (earlier-
                          rank) wait to a finer component, corrupting the
                          breakdown. Holding a span across its OWN
                          component's lock (equal rank) is the normal
                          pattern and allowed.

Annotation-coverage audit (same exit-code discipline; CI requires an empty
report):

  locked-needs-requires  (f) a method named *Locked that declares no lock
                             contract at all (neither XDB_REQUIRES /
                             XDB_REQUIRES_SHARED — caller holds it — nor
                             XDB_EXCLUDES — method takes it itself).
  dangling-annotation    (g) XDB_GUARDED_BY/XDB_REQUIRES/XDB_EXCLUDES naming
                             a mutex that is not a member of any enclosing
                             class.
  unannotated-mutex      (h) a Mutex/SharedMutex member no annotation in the
                             file refers to: a lock the analysis cannot see
                             protecting anything.

The audit is two-pass per header: pass 1 collects every class extent and its
mutex members (annotated methods are declared BEFORE the private member
section in this codebase, so a single pass would see an empty member set);
pass 2 validates annotations and *Locked declarations against the completed
maps. common/mutex.h and common/lock_order.h are exempt — they are the
annotation/enforcement layer itself.

Backends: --backend=clang walks the AST through clang.cindex over
build/compile_commands.json; --backend=lex is a self-contained
lexer/brace-tracking scanner with identical rule semantics (used where
libclang is unavailable — the rules are lexical invariants, so the scanner
is exact on this codebase's style). --backend=auto (default) prefers clang
and falls back. The structural audit rules (f/g/h) are header-shape checks
and always run on the lexical scanner.

Diagnostics: `path:line: [rule-id] message`, exit 1 if any fired.
"""

import argparse
import json
import os
import re
import sys

RULE_LATCH_LOG = "latch-then-log"
RULE_GUARD = "guard-writable"
RULE_REPLAY = "replay-apply"
RULE_RAW_SYNC = "raw-std-sync"
RULE_LOCKMGR = "lockmgr-in-latch"
RULE_WAIT_SPAN = "wait-span-rank"
RULE_LOCKED_REQ = "locked-needs-requires"
RULE_DANGLING = "dangling-annotation"
RULE_UNANNOTATED = "unannotated-mutex"

ALL_RULES = [
    RULE_LATCH_LOG,
    RULE_GUARD,
    RULE_REPLAY,
    RULE_RAW_SYNC,
    RULE_LOCKMGR,
    RULE_WAIT_SPAN,
    RULE_LOCKED_REQ,
    RULE_DANGLING,
    RULE_UNANNOTATED,
]

# Rule (b) configuration: mutating entry point -> call tokens that count as
# its guard. A delegate (e.g. InsertDocument -> InsertTokens) is listed when
# the entry's only path runs through a function that guards first itself.
ENTRY_GUARDS = {
    "Engine::CreateCollection": ["GuardWritable"],
    "Engine::DropCollection": ["GuardWritable"],
    "Engine::RegisterSchema": ["GuardWritable"],
    "Collection::InsertTokens": ["GuardWrite"],
    "Collection::InsertDocument": ["GuardWrite", "InsertTokens"],
    "Collection::DeleteDocument": ["GuardWrite"],
    "Collection::UpdateTextNode": ["GuardWrite"],
    "Collection::DeleteSubtree": ["GuardWrite"],
    "Collection::InsertSubtree": ["GuardWrite"],
    "Collection::CreateValueIndex": ["GuardWrite", "ApplyCreateValueIndex"],
    "Collection::DropValueIndex": ["GuardWrite", "ApplyDropValueIndex"],
    "Collection::ApplyCreateValueIndex": ["GuardWrite"],
    "Collection::ApplyDropValueIndex": ["GuardWrite"],
    "Collection::CreateStructuralIndex": ["GuardWrite",
                                          "ApplyCreateStructuralIndex"],
    "Collection::DropStructuralIndex": ["GuardWrite",
                                        "ApplyDropStructuralIndex"],
    "Collection::ApplyCreateStructuralIndex": ["GuardWrite"],
    "Collection::ApplyDropStructuralIndex": ["GuardWrite"],
}

RAW_SYNC_TYPES = {
    "mutex",
    "shared_mutex",
    "recursive_mutex",
    "timed_mutex",
    "recursive_timed_mutex",
    "shared_timed_mutex",
    "lock_guard",
    "unique_lock",
    "shared_lock",
    "scoped_lock",
    "condition_variable",
    "condition_variable_any",
}

LOG_CALL_RE = re.compile(r"Log[A-Z]\w*")
CONTROL_KEYWORDS = {"if", "while", "for", "switch", "catch"}

# Rule (i) configuration. Each WaitState is pinned to the LockRank of the
# component whose waits it attributes; mirrors obs/wait_state.h.
WAIT_STATE_RANK = {
    "kBufferIo": 100,   # LockRank::kBufferShard
    "kLockWait": 70,    # LockRank::kLockManager
    "kWalCommit": 60,   # LockRank::kWalCommit
    "kLatch": 80,       # LockRank::kCollectionLatch
    "kFreshness": 170,  # LockRank::kEngineFreshness
    "kIndexProbe": 80,  # LockRank::kCollectionLatch
    "kReplApply": 20,   # LockRank::kEngineCatalog
}

# Mutex member name -> LockRank value, for guard constructions that name the
# member directly. `mu_` is deliberately absent: the bare name is ambiguous
# across classes (Engine::mu_ is kEngineCatalog, Shard::mu is kBufferShard),
# so only unambiguous members participate. Guards constructed with an
# explicit `LockRank::k...` argument are ranked from LOCK_RANK_VALUES
# instead.
MUTEX_NAME_RANK = {
    "latch_": 80,         # kCollectionLatch
    "commit_mu_": 60,     # kWalCommit
    "fresh_mu_": 170,     # kEngineFreshness
    "wal_names_mu_": 40,  # kWalNames
    "ddl_mu_": 30,        # kCollectionDdl
    "docid_mu_": 130,     # kCollectionDocId
}

# Mirrors common/lock_rank.h (engine ranks; the enforcer's test-only ranks
# are irrelevant to production scans but harmless to include).
LOCK_RANK_VALUES = {
    "kMetricsRegistry": 10,
    "kEngineCatalog": 20,
    "kCollectionDdl": 30,
    "kWalNames": 40,
    "kWalAppend": 50,
    "kWalCommit": 60,
    "kLockManager": 70,
    "kCollectionLatch": 80,
    "kRecordManager": 90,
    "kBufferShard": 100,
    "kBufferLsn": 110,
    "kTableSpace": 120,
    "kCollectionDocId": 130,
    "kNameDictionary": 140,
    "kCollectionStats": 150,
    "kPlanCache": 160,
    "kEngineFreshness": 170,
    "kThreadPoolWorker": 180,
    "kThreadPoolIdle": 190,
    "kSyncLatch": 200,
    "kShipTransport": 210,
    "kFaultInjector": 220,
    "kTestLow": 1000,
}

GUARD_TYPES = ("MutexLock", "ReaderMutexLock", "WriterMutexLock")


class Diagnostic:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexing: comment/string/preprocessor stripping and tokenization.
# --------------------------------------------------------------------------


def strip_noncode(text):
    """Blanks comments, string/char literals and preprocessor directives,
    preserving every newline so token line numbers match the source."""
    out = []
    i, n = 0, len(text)
    line_start = True
    while i < n:
        c = text[i]
        if line_start and c == "#":
            # Preprocessor directive (with continuations).
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        out.append("\n")
                        i += 1
                        continue
                    break
                out.append(" ")
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
            continue
        if c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(" ")
                i += 1
            continue
        out.append(c)
        if c == "\n":
            line_start = True
        elif not c.isspace():
            line_start = False
        i += 1
    return "".join(out)


TOKEN_RE = re.compile(r"[A-Za-z_]\w*|\d[\w.]*|::|->|<<|>>|\S")


class Tok:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


def tokenize(stripped):
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


def is_ident(t):
    return bool(re.fullmatch(r"[A-Za-z_]\w*", t))


def match_brackets(toks):
    """Forward pass building open->close and close->open maps for () and {}."""
    open_of, close_of = {}, {}
    stacks = {"(": [], "{": []}
    pair = {")": "(", "}": "{"}
    for i, t in enumerate(toks):
        if t.text in ("(", "{"):
            stacks[t.text].append(i)
        elif t.text in (")", "}"):
            st = stacks[pair[t.text]]
            if st:
                j = st.pop()
                open_of[i] = j
                close_of[j] = i
    return open_of, close_of


# --------------------------------------------------------------------------
# Scope scanning: function definitions with name, signature and body extents.
# --------------------------------------------------------------------------


class FunctionUnit:
    def __init__(self, name, qualified, line, sig_tokens, body_tokens):
        self.name = name            # unqualified ("InsertTokens")
        self.qualified = qualified  # "Collection::InsertTokens"
        self.line = line
        self.sig_tokens = sig_tokens    # tokens between param ')' and '{'
        self.body_tokens = body_tokens  # tokens inside the body braces


def _skip_trailing_return(toks, k, open_of):
    """From index k (just before '{'), skip a trailing return type back to
    its '->'..')' if present. Returns the index of the param-list ')' or
    None."""
    limit = 60
    while k >= 0 and limit:
        t = toks[k].text
        if t == ")":
            return k
        if t in (";", "{", "}"):
            return None
        if t == ">" :
            # jump over template argument list conservatively
            depth = 1
            k -= 1
            while k >= 0 and depth and limit:
                if toks[k].text == ">":
                    depth += 1
                elif toks[k].text == "<":
                    depth -= 1
                k -= 1
                limit -= 1
            continue
        k -= 1
        limit -= 1
    return None


def classify_brace(toks, b, open_of, in_function):
    """Classifies the '{' at index b. Returns (kind, name, param_close) with
    kind in {'function','namespace','class','block','init'}."""
    k = b - 1
    while k >= 0:
        t = toks[k].text
        if t in ("const", "noexcept", "override", "final", "mutable", "try",
                 "&", "&&"):
            k -= 1
            continue
        if t == ")":
            j = open_of.get(k)
            if j is None:
                return ("block", None, None)
            pre = toks[j - 1].text if j > 0 else ""
            if pre in CONTROL_KEYWORDS:
                return ("block", None, None)
            if re.fullmatch(r"XDB_[A-Z_0-9]+", pre):
                k = j - 2  # annotation macro: keep walking left
                continue
            if pre == "]":
                return ("function", "<lambda>", k)
            if pre == ")":
                # operator()(...) definition
                j2 = open_of.get(j - 1)
                if j2 is not None and j2 > 0 and toks[j2 - 1].text == "operator":
                    return ("function", "operator()", k)
                return ("block", None, None)
            if not is_ident(pre):
                # operator overloads: 'operator' SYMBOL '(' ... ')'
                if j >= 2 and toks[j - 2].text == "operator":
                    return ("function", "operator" + pre, k)
                return ("block", None, None)
            # pre is an identifier: either the function name or a
            # constructor-initializer element like `a_(x)`.
            q = j - 1
            parts = [pre]
            q -= 1
            while q >= 1 and toks[q].text == "::":
                parts.append(toks[q - 1].text)
                q -= 2
            before = toks[q].text if q >= 0 else ""
            if before == ",":
                # skip this initializer element and keep walking
                k = q
                continue
            if before == ":":
                # ctor-init ':' vs access-specifier ':'
                if q >= 1 and toks[q - 1].text in ("public", "private",
                                                   "protected"):
                    return ("function", "::".join(reversed(parts)), k)
                k = q - 1  # ctor-init list: continue to the param list
                continue
            return ("function", "::".join(reversed(parts)), k)
        if t == ">":
            pc = _skip_trailing_return(toks, k, open_of)
            if pc is None:
                return ("init", None, None)
            k = pc
            continue
        if is_ident(t):
            # walk back looking for namespace/class keys
            q = k
            limit = 40
            while q >= 0 and limit:
                tq = toks[q].text
                if tq in (";", "{", "}", ")"):
                    break
                if tq == "namespace":
                    return ("namespace", toks[k].text, None)
                if tq in ("class", "struct", "union"):
                    nm = toks[q + 1].text if q + 1 < len(toks) else ""
                    return ("class", nm, None)
                if tq == "enum":
                    nm_i = q + 1
                    if nm_i < len(toks) and toks[nm_i].text in ("class",
                                                                "struct"):
                        nm_i += 1
                    return ("class", toks[nm_i].text if nm_i < len(toks)
                            else "", None)
                q -= 1
                limit -= 1
            return ("init", None, None)
        if t in ("else", "do"):
            return ("block", None, None)
        if t in ("=", ",", "(", "[", "{", "return", ":"):
            return ("init", None, None)
        if t == "namespace":
            return ("namespace", "<anon>", None)
        return ("block" if in_function else "init", None, None)
    return ("init", None, None)


def scan_functions(toks):
    """Yields FunctionUnits for every function definition (top level or
    inline in a class); lambdas merge into their enclosing function."""
    open_of, close_of = match_brackets(toks)
    units = []
    scope = []  # (kind, name, close_index)
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text == "{" and i in close_of:
            in_fn = any(s[0] == "function" for s in scope)
            kind, name, param_close = classify_brace(toks, i, open_of, in_fn)
            close = close_of[i]
            if kind == "function" and not in_fn and name not in (None,
                                                                 "<lambda>"):
                cls = "::".join(s[1] for s in scope if s[0] == "class")
                qualified = name if "::" in name else (
                    f"{cls}::{name}" if cls else name)
                sig = toks[param_close + 1:i] if param_close else []
                units.append(FunctionUnit(
                    name.split("::")[-1], qualified, toks[i].line, sig,
                    toks[i + 1:close]))
                scope.append(("function", name, close))
            else:
                scope.append((kind, name or "", close))
        elif toks[i].text == "}":
            while scope and scope[-1][2] == i:
                scope.pop()
        i += 1
    return units


# --------------------------------------------------------------------------
# Shared rule logic over FunctionUnits.
# --------------------------------------------------------------------------


def _call_matches(body, i):
    """True if token i is an identifier immediately invoked: ident '('"""
    return (i + 1 < len(body) and body[i + 1].text == "(")


def _latch_scopes(unit):
    """Yields (index, is_open_event) latch-scope tracking over the body:
    returns a list 'active_at[i]' of booleans: is a latch scope open just
    before token i. XDB_REQUIRES(latch_) in the signature opens the whole
    body."""
    body = unit.body_tokens
    active = [False] * (len(body) + 1)
    always = False
    sig = unit.sig_tokens
    for i, t in enumerate(sig):
        if t.text == "XDB_REQUIRES" or t.text == "XDB_REQUIRES_SHARED":
            for u in sig[i:i + 12]:
                if u.text.endswith("latch_"):
                    always = True
    scopes = []  # depths
    depth = 0
    for i, t in enumerate(body):
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            while scopes and scopes[-1] > depth:
                scopes.pop()
        if (t.text in ("ReaderMutexLock", "WriterMutexLock")
                and i + 2 < len(body) and is_ident(body[i + 1].text)
                and body[i + 2].text == "("):
            j = i + 3
            while j < len(body) and body[j].text != ")":
                if body[j].text.endswith("latch_"):
                    scopes.append(depth)
                    break
                j += 1
        active[i + 1] = always or bool(scopes)
    active[0] = always
    return active


def _is_wal_call(body, i):
    """Token index i starts a WAL append/commit call."""
    t = body[i].text
    if t == "AppendWal" and _call_matches(body, i):
        return "AppendWal"
    if (t in ("Append", "AppendRaw", "Commit") and _call_matches(body, i)
            and i >= 2 and body[i - 1].text in ("->", ".")
            and "wal" in body[i - 2].text):
        return f"WalLog::{t}"
    if (LOG_CALL_RE.fullmatch(t) and _call_matches(body, i)
            and i >= 2 and body[i - 1].text in ("->", ".")
            and body[i - 2].text.startswith("engine")):
        return t
    return None


def rule_latch_then_log(path, units, diags):
    for unit in units:
        active = _latch_scopes(unit)
        body = unit.body_tokens
        for i, t in enumerate(body):
            if not active[i]:
                continue
            wal = _is_wal_call(body, i)
            if wal:
                diags.append(Diagnostic(
                    path, t.line, RULE_LATCH_LOG,
                    f"{unit.qualified}: {wal} reachable while a latch_ scope "
                    f"is open — WAL records must be appended BEFORE taking "
                    f"the structure latch (log-before-latch)"))


def rule_lockmgr_in_latch(path, units, diags):
    for unit in units:
        active = _latch_scopes(unit)
        body = unit.body_tokens
        for i, t in enumerate(body):
            if not active[i]:
                continue
            if t.text in ("LockDocument", "LockNode") and _call_matches(
                    body, i):
                diags.append(Diagnostic(
                    path, t.line, RULE_LOCKMGR,
                    f"{unit.qualified}: LockManager::{t.text} inside a "
                    f"latch_ scope — transaction locks are acquired BEFORE "
                    f"the structure latch, never under it"))


def _paren_args(body, i):
    """Token list inside the parens/braces opening at index i (exclusive),
    plus the index just past the closer. body[i] must be '(' or '{'."""
    openers = {"(": ")", "{": "}"}
    closer = openers[body[i].text]
    depth = 1
    j = i + 1
    args = []
    while j < len(body) and depth:
        tj = body[j].text
        if tj in openers:
            depth += 1
        elif tj == closer:
            depth -= 1
            if depth == 0:
                break
        args.append(body[j])
        j += 1
    return args, j + 1


def _args_wait_state(args):
    """The WaitState::k... constant named in a token list, or None."""
    for k in range(2, len(args)):
        if (args[k].text in WAIT_STATE_RANK and args[k - 1].text == "::"
                and args[k - 2].text == "WaitState"):
            return args[k].text
    return None


def _args_mutex_rank(args):
    """(rank, display-name) of the ranked mutex a guard/Mutex construction
    names, or (None, None). Explicit LockRank::k... arguments win over the
    member-name table."""
    for k in range(2, len(args)):
        if (args[k].text in LOCK_RANK_VALUES and args[k - 1].text == "::"
                and args[k - 2].text == "LockRank"):
            return LOCK_RANK_VALUES[args[k].text], f"LockRank::{args[k].text}"
    for a in args:
        if not is_ident(a.text):
            continue
        for mname, mrank in MUTEX_NAME_RANK.items():
            if a.text.endswith(mname):
                return mrank, a.text
    return None, None


def rule_wait_span_rank(path, units, diags):
    """An open WaitSpan (declared, not yet Finish()ed, scope still live)
    must not cover the construction of a mutex guard — or a rank-literal
    Mutex — whose LockRank is strictly below the span's component rank."""
    for unit in units:
        body = unit.body_tokens
        spans = []  # {"var","state","rank","depth","line"}
        depth = 0
        i = 0
        n = len(body)
        while i < n:
            t = body[i]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                spans = [s for s in spans if s["depth"] <= depth]
            elif (t.text == "WaitSpan" and i + 2 < n
                  and is_ident(body[i + 1].text)
                  and body[i + 2].text == "("):
                args, nxt = _paren_args(body, i + 2)
                state = _args_wait_state(args)
                if state is not None:
                    spans.append({"var": body[i + 1].text, "state": state,
                                  "rank": WAIT_STATE_RANK[state],
                                  "depth": depth, "line": t.line})
                i = nxt
                continue
            elif (is_ident(t.text) and i + 2 < n
                  and body[i + 1].text == "." and body[i + 2].text == "Finish"):
                spans = [s for s in spans if s["var"] != t.text]
            elif (spans and t.text in GUARD_TYPES + ("Mutex", "SharedMutex")
                  and i + 2 < n and is_ident(body[i + 1].text)
                  and body[i + 2].text in ("(", "{")):
                args, _ = _paren_args(body, i + 2)
                rank, mutex = _args_mutex_rank(args)
                if rank is not None:
                    for s in spans:
                        if rank < s["rank"]:
                            diags.append(Diagnostic(
                                path, t.line, RULE_WAIT_SPAN,
                                f"{unit.qualified}: {t.text} on {mutex} "
                                f"(rank {rank}) constructed while WaitSpan "
                                f"'{s['var']}' ({s['state']}, component rank "
                                f"{s['rank']}) is open — Finish() the span "
                                f"first, or the {s['state']} bucket absorbs "
                                f"a lower-ranked component's wait"))
            i += 1


MUTATION_MARKERS = ("AppendWal", "WriterMutexLock")


def _is_mutation_marker(body, i):
    t = body[i].text
    if t in MUTATION_MARKERS:
        return True
    if LOG_CALL_RE.fullmatch(t) and _call_matches(body, i):
        return True
    if t.endswith("Locked") and _call_matches(body, i):
        return True
    return False


def rule_guard_writable(path, units, diags):
    for unit in units:
        guards = ENTRY_GUARDS.get(unit.qualified)
        if not guards:
            continue
        body = unit.body_tokens
        guarded = False
        for i, t in enumerate(body):
            if t.text in guards and _call_matches(body, i):
                guarded = True
                break
            if _is_mutation_marker(body, i):
                diags.append(Diagnostic(
                    path, t.line, RULE_GUARD,
                    f"{unit.qualified}: state change ({t.text}) before "
                    f"{' or '.join(guards)} — replica/replay write "
                    f"protection must come first"))
                guarded = True  # one diagnostic per entry point
                break
        if not guarded:
            diags.append(Diagnostic(
                path, unit.line, RULE_GUARD,
                f"{unit.qualified}: mutating entry point never calls "
                f"{' or '.join(guards)}"))


def rule_replay_apply(path, units, diags):
    for unit in units:
        if not re.fullmatch(r"Apply[A-Z]\w*", unit.name):
            continue
        body = unit.body_tokens
        for i, t in enumerate(body):
            if t.text == "ddl_mu_":
                diags.append(Diagnostic(
                    path, t.line, RULE_REPLAY,
                    f"{unit.qualified}: replay-only Apply* variant names "
                    f"ddl_mu_ — replay already holds the WAL ordering, "
                    f"taking the DDL mutex here deadlocks against clients"))
            elif t.text == "AppendWal" and _call_matches(body, i):
                diags.append(Diagnostic(
                    path, t.line, RULE_REPLAY,
                    f"{unit.qualified}: Apply* variant appends to the WAL — "
                    f"replay must never re-log"))
            elif (LOG_CALL_RE.fullmatch(t.text) and _call_matches(body, i)
                  and i >= 1 and body[i - 1].text in ("->", ".")):
                diags.append(Diagnostic(
                    path, t.line, RULE_REPLAY,
                    f"{unit.qualified}: Apply* variant calls logging "
                    f"variant {t.text} — replay must never re-log"))


def rule_raw_std_sync(path, toks, diags):
    if path.replace(os.sep, "/").endswith("common/mutex.h"):
        return
    for i, t in enumerate(toks):
        if (t.text == "std" and i + 2 < len(toks)
                and toks[i + 1].text == "::"
                and toks[i + 2].text in RAW_SYNC_TYPES):
            diags.append(Diagnostic(
                path, t.line, RULE_RAW_SYNC,
                f"raw std::{toks[i + 2].text} outside common/mutex.h — use "
                f"the annotated, rank-checked wrappers (Mutex, SharedMutex, "
                f"MutexLock, CondVar)"))


# --------------------------------------------------------------------------
# Annotation-coverage audit (headers; lexical by design).
# --------------------------------------------------------------------------

ANNOTATION_MACROS = ("XDB_GUARDED_BY", "XDB_REQUIRES", "XDB_REQUIRES_SHARED",
                     "XDB_EXCLUDES")

# Audit exemptions: the annotation/enforcement layer itself. mutex.h holds
# reference members (`Mutex& mu_`) inside the RAII guards and the macro
# plumbing; lock_order.h is the checker's own API.
AUDIT_EXEMPT = ("common/mutex.h", "common/lock_order.h")

CONTRACT_MACROS = ("XDB_REQUIRES", "XDB_REQUIRES_SHARED", "XDB_EXCLUDES")


def _collect_classes(toks, open_of, close_of):
    """Pass 1: every class/struct extent with its Mutex/SharedMutex value
    members (including brace-initialized `Mutex mu_{LockRank::kX};`).
    Returns (class records, record-by-open-brace-index)."""
    classes = []
    rec_by_open = {}
    stack = []  # (kind, record-or-None) per open brace
    n = len(toks)
    for i, t in enumerate(toks):
        if t.text == "{" and i in close_of:
            in_fn = any(k == "function" for k, _ in stack)
            kind, name, _ = classify_brace(toks, i, open_of, in_fn)
            rec = None
            if kind == "class":
                rec = {"name": name or "<anon>", "open": i,
                       "close": close_of[i], "mutexes": {}}
                classes.append(rec)
                rec_by_open[i] = rec
            stack.append((kind, rec))
        elif t.text == "}" and i in open_of:
            if stack:
                stack.pop()
        elif (t.text in ("Mutex", "SharedMutex") and i + 2 < n
              and is_ident(toks[i + 1].text)
              and toks[i + 2].text in (";", "{")):
            # A value member at class scope (not a local inside an inline
            # body, not a `Mutex&` reference, not a constructor call).
            if any(k == "function" for k, _ in stack):
                continue
            rec = next((r for k, r in reversed(stack) if r is not None),
                       None)
            if rec is not None:
                rec["mutexes"][toks[i + 1].text] = t.line
    return classes, rec_by_open


def audit_header(path, toks, diags, enabled):
    norm = path.replace(os.sep, "/")
    if norm.endswith(AUDIT_EXEMPT):
        return
    open_of, close_of = match_brackets(toks)
    classes, rec_by_open = _collect_classes(toks, open_of, close_of)
    # Pass 2: validate annotations and *Locked declarations against the
    # completed member maps. Annotation references are pooled file-wide for
    # the unannotated-mutex check so `shard.mu`-style dotted references from
    # an outer class cover nested-struct members.
    file_refs = set()
    stack = []  # (kind, record-or-None) per open brace
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "{" and i in close_of:
            rec = rec_by_open.get(i)
            if rec is not None:
                stack.append(("class", rec))
            else:
                in_fn = any(k == "function" for k, _ in stack)
                kind, _, _ = classify_brace(toks, i, open_of, in_fn)
                stack.append((kind, None))
            i += 1
            continue
        if t.text == "}" and i in open_of:
            if stack:
                stack.pop()
            i += 1
            continue
        in_fn = any(k == "function" for k, _ in stack)
        enclosing = [r for _, r in stack if r is not None]
        cls = enclosing[-1] if enclosing else None
        if t.text in ANNOTATION_MACROS and i + 1 < n and \
                toks[i + 1].text == "(":
            close = close_of.get(i + 1)
            if close is not None:
                args = toks[i + 2:close]
                simple = [a.text for a in args if is_ident(a.text)]
                dotted = any(a.text in (".", "->") for a in args)
                file_refs.update(simple)
                if not dotted and cls is not None and RULE_DANGLING in \
                        enabled:
                    for name in simple:
                        if not any(name in r["mutexes"]
                                   for r in enclosing):
                            diags.append(Diagnostic(
                                path, t.line, RULE_DANGLING,
                                f"{t.text}({name}) does not name a "
                                f"Mutex/SharedMutex member of "
                                f"{cls['name']} or an enclosing class"))
                i = close + 1
                continue
        # *Locked declarations at class scope must state a lock contract:
        # XDB_REQUIRES[_SHARED] (caller holds it) or XDB_EXCLUDES (the
        # method takes it itself — e.g. InsertTokensLocked, where "Locked"
        # refers to the document write-lock, not the latch).
        if (RULE_LOCKED_REQ in enabled and is_ident(t.text)
                and t.text.endswith("Locked") and cls is not None
                and not in_fn and i + 1 < n and toks[i + 1].text == "("):
            close = close_of.get(i + 1)
            if close is not None:
                j = close + 1
                has_contract = False
                while j < n and toks[j].text not in (";", "{"):
                    if toks[j].text in CONTRACT_MACROS:
                        has_contract = True
                    j += 1
                if not has_contract:
                    diags.append(Diagnostic(
                        path, t.line, RULE_LOCKED_REQ,
                        f"{cls['name']}::{t.text} is a *Locked method with "
                        f"no lock contract — annotate XDB_REQUIRES (caller "
                        f"holds the lock) or XDB_EXCLUDES (method acquires "
                        f"it)"))
        i += 1
    if RULE_UNANNOTATED in enabled:
        for rec in classes:
            for mname, mline in rec["mutexes"].items():
                if mname not in file_refs:
                    diags.append(Diagnostic(
                        path, mline, RULE_UNANNOTATED,
                        f"{rec['name']}::{mname} is a mutex no "
                        f"XDB_GUARDED_BY/XDB_REQUIRES/XDB_EXCLUDES in this "
                        f"file refers to — the analysis cannot see what it "
                        f"protects"))


# --------------------------------------------------------------------------
# Backends.
# --------------------------------------------------------------------------


def lex_units(text):
    toks = tokenize(strip_noncode(text))
    return toks, scan_functions(toks)


def clang_units(path, compile_args):
    """AST-accurate FunctionUnits via libclang. Token streams come from the
    real lexer; function extents and qualified names from the AST."""
    from clang import cindex  # noqa: deferred import; availability gated

    index = cindex.Index.create()
    tu = index.parse(path, args=compile_args)
    units = []
    toks = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind.name in ("COMMENT",):
            continue
        if tok.location.file and tok.location.file.name != path:
            continue
        toks.append(Tok(tok.spelling, tok.location.line))

    def walk(cur):
        for c in cur.get_children():
            if c.location.file and c.location.file.name != path:
                continue
            if c.kind.name in ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                               "DESTRUCTOR") and c.is_definition():
                body = [ch for ch in c.get_children()
                        if ch.kind.name == "COMPOUND_STMT"]
                if body:
                    b = body[0]
                    body_toks = [Tok(t.spelling, t.location.line)
                                 for t in tu.get_tokens(extent=b.extent)
                                 if t.kind.name != "COMMENT"][1:-1]
                    sig_toks = [Tok(t.spelling, t.location.line)
                                for t in tu.get_tokens(extent=c.extent)
                                if t.kind.name != "COMMENT"
                                and t.location.line <= b.extent.start.line]
                    parent = c.semantic_parent
                    qual = c.spelling
                    if parent and parent.kind.name in ("CLASS_DECL",
                                                       "STRUCT_DECL"):
                        qual = f"{parent.spelling}::{c.spelling}"
                    units.append(FunctionUnit(c.spelling, qual,
                                              c.location.line, sig_toks,
                                              body_toks))
            walk(c)

    walk(tu.cursor)
    return toks, units


def load_compile_commands(build_dir):
    ccpath = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(ccpath):
        return {}
    with open(ccpath) as f:
        entries = json.load(f)
    args = {}
    for e in entries:
        file = os.path.normpath(os.path.join(e["directory"], e["file"]))
        cmd = e.get("arguments") or e["command"].split()
        # keep -I/-D/-std flags for the parse
        keep = []
        it = iter(cmd[1:])
        for a in it:
            if a.startswith(("-I", "-D", "-std=")):
                keep.append(a)
            elif a in ("-isystem",):
                keep.append(a)
                keep.append(next(it, ""))
        args[file] = keep
    return args


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


def collect_files(root):
    exts = (".cc", ".h")
    files = []
    for dirpath, _, names in os.walk(root):
        for nm in sorted(names):
            if nm.endswith(exts):
                files.append(os.path.join(dirpath, nm))
    return files


def run(paths, backend, compile_args_by_file, rules):
    diags = []
    use_clang = backend == "clang"
    if backend == "auto":
        try:
            from clang import cindex  # noqa: F401
            use_clang = True
        except ImportError:
            use_clang = False
    for path in paths:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        rel = path
        lex_toks = None
        if use_clang and path.endswith(".cc"):
            try:
                toks, units = clang_units(
                    path, compile_args_by_file.get(os.path.normpath(path),
                                                   []))
            except Exception as exc:  # fall back per-file
                print(f"xdb_lint: clang backend failed on {path}: {exc}; "
                      f"falling back to lex", file=sys.stderr)
                toks, units = lex_units(text)
        else:
            toks, units = lex_units(text)
            lex_toks = toks
        if RULE_RAW_SYNC in rules:
            rule_raw_std_sync(rel, toks, diags)
        if path.endswith(".cc"):
            if RULE_LATCH_LOG in rules:
                rule_latch_then_log(rel, units, diags)
            if RULE_LOCKMGR in rules:
                rule_lockmgr_in_latch(rel, units, diags)
            if RULE_WAIT_SPAN in rules:
                rule_wait_span_rank(rel, units, diags)
            if RULE_GUARD in rules:
                rule_guard_writable(rel, units, diags)
            if RULE_REPLAY in rules:
                rule_replay_apply(rel, units, diags)
        if path.endswith(".h"):
            if lex_toks is None:
                lex_toks = tokenize(strip_noncode(text))
            audit_header(rel, lex_toks, diags, rules)
    return diags


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="directory tree to lint (default: <repo>/src)")
    ap.add_argument("--backend", choices=["auto", "clang", "lex"],
                    default="auto")
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build dir with compile_commands.json "
                         "(clang backend)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    args = ap.parse_args(argv)

    rules = set(ALL_RULES)
    if args.rules:
        rules = set(args.rules.split(","))
        unknown = rules - set(ALL_RULES)
        if unknown:
            ap.error(f"unknown rules: {sorted(unknown)}")

    if args.files:
        paths = args.files
    else:
        root = args.root
        if root is None:
            root = os.path.join(
                os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__)))), "src")
        paths = collect_files(root)

    compile_args = {}
    if args.build_dir:
        compile_args = load_compile_commands(args.build_dir)

    diags = run(paths, args.backend, compile_args, rules)
    for d in diags:
        print(d)
    if diags:
        print(f"xdb_lint: {len(diags)} finding(s)", file=sys.stderr)
        return 1
    print(f"xdb_lint: clean ({len(paths)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
