// Fixture: replay-only Apply* variants that re-log or take the DDL mutex.
#include "fixture_decls.h"

namespace xdb {

Status Collection::ApplyCreateValueIndex(const ValueIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  MutexLock ddl(ddl_mu_);  // LINT-EXPECT[replay-apply]
  return Install(def);
}

Status Collection::ApplyDropValueIndex(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWrite());
  XDB_RETURN_NOT_OK(engine_->LogDropIndex(meta_.name, name));  // LINT-EXPECT[replay-apply]
  return AppendWal(name);  // LINT-EXPECT[replay-apply]
}

// A structural-index replay variant that re-logs the DDL: replay would
// append a second record for an operation already in the WAL.
Status Collection::ApplyCreateStructuralIndex(const StructuralIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  XDB_RETURN_NOT_OK(Install(def));
  return engine_->LogCreateStructuralIndex(meta_.name, def);  // LINT-EXPECT[replay-apply]
}

}  // namespace xdb
