// Fixture: replay-only Apply* variants that re-log or take the DDL mutex.
#include "fixture_decls.h"

namespace xdb {

Status Collection::ApplyCreateValueIndex(const ValueIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  MutexLock ddl(ddl_mu_);  // LINT-EXPECT[replay-apply]
  return Install(def);
}

Status Collection::ApplyDropValueIndex(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWrite());
  XDB_RETURN_NOT_OK(engine_->LogDropIndex(meta_.name, name));  // LINT-EXPECT[replay-apply]
  return AppendWal(name);  // LINT-EXPECT[replay-apply]
}

}  // namespace xdb
