// Fixture: fully covered annotations — must stay quiet. Exercises the
// two-pass shape the real headers have: annotated methods are declared
// BEFORE the private member section, brace-initialized members, nested
// structs referenced through dotted annotation args, and *Locked methods
// with either contract direction.
#pragma once
#include "fixture_decls.h"

namespace xdb {

class GoodAudit {
 public:
  // Caller holds the latch.
  Status RebuildLocked() XDB_REQUIRES(latch_);
  // Caller holds it shared.
  Status ScanLocked() const XDB_REQUIRES_SHARED(latch_);
  // "Locked" refers to an external lock; the method takes mu_ itself.
  Status InsertLocked(uint64_t doc_id) XDB_EXCLUDES(mu_);
  // Dotted reference into a nested struct's member.
  void FlushShard() XDB_EXCLUDES(shard_.mu);

 private:
  struct Shard {
    // Covered by the dotted shard_.mu reference above (file-wide pool).
    Mutex mu{LockRank::kTestMid};
    int frames = 0;
  };

  SharedMutex latch_{LockRank::kTestHigh};
  Mutex mu_{LockRank::kTestLow};
  int counter_ XDB_GUARDED_BY(mu_) = 0;
  Shard shard_;
};

}  // namespace xdb
