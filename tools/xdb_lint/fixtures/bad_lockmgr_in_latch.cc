// Fixture: LockManager acquisition under the structure latch.
#include "fixture_decls.h"

namespace xdb {

Status Collection::BadLockUnderLatch(Transaction* txn, uint64_t doc_id) {
  WriterMutexLock latch(latch_);
  return engine_->locks()->LockDocument(txn, doc_id);  // LINT-EXPECT[lockmgr-in-latch]
}

Status Collection::GoodLockThenLatch(Transaction* txn, uint64_t doc_id) {
  // The transaction lock comes first, at its own rank...
  XDB_RETURN_NOT_OK(engine_->locks()->LockDocument(txn, doc_id));
  // ...then the latch.
  WriterMutexLock latch(latch_);
  return Mutate();
}

}  // namespace xdb
