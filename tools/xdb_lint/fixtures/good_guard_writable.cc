// Fixture: correctly guarded entry points — must stay quiet.
#include "fixture_decls.h"

namespace xdb {

Result<uint64_t> Collection::InsertTokens(Transaction* txn, Slice tokens) {
  XDB_RETURN_NOT_OK(GuardWrite());
  XDB_RETURN_NOT_OK(engine_->LogInsert(meta_.name, 1, tokens));
  return InsertTokensLocked(txn, tokens, 1);
}

// Delegation counts: InsertDocument's only path runs through InsertTokens,
// which guards first itself.
Result<uint64_t> Collection::InsertDocument(Transaction* txn, Slice xml) {
  Tokens tokens;
  XDB_RETURN_NOT_OK(Parse(xml, &tokens));
  return InsertTokens(txn, tokens.data());
}

Status Engine::CreateCollection(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWritable());
  MutexLock lock(mu_);
  return catalog_.Create(name);
}

// Structural-index DDL mirrors value-index DDL: the logging entry point
// delegates to its Apply* variant (which guards first itself) before
// writing the WAL record.
Status Collection::CreateStructuralIndex(const StructuralIndexDef& def) {
  MutexLock ddl(ddl_mu_);
  XDB_RETURN_NOT_OK(ApplyCreateStructuralIndex(def));
  return engine_->LogCreateStructuralIndex(meta_.name, def);
}

Status Collection::ApplyCreateStructuralIndex(const StructuralIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  WriterMutexLock latch(latch_);
  return Install(def);
}

}  // namespace xdb
