// Fixture: raw std synchronization primitives outside common/mutex.h.
#include "fixture_decls.h"

namespace xdb {

class RawSyncUser {
 public:
  void Touch() {
    std::lock_guard<std::mutex> g(mu_);  // LINT-EXPECT[raw-std-sync] LINT-EXPECT[raw-std-sync]
    ++count_;
  }

 private:
  std::mutex mu_;  // LINT-EXPECT[raw-std-sync]
  std::condition_variable cv_;  // LINT-EXPECT[raw-std-sync]
  int count_ = 0;
};

}  // namespace xdb
