// Fixture: correct replay-only Apply* variants — must stay quiet.
#include "fixture_decls.h"

namespace xdb {

// Applies the mutation under the latch; never logs, never touches ddl_mu_.
Status Collection::ApplyCreateValueIndex(const ValueIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  WriterMutexLock latch(latch_);
  return Install(def);
}

Status Collection::ApplyDropValueIndex(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWrite());
  WriterMutexLock latch(latch_);
  return Remove(name);
}

// Non-Apply functions may name ddl_mu_ and log freely.
Status Collection::CreateValueIndex(const ValueIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  MutexLock ddl(ddl_mu_);
  XDB_RETURN_NOT_OK(ApplyCreateValueIndex(def));
  return engine_->LogCreateIndex(meta_.name, def);
}

// Structural-index replay variants follow the same contract.
Status Collection::ApplyCreateStructuralIndex(const StructuralIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  WriterMutexLock latch(latch_);
  return Install(def);
}

Status Collection::ApplyDropStructuralIndex(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWrite());
  WriterMutexLock latch(latch_);
  return Remove(name);
}

}  // namespace xdb
