// Fixture: annotation-coverage audit violations.
#pragma once
#include "fixture_decls.h"

namespace xdb {

class BadAudit {
 public:
  // A *Locked method with no lock contract at all.
  void RebuildLocked();  // LINT-EXPECT[locked-needs-requires]

  // Names a mutex that is not a member of this (or any enclosing) class.
  int Read() const XDB_REQUIRES(phantom_mu_);  // LINT-EXPECT[dangling-annotation]

 private:
  int value_ XDB_GUARDED_BY(ghost_mu_);  // LINT-EXPECT[dangling-annotation]

  // No annotation anywhere in the file refers to this lock.
  Mutex silent_mu_{LockRank::kTestLow};  // LINT-EXPECT[unannotated-mutex]
};

}  // namespace xdb
