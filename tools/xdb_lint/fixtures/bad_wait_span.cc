// Fixture: wait-span guard objects held across lower-ranked mutex
// construction. Each WaitState is pinned to its component's LockRank
// (wait_state.h); a span left open across the construction of a guard on a
// mutex ranked strictly below that component would fold a coarser-scope
// wait into the wrong bucket.
#include "fixture_decls.h"

namespace xdb {

// kBufferIo is pinned to kBufferShard (rank 100); commit_mu_ is rank 60.
Status Collection::BadIoSpanOverCommitMutex(PageId id) {
  obs::WaitSpan io_span(wait_sink_, obs::WaitState::kBufferIo);
  MutexLock lock(commit_mu_);  // LINT-EXPECT[wait-span-rank]
  return ReadPage(id);
}

// The span is still open inside nested blocks until its scope closes.
Status Collection::BadFreshnessSpanOverLatch() {
  obs::WaitSpan fresh_span(wait_sink_, obs::WaitState::kFreshness);
  if (NeedsCatchup()) {
    ReaderMutexLock latch(latch_);  // LINT-EXPECT[wait-span-rank]
    return WaitForApply();
  }
  return Status::OK();
}

// Constructing a rank-literal Mutex under an open span is the same bug.
Status Collection::BadSpanOverRankLiteralMutex() {
  obs::WaitSpan probe_span(wait_sink_, obs::WaitState::kIndexProbe);
  Mutex scratch{LockRank::kCollectionDdl};  // LINT-EXPECT[wait-span-rank]
  return Probe();
}

// A span whose variable was Finish()ed no longer covers anything.
Status Collection::GoodFinishBeforeGuard(PageId id) {
  obs::WaitSpan io_span(wait_sink_, obs::WaitState::kBufferIo);
  Status read = ReadPage(id);
  io_span.Finish();
  MutexLock lock(commit_mu_);
  return read;
}

// Holding a span across its OWN component's lock (equal rank) is the
// normal pattern: the WAL commit span brackets the whole group-commit wait
// under commit_mu_.
Status WalLog::GoodCommitSpanOverOwnMutex() {
  obs::WaitSpan commit_span(wait_sink_, obs::WaitState::kWalCommit);
  MutexLock lock(commit_mu_);
  return WaitForDurable();
}

// Higher-ranked guards under an open span are fine too (rank order says
// they are acquired later/finer).
Status Collection::GoodSpanOverHigherRank() {
  obs::WaitSpan commit_span(wait_sink_, obs::WaitState::kWalCommit);
  MutexLock lock(docid_mu_);
  return Allocate();
}

// Scope exit closes the span: the guard below is not covered.
Status Collection::GoodScopeClosesSpan(PageId id) {
  {
    obs::WaitSpan io_span(wait_sink_, obs::WaitState::kBufferIo);
    Status read = ReadPage(id);
  }
  MutexLock lock(commit_mu_);
  return Status::OK();
}

}  // namespace xdb
