// Fixture: the correct log-before-latch shape — must stay quiet.
#include "fixture_decls.h"

namespace xdb {

Status Collection::GoodLogThenLatch(Transaction* txn, Slice tokens) {
  // WAL record first, at its own rank...
  XDB_RETURN_NOT_OK(engine_->LogInsert(meta_.name, 1, tokens));
  // ...then the structure latch for the in-memory mutation.
  WriterMutexLock latch(latch_);
  return ApplyTokens(tokens);
}

Status Collection::GoodSequentialScopes(Transaction* txn) {
  {
    WriterMutexLock latch(latch_);
    Mutate();
  }
  // The latch scope above is closed before the append.
  return wal_->Commit(9);
}

Status Collection::GoodOtherLockIsNotALatch(Transaction* txn) {
  // docid_mu_ is not latch_: appends under it are a different rule's
  // business (the rank checker's), not latch-then-log's.
  MutexLock lock(docid_mu_);
  return wal_->Append(Slice());
}

}  // namespace xdb
