// Fixture: mutating entry points that skip the replica write guard.
#include "fixture_decls.h"

namespace xdb {

// Mutates (takes the write latch) before ever calling GuardWrite.
Result<uint64_t> Collection::InsertTokens(Transaction* txn, Slice tokens) {
  WriterMutexLock latch(latch_);  // LINT-EXPECT[guard-writable]
  return Apply(tokens);
}

// Calls it, but only AFTER the first state change.
Status Collection::DeleteDocument(Transaction* txn, uint64_t doc_id) {
  engine_->LogDelete(meta_.name, doc_id);  // LINT-EXPECT[guard-writable]
  XDB_RETURN_NOT_OK(GuardWrite());
  return Status::OK();
}

// Never calls GuardWritable at all; the diagnostic anchors on the line of
// the function body's opening brace.
Status Engine::RegisterSchema(const std::string& name, Slice text) {  // LINT-EXPECT[guard-writable]
  catalog_.Add(name, text);
  return Status::OK();
}

// Structural-index replay variant that installs before checking the guard:
// a replica would mutate local state before discovering it is read-only.
Status Collection::ApplyDropStructuralIndex(const std::string& name) {
  WriterMutexLock latch(latch_);  // LINT-EXPECT[guard-writable]
  Remove(name);
  XDB_RETURN_NOT_OK(GuardWrite());
  return Status::OK();
}

}  // namespace xdb
