// Shared fixture pseudo-declarations. The lexical backend never resolves
// includes, so nothing here needs to compile — the fixtures only have to
// LOOK like engine code to the scanner. This file itself must stay
// lint-clean (the runner lints every file in this directory).
#pragma once
