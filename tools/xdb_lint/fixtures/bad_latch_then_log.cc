// Fixture: WAL appends reachable while a latch_ scope is open.
// Each marked line must produce exactly the marked diagnostic.
#include "fixture_decls.h"

namespace xdb {

Status Collection::BadDirectAppend(Transaction* txn, Slice tokens) {
  WriterMutexLock latch(latch_);
  return engine_->LogInsert(meta_.name, 1, tokens);  // LINT-EXPECT[latch-then-log]
}

Status Collection::BadWalHandle(Transaction* txn) {
  {
    ReaderMutexLock latch(latch_);
    wal_->Commit(7);  // LINT-EXPECT[latch-then-log]
  }
  // Scope closed: this append is fine.
  wal_->Commit(8);
  return Status::OK();
}

// XDB_REQUIRES(latch_) in the signature means the whole body runs latched.
Status Collection::BadUnderRequires(Transaction* txn) XDB_REQUIRES(latch_) {
  return wal_->Append(Slice());  // LINT-EXPECT[latch-then-log]
}

}  // namespace xdb
