#!/usr/bin/env python3
"""Fixture suite for xdb_lint.

Every file in fixtures/ is linted (lexical backend — deterministic and
dependency-free); expectations are `// LINT-EXPECT[rule-id]` markers on the
exact line each diagnostic must anchor to (repeat the marker for multiple
findings on one line). The comparison is an exact multiset match over
(file, line, rule): a missed finding, a spurious finding, or a finding on
the wrong line all fail. `good_*` fixtures carry no markers and so assert
total silence.

Also asserts the linter runs CLEAN over the repo's src/ tree, which is the
same gate CI applies.
"""

import collections
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "xdb_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
SRC = os.path.join(os.path.dirname(os.path.dirname(HERE)), "src")

EXPECT_RE = re.compile(r"LINT-EXPECT\[([a-z-]+)\]")
DIAG_RE = re.compile(r"^(.*?):(\d+): \[([a-z-]+)\]")


def collect_expectations(paths):
    expected = collections.Counter()
    for path in paths:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                for m in EXPECT_RE.finditer(line):
                    expected[(path, lineno, m.group(1))] += 1
    return expected


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, LINT, "--backend=lex"] + args,
        capture_output=True, text=True)
    diags = collections.Counter()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags[(m.group(1), int(m.group(2)), m.group(3))] += 1
    return proc, diags


def main():
    fixture_files = sorted(
        os.path.join(FIXTURES, f) for f in os.listdir(FIXTURES)
        if f.endswith((".cc", ".h")))
    if not fixture_files:
        print("FAIL: no fixtures found", file=sys.stderr)
        return 1

    failures = []

    # 1. Exact multiset match over the fixture directory.
    expected = collect_expectations(fixture_files)
    proc, got = run_lint(fixture_files)
    for key in sorted(set(expected) | set(got)):
        want, have = expected[key], got[key]
        if want != have:
            path, line, rule = key
            failures.append(
                f"{os.path.basename(path)}:{line} [{rule}]: "
                f"expected {want} finding(s), got {have}")
    rules_covered = {rule for (_, _, rule) in expected}
    print(f"fixtures: {len(fixture_files)} files, "
          f"{sum(expected.values())} expected findings, "
          f"{len(rules_covered)} rules covered "
          f"({', '.join(sorted(rules_covered))})")

    # Every rule the linter knows must be exercised by some fixture.
    all_rules_out = subprocess.run(
        [sys.executable, LINT, "--rules=no-such-rule"],
        capture_output=True, text=True)
    known = set(re.findall(r"'([a-z-]+)'", all_rules_out.stderr))
    known.discard("no-such-rule")
    if not known:
        # Fallback: parse the module's ALL_RULES without importing it.
        with open(LINT, encoding="utf-8") as f:
            text = f.read()
        known = set(re.findall(r'^RULE_\w+ = "([a-z-]+)"$', text, re.M))
    missing = known - rules_covered
    if missing:
        failures.append(f"rules with no firing fixture: {sorted(missing)}")

    # 2. The repo itself must be clean — same gate as CI.
    repo_proc, repo_diags = run_lint(["--root", SRC])
    if repo_proc.returncode != 0 or repo_diags:
        failures.append(
            f"src/ tree not clean ({sum(repo_diags.values())} findings):\n"
            + repo_proc.stdout)
    else:
        print(f"repo: clean ({repo_proc.stderr.strip()})")

    if failures:
        print("FAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
