// xdb_top: render an engine DebugSnapshot for humans (default) or as the
// canonical JSON (--json). Two sources:
//
//   xdb_top --db <dir>       open the database read-only-ish (a normal Open,
//                            which runs recovery) and snapshot it;
//   xdb_top --file <json>    parse a snapshot some other process captured
//                            (Engine::DebugSnapshot().ToJson() — e.g. the
//                            bench-smoke CI artifact) and render it.
//
// `--file x --json` is the round-trip mode CI uses as a schema smoke-test:
// the output must be byte-identical to the input for a canonical snapshot.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/engine.h"
#include "obs/debug_snapshot.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] (--db <dir> | --file <snapshot.json>)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string db_dir;
  std::string file;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      db_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--file") == 0 && i + 1 < argc) {
      file = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (db_dir.empty() == file.empty()) return Usage(argv[0]);

  xdb::obs::DebugSnapshot snap;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "xdb_top: cannot read %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = xdb::obs::DebugSnapshot::FromJson(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "xdb_top: %s: %s\n", file.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    snap = parsed.MoveValue();
  } else {
    xdb::EngineOptions options;
    options.dir = db_dir;
    auto engine = xdb::Engine::Open(options);
    if (!engine.ok()) {
      std::fprintf(stderr, "xdb_top: open %s: %s\n", db_dir.c_str(),
                   engine.status().ToString().c_str());
      return 1;
    }
    snap = engine.value()->DebugSnapshot();
  }

  const std::string out = json ? snap.ToJson() : snap.ToText();
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (!out.empty() && out.back() != '\n') std::fputc('\n', stdout);
  return 0;
}
