# Empty compiler generated dependencies file for bench_index_access.
# This may be replaced when dependencies are built.
