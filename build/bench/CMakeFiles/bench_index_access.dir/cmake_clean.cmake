file(REMOVE_RECURSE
  "CMakeFiles/bench_index_access.dir/bench_index_access.cc.o"
  "CMakeFiles/bench_index_access.dir/bench_index_access.cc.o.d"
  "bench_index_access"
  "bench_index_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
