# Empty compiler generated dependencies file for bench_storage_packing.
# This may be replaced when dependencies are built.
