file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_packing.dir/bench_storage_packing.cc.o"
  "CMakeFiles/bench_storage_packing.dir/bench_storage_packing.cc.o.d"
  "bench_storage_packing"
  "bench_storage_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
