file(REMOVE_RECURSE
  "CMakeFiles/bench_quickxscan.dir/bench_quickxscan.cc.o"
  "CMakeFiles/bench_quickxscan.dir/bench_quickxscan.cc.o.d"
  "bench_quickxscan"
  "bench_quickxscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quickxscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
