# Empty compiler generated dependencies file for bench_quickxscan.
# This may be replaced when dependencies are built.
