file(REMOVE_RECURSE
  "CMakeFiles/bench_insertion.dir/bench_insertion.cc.o"
  "CMakeFiles/bench_insertion.dir/bench_insertion.cc.o.d"
  "bench_insertion"
  "bench_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
