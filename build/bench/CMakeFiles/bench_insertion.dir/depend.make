# Empty dependencies file for bench_insertion.
# This may be replaced when dependencies are built.
