# Empty dependencies file for bench_constructor.
# This may be replaced when dependencies are built.
