file(REMOVE_RECURSE
  "CMakeFiles/bench_constructor.dir/bench_constructor.cc.o"
  "CMakeFiles/bench_constructor.dir/bench_constructor.cc.o.d"
  "bench_constructor"
  "bench_constructor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constructor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
