file(REMOVE_RECURSE
  "CMakeFiles/bench_value_index.dir/bench_value_index.cc.o"
  "CMakeFiles/bench_value_index.dir/bench_value_index.cc.o.d"
  "bench_value_index"
  "bench_value_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
