# Empty dependencies file for bench_value_index.
# This may be replaced when dependencies are built.
