# Empty compiler generated dependencies file for bench_update.
# This may be replaced when dependencies are built.
