file(REMOVE_RECURSE
  "CMakeFiles/bench_update.dir/bench_update.cc.o"
  "CMakeFiles/bench_update.dir/bench_update.cc.o.d"
  "bench_update"
  "bench_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
