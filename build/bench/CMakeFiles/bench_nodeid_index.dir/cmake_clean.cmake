file(REMOVE_RECURSE
  "CMakeFiles/bench_nodeid_index.dir/bench_nodeid_index.cc.o"
  "CMakeFiles/bench_nodeid_index.dir/bench_nodeid_index.cc.o.d"
  "bench_nodeid_index"
  "bench_nodeid_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nodeid_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
