# Empty dependencies file for bench_nodeid_index.
# This may be replaced when dependencies are built.
