file(REMOVE_RECURSE
  "libxdb.a"
)
