# Empty dependencies file for xdb.
# This may be replaced when dependencies are built.
