
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/xdb.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/xdb.dir/btree/btree.cc.o.d"
  "/root/repo/src/cc/lock_manager.cc" "src/CMakeFiles/xdb.dir/cc/lock_manager.cc.o" "gcc" "src/CMakeFiles/xdb.dir/cc/lock_manager.cc.o.d"
  "/root/repo/src/cc/transaction.cc" "src/CMakeFiles/xdb.dir/cc/transaction.cc.o" "gcc" "src/CMakeFiles/xdb.dir/cc/transaction.cc.o.d"
  "/root/repo/src/cc/version_manager.cc" "src/CMakeFiles/xdb.dir/cc/version_manager.cc.o" "gcc" "src/CMakeFiles/xdb.dir/cc/version_manager.cc.o.d"
  "/root/repo/src/common/arena.cc" "src/CMakeFiles/xdb.dir/common/arena.cc.o" "gcc" "src/CMakeFiles/xdb.dir/common/arena.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/xdb.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/xdb.dir/common/coding.cc.o.d"
  "/root/repo/src/common/decimal.cc" "src/CMakeFiles/xdb.dir/common/decimal.cc.o" "gcc" "src/CMakeFiles/xdb.dir/common/decimal.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xdb.dir/common/status.cc.o.d"
  "/root/repo/src/construct/constructor.cc" "src/CMakeFiles/xdb.dir/construct/constructor.cc.o" "gcc" "src/CMakeFiles/xdb.dir/construct/constructor.cc.o.d"
  "/root/repo/src/construct/xml_agg.cc" "src/CMakeFiles/xdb.dir/construct/xml_agg.cc.o" "gcc" "src/CMakeFiles/xdb.dir/construct/xml_agg.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/CMakeFiles/xdb.dir/engine/catalog.cc.o" "gcc" "src/CMakeFiles/xdb.dir/engine/catalog.cc.o.d"
  "/root/repo/src/engine/collection.cc" "src/CMakeFiles/xdb.dir/engine/collection.cc.o" "gcc" "src/CMakeFiles/xdb.dir/engine/collection.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/xdb.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/xdb.dir/engine/engine.cc.o.d"
  "/root/repo/src/index/key_codec.cc" "src/CMakeFiles/xdb.dir/index/key_codec.cc.o" "gcc" "src/CMakeFiles/xdb.dir/index/key_codec.cc.o.d"
  "/root/repo/src/index/nodeid_index.cc" "src/CMakeFiles/xdb.dir/index/nodeid_index.cc.o" "gcc" "src/CMakeFiles/xdb.dir/index/nodeid_index.cc.o.d"
  "/root/repo/src/index/value_index.cc" "src/CMakeFiles/xdb.dir/index/value_index.cc.o" "gcc" "src/CMakeFiles/xdb.dir/index/value_index.cc.o.d"
  "/root/repo/src/pack/packed_record.cc" "src/CMakeFiles/xdb.dir/pack/packed_record.cc.o" "gcc" "src/CMakeFiles/xdb.dir/pack/packed_record.cc.o.d"
  "/root/repo/src/pack/record_builder.cc" "src/CMakeFiles/xdb.dir/pack/record_builder.cc.o" "gcc" "src/CMakeFiles/xdb.dir/pack/record_builder.cc.o.d"
  "/root/repo/src/pack/shredded_store.cc" "src/CMakeFiles/xdb.dir/pack/shredded_store.cc.o" "gcc" "src/CMakeFiles/xdb.dir/pack/shredded_store.cc.o.d"
  "/root/repo/src/pack/tree_cursor.cc" "src/CMakeFiles/xdb.dir/pack/tree_cursor.cc.o" "gcc" "src/CMakeFiles/xdb.dir/pack/tree_cursor.cc.o.d"
  "/root/repo/src/query/access_path.cc" "src/CMakeFiles/xdb.dir/query/access_path.cc.o" "gcc" "src/CMakeFiles/xdb.dir/query/access_path.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/xdb.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/xdb.dir/query/executor.cc.o.d"
  "/root/repo/src/runtime/iterators.cc" "src/CMakeFiles/xdb.dir/runtime/iterators.cc.o" "gcc" "src/CMakeFiles/xdb.dir/runtime/iterators.cc.o.d"
  "/root/repo/src/runtime/virtual_sax.cc" "src/CMakeFiles/xdb.dir/runtime/virtual_sax.cc.o" "gcc" "src/CMakeFiles/xdb.dir/runtime/virtual_sax.cc.o.d"
  "/root/repo/src/schema/schema_ast.cc" "src/CMakeFiles/xdb.dir/schema/schema_ast.cc.o" "gcc" "src/CMakeFiles/xdb.dir/schema/schema_ast.cc.o.d"
  "/root/repo/src/schema/schema_compiler.cc" "src/CMakeFiles/xdb.dir/schema/schema_compiler.cc.o" "gcc" "src/CMakeFiles/xdb.dir/schema/schema_compiler.cc.o.d"
  "/root/repo/src/schema/schema_parser.cc" "src/CMakeFiles/xdb.dir/schema/schema_parser.cc.o" "gcc" "src/CMakeFiles/xdb.dir/schema/schema_parser.cc.o.d"
  "/root/repo/src/schema/validator_vm.cc" "src/CMakeFiles/xdb.dir/schema/validator_vm.cc.o" "gcc" "src/CMakeFiles/xdb.dir/schema/validator_vm.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/xdb.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/xdb.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/record_manager.cc" "src/CMakeFiles/xdb.dir/storage/record_manager.cc.o" "gcc" "src/CMakeFiles/xdb.dir/storage/record_manager.cc.o.d"
  "/root/repo/src/storage/tablespace.cc" "src/CMakeFiles/xdb.dir/storage/tablespace.cc.o" "gcc" "src/CMakeFiles/xdb.dir/storage/tablespace.cc.o.d"
  "/root/repo/src/storage/wal_log.cc" "src/CMakeFiles/xdb.dir/storage/wal_log.cc.o" "gcc" "src/CMakeFiles/xdb.dir/storage/wal_log.cc.o.d"
  "/root/repo/src/util/workload.cc" "src/CMakeFiles/xdb.dir/util/workload.cc.o" "gcc" "src/CMakeFiles/xdb.dir/util/workload.cc.o.d"
  "/root/repo/src/xdm/dom_tree.cc" "src/CMakeFiles/xdb.dir/xdm/dom_tree.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xdm/dom_tree.cc.o.d"
  "/root/repo/src/xdm/item.cc" "src/CMakeFiles/xdb.dir/xdm/item.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xdm/item.cc.o.d"
  "/root/repo/src/xml/name_dictionary.cc" "src/CMakeFiles/xdb.dir/xml/name_dictionary.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xml/name_dictionary.cc.o.d"
  "/root/repo/src/xml/node_id.cc" "src/CMakeFiles/xdb.dir/xml/node_id.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xml/node_id.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xdb.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xdb.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xml/token_stream.cc" "src/CMakeFiles/xdb.dir/xml/token_stream.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xml/token_stream.cc.o.d"
  "/root/repo/src/xpath/ast.cc" "src/CMakeFiles/xdb.dir/xpath/ast.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/ast.cc.o.d"
  "/root/repo/src/xpath/dom_evaluator.cc" "src/CMakeFiles/xdb.dir/xpath/dom_evaluator.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/dom_evaluator.cc.o.d"
  "/root/repo/src/xpath/lexer.cc" "src/CMakeFiles/xdb.dir/xpath/lexer.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/lexer.cc.o.d"
  "/root/repo/src/xpath/naive_stream.cc" "src/CMakeFiles/xdb.dir/xpath/naive_stream.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/naive_stream.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/CMakeFiles/xdb.dir/xpath/parser.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/parser.cc.o.d"
  "/root/repo/src/xpath/path_containment.cc" "src/CMakeFiles/xdb.dir/xpath/path_containment.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/path_containment.cc.o.d"
  "/root/repo/src/xpath/query_tree.cc" "src/CMakeFiles/xdb.dir/xpath/query_tree.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/query_tree.cc.o.d"
  "/root/repo/src/xpath/quickxscan.cc" "src/CMakeFiles/xdb.dir/xpath/quickxscan.cc.o" "gcc" "src/CMakeFiles/xdb.dir/xpath/quickxscan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
