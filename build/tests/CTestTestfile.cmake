# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(btree_test "/root/repo/build/tests/btree_test")
set_tests_properties(btree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nodeid_test "/root/repo/build/tests/nodeid_test")
set_tests_properties(nodeid_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(xml_test "/root/repo/build/tests/xml_test")
set_tests_properties(xml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(schema_test "/root/repo/build/tests/schema_test")
set_tests_properties(schema_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pack_test "/root/repo/build/tests/pack_test")
set_tests_properties(pack_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(xpath_test "/root/repo/build/tests/xpath_test")
set_tests_properties(xpath_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(construct_test "/root/repo/build/tests/construct_test")
set_tests_properties(construct_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cc_test "/root/repo/build/tests/cc_test")
set_tests_properties(cc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sweep_test "/root/repo/build/tests/sweep_test")
set_tests_properties(sweep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;xdb_test;/root/repo/tests/CMakeLists.txt;0;")
