# Empty compiler generated dependencies file for construct_test.
# This may be replaced when dependencies are built.
