file(REMOVE_RECURSE
  "CMakeFiles/construct_test.dir/construct_test.cc.o"
  "CMakeFiles/construct_test.dir/construct_test.cc.o.d"
  "construct_test"
  "construct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
