# Empty compiler generated dependencies file for nodeid_test.
# This may be replaced when dependencies are built.
