file(REMOVE_RECURSE
  "CMakeFiles/nodeid_test.dir/nodeid_test.cc.o"
  "CMakeFiles/nodeid_test.dir/nodeid_test.cc.o.d"
  "nodeid_test"
  "nodeid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodeid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
