# Empty compiler generated dependencies file for pack_test.
# This may be replaced when dependencies are built.
