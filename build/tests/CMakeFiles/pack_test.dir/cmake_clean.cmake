file(REMOVE_RECURSE
  "CMakeFiles/pack_test.dir/pack_test.cc.o"
  "CMakeFiles/pack_test.dir/pack_test.cc.o.d"
  "pack_test"
  "pack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
