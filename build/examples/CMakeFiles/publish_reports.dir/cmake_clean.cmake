file(REMOVE_RECURSE
  "CMakeFiles/publish_reports.dir/publish_reports.cpp.o"
  "CMakeFiles/publish_reports.dir/publish_reports.cpp.o.d"
  "publish_reports"
  "publish_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publish_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
