# Empty compiler generated dependencies file for publish_reports.
# This may be replaced when dependencies are built.
