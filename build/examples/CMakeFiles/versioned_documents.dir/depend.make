# Empty dependencies file for versioned_documents.
# This may be replaced when dependencies are built.
