file(REMOVE_RECURSE
  "CMakeFiles/versioned_documents.dir/versioned_documents.cpp.o"
  "CMakeFiles/versioned_documents.dir/versioned_documents.cpp.o.d"
  "versioned_documents"
  "versioned_documents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
