file(REMOVE_RECURSE
  "CMakeFiles/catalog_search.dir/catalog_search.cpp.o"
  "CMakeFiles/catalog_search.dir/catalog_search.cpp.o.d"
  "catalog_search"
  "catalog_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
