# Empty compiler generated dependencies file for catalog_search.
# This may be replaced when dependencies are built.
