// E11 — Section 3.4: NodeID-index navigation.
//
// Point lookups resolve any logical node ID to its containing record with a
// single B+tree seek thanks to the interval-upper-endpoint entries, and
// "skipping to the next sibling may result in skipping an entire subtree
// beneath a node, which may contain many records".
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xml/node_id.h"

namespace xdb {
namespace bench {
namespace {

struct NavFixture {
  NavFixture(uint32_t products, size_t budget) {
    Random rng(31);
    workload::CatalogOptions opts;
    opts.categories = 4;
    opts.products_per_category = products / 4;
    records_in_doc =
        StorePacked(&st, &dict, 1, workload::GenCatalogXml(&rng, opts),
                    budget);
    // Collect all node ids.
    StoredDocSource source(st.records.get(), st.index.get(), 1);
    XmlEvent ev;
    for (;;) {
      auto more = source.Next(&ev);
      if (!more.ok()) std::abort();
      if (!more.value()) break;
      if (ev.type == XmlEvent::Type::kStartElement ||
          ev.type == XmlEvent::Type::kText ||
          ev.type == XmlEvent::Type::kAttribute)
        node_ids.push_back(ev.node_id.ToString());
    }
  }

  NameDictionary dict;
  StorageStack st;
  uint64_t records_in_doc;
  std::vector<std::string> node_ids;
};

void BM_PointLookup(benchmark::State& state) {
  NavFixture fx(static_cast<uint32_t>(state.range(0)), 1024);
  Random rng(3);
  for (auto _ : state) {
    const std::string& id = fx.node_ids[rng.Uniform(fx.node_ids.size())];
    auto rid = fx.st.index->Lookup(1, id);
    if (!rid.ok()) std::abort();
    benchmark::DoNotOptimize(rid.value());
  }
  state.counters["nodes"] = static_cast<double>(fx.node_ids.size());
  state.counters["records"] = static_cast<double>(fx.records_in_doc);
  state.counters["index_entries"] =
      static_cast<double>(fx.st.tree->ComputeStats().value().entries);
}
BENCHMARK(BM_PointLookup)->Arg(100)->Arg(1000)->Unit(benchmark::kNanosecond);

// GetNode = lookup + record fetch + in-record walk with subtree skips.
void BM_GetNode(benchmark::State& state) {
  NavFixture fx(400, static_cast<size_t>(state.range(0)));
  StoredTreeNavigator nav(fx.st.records.get(), fx.st.index.get(), 1);
  Random rng(3);
  for (auto _ : state) {
    const std::string& id = fx.node_ids[rng.Uniform(fx.node_ids.size())];
    auto info = nav.GetNode(id);
    if (!info.ok()) std::abort();
    benchmark::DoNotOptimize(info.value().child_count);
  }
  state.counters["records"] = static_cast<double>(fx.records_in_doc);
}
BENCHMARK(BM_GetNode)->Arg(256)->Arg(2048)->Arg(16384)->Unit(benchmark::kMicrosecond);

// Sibling walk across the Product list: each NextSibling skips the whole
// previous product subtree (many records at small budgets) in O(1) fetches.
void BM_SiblingWalk(benchmark::State& state) {
  NavFixture fx(400, static_cast<size_t>(state.range(0)));
  StoredTreeNavigator nav(fx.st.records.get(), fx.st.index.get(), 1);
  // Find the first Product: /Catalog(1)/Categories(1)/Product(1).
  std::string catalog = nav.FirstChildId("").value();
  std::string categories = nav.FirstChildId(catalog).value();
  std::string first_product = nav.FirstChildId(categories).value();
  uint64_t walked = 0;
  for (auto _ : state) {
    std::string cur = first_product;
    walked = 1;
    for (;;) {
      auto next = nav.NextSiblingId(cur);
      if (!next.ok()) break;
      cur = next.MoveValue();
      walked++;
    }
    benchmark::DoNotOptimize(walked);
  }
  state.counters["siblings_walked"] = static_cast<double>(walked);
  state.counters["records"] = static_cast<double>(fx.records_in_doc);
}
BENCHMARK(BM_SiblingWalk)->Arg(256)->Arg(2048)->Arg(16384)->Unit(benchmark::kMicrosecond);

// Ablation: interval entries vs a hypothetical per-node entry scheme — the
// entry-count counters quantify the 2k/p-vs-k claim directly.
void BM_IndexEntryCounts(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  NameDictionary dict;
  StorageStack st;
  uint64_t records = StorePacked(&st, &dict, 1,
                                 workload::GenWideXml(2000, 30), budget);
  uint64_t nodes = 0;
  Status s = st.records->ScanAll([&](Rid, Slice data) -> Status {
    XDB_ASSIGN_OR_RETURN(uint64_t n, CountRecordNodes(data));
    nodes += n;
    return Status::OK();
  });
  if (!s.ok()) std::abort();
  uint64_t entries = st.tree->ComputeStats().value().entries;
  for (auto _ : state) {
    benchmark::DoNotOptimize(entries);
  }
  state.counters["nodes_k"] = static_cast<double>(nodes);
  state.counters["records"] = static_cast<double>(records);
  state.counters["interval_entries"] = static_cast<double>(entries);
  state.counters["per_node_entries_would_be"] = static_cast<double>(nodes);
  state.counters["entries_per_record"] =
      static_cast<double>(entries) / static_cast<double>(records);
}
BENCHMARK(BM_IndexEntryCounts)->Arg(256)->Arg(1024)->Arg(8192)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
