// E5/E6 — Section 4.2's QuickXScan claims.
//
// (a) "linear performance with regard to the document size" — |D| sweep;
// (b) live state bounded by O(|Q| * r) vs combinatorial growth for the
//     naive streaming baseline on //a//a//a over recursive documents;
// (c) "orders of magnitude better than some DOM-based algorithm" in time
//     and memory (DOM pays tree construction + pointer navigation).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xdm/dom_tree.h"
#include "xpath/dom_evaluator.h"
#include "xpath/naive_stream.h"
#include "xpath/parser.h"
#include "xpath/quickxscan.h"

namespace xdb {
namespace bench {
namespace {

using xpath::EvaluateXPath;
using xpath::ParsePath;
using xpath::QuickXScanStats;

// --- (a) linearity in |D| ---

void BM_QuickXScanBySize(benchmark::State& state) {
  NameDictionary dict;
  std::string xml =
      workload::GenWideXml(static_cast<uint32_t>(state.range(0)), 40);
  std::string tokens = ParseToTokens(&dict, xml);
  for (auto _ : state) {
    TokenStreamSource source(tokens);
    auto res = EvaluateXPath("/root/item[@n = \"7\"]", dict, &source, 1,
                             false);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
  state.counters["doc_bytes"] = static_cast<double>(xml.size());
}
BENCHMARK(BM_QuickXScanBySize)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// --- (b) recursion-degree sweep: QuickXScan vs naive streaming ---

void BM_QuickXScanRecursive(benchmark::State& state) {
  const uint32_t r = static_cast<uint32_t>(state.range(0));
  NameDictionary dict;
  std::string tokens =
      ParseToTokens(&dict, workload::GenRecursiveXml(r, 6));
  QuickXScanStats stats;
  for (auto _ : state) {
    TokenStreamSource source(tokens);
    auto res = EvaluateXPath("//a//a//a", dict, &source, 1, false, &stats);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().size());
  }
  state.counters["recursion_r"] = r;
  state.counters["peak_live_state"] =
      static_cast<double>(stats.peak_live_instances);
}
BENCHMARK(BM_QuickXScanRecursive)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveStreamRecursive(benchmark::State& state) {
  const uint32_t r = static_cast<uint32_t>(state.range(0));
  NameDictionary dict;
  std::string tokens =
      ParseToTokens(&dict, workload::GenRecursiveXml(r, 6));
  auto path = ParsePath("//a//a//a").MoveValue();
  uint64_t peak = 0;
  for (auto _ : state) {
    xpath::NaiveStreamEvaluator naive(&path, &dict, 1);
    TokenStreamSource source(tokens);
    NodeSequence out;
    if (!naive.Run(&source, &out).ok()) std::abort();
    peak = naive.stats().peak_live_configs;
    benchmark::DoNotOptimize(out.size());
  }
  state.counters["recursion_r"] = r;
  state.counters["peak_live_state"] = static_cast<double>(peak);
}
BENCHMARK(BM_NaiveStreamRecursive)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

// --- (c) streaming vs DOM-based evaluation ---

void BM_QuickXScanVsDom_Quick(benchmark::State& state) {
  NameDictionary dict;
  Random rng(11);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = static_cast<uint32_t>(state.range(0)) / 4;
  std::string tokens =
      ParseToTokens(&dict, workload::GenCatalogXml(&rng, opts));
  QuickXScanStats stats;
  for (auto _ : state) {
    TokenStreamSource source(tokens);
    auto res = EvaluateXPath(
        "/Catalog/Categories/Product[RegPrice > 400]/ProductName", dict,
        &source, 1, false, &stats);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().size());
  }
  state.counters["eval_memory_bytes"] =
      static_cast<double>(stats.memory_bytes);
}
BENCHMARK(BM_QuickXScanVsDom_Quick)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

void BM_QuickXScanVsDom_Dom(benchmark::State& state) {
  NameDictionary dict;
  Random rng(11);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = static_cast<uint32_t>(state.range(0)) / 4;
  std::string tokens =
      ParseToTokens(&dict, workload::GenCatalogXml(&rng, opts));
  auto path =
      ParsePath("/Catalog/Categories/Product[RegPrice > 400]/ProductName")
          .MoveValue();
  size_t dom_bytes = 0;
  for (auto _ : state) {
    // The DOM approach pays construction per evaluation (the intermediate
    // in-memory tree the paper's runtime avoids).
    auto tree = DomTree::FromTokens(tokens);
    if (!tree.ok()) std::abort();
    dom_bytes = tree.value()->memory_bytes();
    xpath::DomEvaluator eval(tree.value().get(), &dict, 1);
    auto res = eval.Evaluate(path, false);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().size());
  }
  state.counters["eval_memory_bytes"] = static_cast<double>(dom_bytes);
}
BENCHMARK(BM_QuickXScanVsDom_Dom)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

// Scan over stored (packed) documents: the base access path of Section 4.
void BM_QuickXScanOverStoredDoc(benchmark::State& state) {
  NameDictionary dict;
  StorageStack st;
  Random rng(17);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = 100;
  StorePacked(&st, &dict, 1, workload::GenCatalogXml(&rng, opts), 3000);
  for (auto _ : state) {
    StoredDocSource source(st.records.get(), st.index.get(), 1);
    auto res = EvaluateXPath("//Product[Discount > 0.25]", dict, &source, 1,
                             false);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().size());
  }
}
BENCHMARK(BM_QuickXScanOverStoredDoc)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
