// Compiled-plan cache payoff: the same query answered from the plan cache
// vs re-running the whole planning front half (XPath parse, candidate
// extraction, cost-model pricing, QueryTree + recheck-residual compilation)
// on every execution.
//
// The collection is kept tiny (one small document) and the query text
// predicate-heavy, so execution is a few microseconds and the measured
// delta is almost entirely planning overhead — the piece a cache hit
// skips. Three flavors:
//  - cached:      warm plan cache, every iteration is a hit;
//  - uncached:    plan_cache_capacity = 0, full parse+price+compile per run;
//  - heuristic:   cache bypassed and the Section 4.3 rules instead of the
//                 cost model (what planning cost before statistics existed).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "engine/engine.h"

namespace xdb {
namespace bench {
namespace {

constexpr char kQuery[] =
    "/Catalog/Categories/Product[RegPrice > 10 and RegPrice < 90]/Name";

struct PlannerFixture {
  explicit PlannerFixture(size_t cache_capacity) {
    EngineOptions eopts;
    eopts.in_memory = true;
    eopts.enable_wal = false;
    eopts.plan_cache_capacity = cache_capacity;
    engine = Engine::Open(eopts).MoveValue();
    coll = engine->CreateCollection("catalog").value();
    if (!coll->CreateValueIndex({"regprice",
                                 "/Catalog/Categories/Product/RegPrice",
                                 ValueType::kDecimal, 128})
             .ok())
      std::abort();
    for (int i = 0; i < 4; i++) {
      std::string xml =
          "<Catalog><Categories><Product><Name>p" + std::to_string(i) +
          "</Name><RegPrice>" + std::to_string(20 + 17 * i) +
          "</RegPrice></Product></Categories></Catalog>";
      if (!coll->InsertDocument(nullptr, xml).ok()) std::abort();
    }
  }

  std::unique_ptr<Engine> engine;
  Collection* coll = nullptr;
};

void RunPlanner(benchmark::State& state, PlannerFixture* fx,
                bool heuristic) {
  QueryOptions qopts;
  qopts.use_heuristic_planner = heuristic;
  // Warm-up: populates the cache when it is enabled.
  if (!fx->coll->Query(nullptr, kQuery, qopts).ok()) std::abort();
  uint64_t results = 0;
  for (auto _ : state) {
    auto res = fx->coll->Query(nullptr, kQuery, qopts);
    if (!res.ok()) std::abort();
    results = res.value().nodes.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

void BM_QueryPlanCached(benchmark::State& state) {
  static PlannerFixture* fx = new PlannerFixture(64);
  RunPlanner(state, fx, false);
  // Sanity: the loop above must have been served from the cache.
  if (fx->coll->plan_cache()->size() == 0) std::abort();
}
BENCHMARK(BM_QueryPlanCached);

void BM_QueryPlanCompiledEachTime(benchmark::State& state) {
  static PlannerFixture* fx = new PlannerFixture(0);
  RunPlanner(state, fx, false);
}
BENCHMARK(BM_QueryPlanCompiledEachTime);

void BM_QueryPlanHeuristicEachTime(benchmark::State& state) {
  static PlannerFixture* fx = new PlannerFixture(0);
  RunPlanner(state, fx, true);
}
BENCHMARK(BM_QueryPlanHeuristicEachTime);

}  // namespace
}  // namespace bench
}  // namespace xdb
