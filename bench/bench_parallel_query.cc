// Parallel query execution scaling: the same XPath evaluated with 1, 2, 4
// and 8 threads over a multi-document collection.
//
// Two shapes bracket the executor's parallel paths:
//  - scan-heavy: a forced full scan, so every document runs QuickXScan and
//    the candidate partitioner has maximum work to spread;
//  - index-heavy: a value-index probe narrowing to a DocID list first, so the
//    fan-out covers only the post-filter evaluation of the candidates.
//
// Throughput (bytes_per_second = stored XML bytes per evaluated pass) is the
// headline number; the acceptance bar is >= 2.5x at 4 threads vs 1 on the
// scan-heavy case and a < 5% single-thread regression vs the serial seed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "engine/engine.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

constexpr int kDocs = 48;

struct ParallelQueryFixture {
  ParallelQueryFixture() {
    EngineOptions eopts;
    eopts.in_memory = true;
    eopts.enable_wal = false;
    eopts.num_query_threads = 8;  // per-query parallelism picks 1..8 of these
    engine = Engine::Open(eopts).MoveValue();
    CollectionOptions copts;
    copts.buffer_pages = 4096;
    coll = engine->CreateCollection("catalog", copts).value();
    if (!coll->CreateValueIndex({"regprice",
                                 "/Catalog/Categories/Product/RegPrice",
                                 ValueType::kDecimal, 128})
             .ok())
      std::abort();
    Random rng(42);
    workload::CatalogOptions gen;
    gen.categories = 4;
    gen.products_per_category = 50;
    for (int i = 0; i < kDocs; i++) {
      std::string xml = workload::GenCatalogXml(&rng, gen);
      stored_bytes += xml.size();
      if (!coll->InsertDocument(nullptr, xml).ok()) std::abort();
    }
  }

  std::unique_ptr<Engine> engine;
  Collection* coll = nullptr;
  uint64_t stored_bytes = 0;
};

ParallelQueryFixture* Fixture() {
  static ParallelQueryFixture* fx = new ParallelQueryFixture();
  return fx;
}

void RunQuery(benchmark::State& state, const char* xpath,
              query::ForceMethod force) {
  ParallelQueryFixture* fx = Fixture();
  QueryOptions qopts;
  qopts.force = force;
  qopts.parallelism = static_cast<int>(state.range(0));
  uint64_t results = 0;
  for (auto _ : state) {
    auto res = fx->coll->Query(nullptr, xpath, qopts);
    if (!res.ok()) std::abort();
    results = res.value().nodes.size();
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx->stored_bytes));
  state.counters["results"] = static_cast<double>(results);
  state.counters["threads"] = static_cast<double>(state.range(0));

  // With XDB_METRICS_JSON=<path>, dump the engine's cumulative metrics
  // snapshot after every bench; the last write covers the whole run. CI
  // uploads it next to BENCH_RESULTS.json so counter deltas across commits
  // are diffable (buffer traffic, group-commit batches, query fan-out).
  const char* metrics_path = std::getenv("XDB_METRICS_JSON");
  if (metrics_path != nullptr && metrics_path[0] != '\0') {
    std::string json = fx->engine->MetricsSnapshot().ToJson();
    std::FILE* f = std::fopen(metrics_path, "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
  // Likewise XDB_SNAPSHOT_JSON=<path> dumps the full DebugSnapshot (the
  // xdb_top payload: metrics + wait histograms + events + slow queries +
  // per-collection residency). CI feeds it back through `xdb_top --json
  // --file` as a schema round-trip smoke-test.
  const char* snapshot_path = std::getenv("XDB_SNAPSHOT_JSON");
  if (snapshot_path != nullptr && snapshot_path[0] != '\0') {
    std::string json = fx->engine->DebugSnapshot().ToJson();
    std::FILE* f = std::fopen(snapshot_path, "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      // ToJson ends with a newline; keep the file byte-identical to what
      // `xdb_top --json --file` re-emits so CI can plain-diff the two.
      if (json.empty() || json.back() != '\n') std::fputc('\n', f);
      std::fclose(f);
    }
  }
}

// Scan-heavy: full QuickXScan over all 48 documents per query.
void BM_ParallelQuery_Scan(benchmark::State& state) {
  RunQuery(state, "/Catalog/Categories/Product[Discount]/RegPrice",
           query::ForceMethod::kScan);
}
BENCHMARK(BM_ParallelQuery_Scan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Index-heavy: the RegPrice index narrows to a candidate DocID list, then
// the surviving documents are evaluated (in parallel when it pays).
void BM_ParallelQuery_Index(benchmark::State& state) {
  RunQuery(state, "/Catalog/Categories/Product[RegPrice > 100]/ProductName",
           query::ForceMethod::kDocIdList);
}
BENCHMARK(BM_ParallelQuery_Index)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace xdb
