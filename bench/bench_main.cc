// Shared benchmark main: runs the registered benchmarks with the normal
// console output and additionally writes a machine-readable summary to
// BENCH_RESULTS.json (override the path with XDB_BENCH_JSON; set it empty to
// skip the file). CI uploads the file as an artifact so runs are comparable
// across commits without scraping console logs.
//
// Schema: a JSON array of objects {"name", "iters", "ns_per_op", "bytes_per_s"}
// — bytes_per_s is 0 when the bench does not call SetBytesProcessed.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

struct BenchRow {
  std::string name;
  int64_t iters = 0;
  double ns_per_op = 0;
  double bytes_per_s = 0;
};

/// Console output as usual, plus one row collected per reported run.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      BenchRow row;
      row.name = r.benchmark_name();
      row.iters = r.iterations;
      // Compute ns/op from the raw accumulated time instead of the
      // unit-adjusted helpers so the JSON is unit-stable across benches.
      if (r.iterations > 0)
        row.ns_per_op =
            r.real_accumulated_time * 1e9 / static_cast<double>(r.iterations);
      auto it = r.counters.find("bytes_per_second");
      if (it != r.counters.end()) row.bytes_per_s = it->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRow>& rows() const { return rows_; }

 private:
  std::vector<BenchRow> rows_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool WriteJson(const std::string& path, const std::vector<BenchRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); i++) {
    const BenchRow& r = rows[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"iters\": %lld, \"ns_per_op\": %.3f, "
                 "\"bytes_per_s\": %.1f}%s\n",
                 JsonEscape(r.name).c_str(), static_cast<long long>(r.iters),
                 r.ns_per_op, r.bytes_per_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const char* env = std::getenv("XDB_BENCH_JSON");
  std::string path = env != nullptr ? env : "BENCH_RESULTS.json";
  if (!path.empty()) {
    if (!WriteJson(path, reporter.rows())) {
      std::fprintf(stderr, "bench_main: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench results written to %s\n", path.c_str());
  }
  return 0;
}
