// E2 — Section 3.1's traversal cost model.
//
// Paper claim: traversing a k-node tree costs (k-1)*t with one row per node
// (one index probe + record fetch per node) but about k*t/p with p nodes
// packed per record — the speedup ratio approaches 1/p. Sweep the packing
// budget and compare full document-order traversals.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "runtime/iterators.h"

namespace xdb {
namespace bench {
namespace {

std::string MakeDoc(uint32_t products) {
  Random rng(13);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = products / 4;
  return workload::GenCatalogXml(&rng, opts);
}

void BM_TraversePacked(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  NameDictionary dict;
  StorageStack st;
  uint64_t records = StorePacked(&st, &dict, 1, MakeDoc(400), budget);

  uint64_t events = 0, fetched = 0;
  for (auto _ : state) {
    StoredDocSource source(st.records.get(), st.index.get(), 1);
    auto res = DrainEvents(&source);
    if (!res.ok()) std::abort();
    events = res.value();
    fetched = source.records_fetched();
    benchmark::DoNotOptimize(events);
  }
  state.counters["records_in_doc"] = static_cast<double>(records);
  state.counters["events"] = static_cast<double>(events);
  state.counters["records_fetched"] = static_cast<double>(fetched);
  state.SetItemsProcessed(static_cast<int64_t>(events) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraversePacked)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

// state.range(0): 1 = per-node index probe (the paper's per-node join t);
// 0 = sequential leaf scan (shredded's best case).
void BM_TraverseShredded(benchmark::State& state) {
  NameDictionary dict;
  StorageStack st;
  std::string tokens = ParseToTokens(&dict, MakeDoc(400));
  ShreddedStore store(st.records.get(), st.tree.get());
  uint64_t nodes;
  if (!store.InsertDocument(1, tokens, &nodes).ok()) std::abort();

  uint64_t events = 0, fetched = 0;
  for (auto _ : state) {
    ShreddedStore::Source source(&store, 1,
                                 /*reseek_per_node=*/state.range(0) != 0);
    auto res = DrainEvents(&source);
    if (!res.ok()) std::abort();
    events = res.value();
    fetched = source.records_fetched();
    benchmark::DoNotOptimize(events);
  }
  state.counters["records_in_doc"] = static_cast<double>(nodes);
  state.counters["events"] = static_cast<double>(events);
  state.counters["records_fetched"] = static_cast<double>(fetched);
  state.SetItemsProcessed(static_cast<int64_t>(events) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TraverseShredded)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Document size sweep at a fixed budget: traversal scales linearly for both,
// but the constant differs by ~p.
void BM_TraversePackedBySize(benchmark::State& state) {
  const uint32_t products = static_cast<uint32_t>(state.range(0));
  NameDictionary dict;
  StorageStack st;
  StorePacked(&st, &dict, 1, MakeDoc(products), 3000);
  for (auto _ : state) {
    StoredDocSource source(st.records.get(), st.index.get(), 1);
    auto res = DrainEvents(&source);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value());
  }
}
BENCHMARK(BM_TraversePackedBySize)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_TraverseShreddedBySize(benchmark::State& state) {
  const uint32_t products = static_cast<uint32_t>(state.range(0));
  NameDictionary dict;
  StorageStack st;
  std::string tokens = ParseToTokens(&dict, MakeDoc(products));
  ShreddedStore store(st.records.get(), st.tree.get());
  uint64_t nodes;
  if (!store.InsertDocument(1, tokens, &nodes).ok()) std::abort();
  for (auto _ : state) {
    ShreddedStore::Source source(&store, 1, /*reseek_per_node=*/true);
    auto res = DrainEvents(&source);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value());
  }
}
BENCHMARK(BM_TraverseShreddedBySize)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
