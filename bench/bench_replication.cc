// Replication pipeline cost: what a replica pays to stay caught up, and
// what a reader pays for asking for freshness.
//
//  - pipeline:   steady-state ship+apply rounds — primary inserts a batch,
//                the shipper tails the durable WAL prefix, the applier
//                replays it; bytes/sec is the end-to-end stream rate.
//  - catchup:    a cold replica replaying a whole spool archive (the
//                bootstrap / rebuild path); docs/sec of pure apply.
//  - freshness:  the min_csn gate on a caught-up replica — the fast path a
//                read-your-writes query takes when no waiting is needed.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "repl/replica_applier.h"
#include "repl/ship_transport.h"
#include "repl/wal_shipper.h"

namespace xdb {
namespace bench {
namespace {

std::string FreshDir(const char* name) {
  static int counter = 0;
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("xdb_bench_repl_" + std::string(name) + "_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(counter++)))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string DocXml(int i) {
  return "<order id=\"" + std::to_string(i) + "\"><sku>SKU-" +
         std::to_string(i % 97) + "</sku><qty>" + std::to_string(1 + i % 9) +
         "</qty><note>steady-state replication payload row</note></order>";
}

// --- steady state: insert a batch, ship it, apply it, repeat ---

void BM_ReplicationPipeline(benchmark::State& state) {
  const std::string pdir = FreshDir("pipe_p"), rdir = FreshDir("pipe_r");
  EngineOptions popts;
  popts.dir = pdir;
  EngineOptions ropts;
  ropts.dir = rdir;
  ropts.replica = true;
  auto primary = Engine::Open(popts).MoveValue();
  auto replica = Engine::Open(ropts).MoveValue();
  repl::InProcessTransport transport;
  repl::WalShipper shipper(primary.get(), &transport);
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("orders").value();

  const int batch = static_cast<int>(state.range(0));
  int next = 0;
  uint64_t last_csn = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; i++) {
      if (!coll->InsertDocument(nullptr, DocXml(next++)).ok()) std::abort();
    }
    if (!shipper.ShipAll().ok()) std::abort();
    if (!applier->CatchUp().ok()) std::abort();
    if (replica->applied_csn() <= last_csn) std::abort();
    last_csn = replica->applied_csn();
  }
  state.SetBytesProcessed(static_cast<int64_t>(last_csn));
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(next), benchmark::Counter::kIsRate);
  std::filesystem::remove_all(pdir);
  std::filesystem::remove_all(rdir);
}
BENCHMARK(BM_ReplicationPipeline)->Arg(1)->Arg(16)->Arg(64);

// --- cold catch-up: a fresh replica drains a pre-built spool archive ---

void BM_ReplicationCatchUp(benchmark::State& state) {
  const int docs = static_cast<int>(state.range(0));
  const std::string pdir = FreshDir("cold_p"), sdir = FreshDir("cold_s");
  uint64_t stream_bytes = 0;
  {
    EngineOptions popts;
    popts.dir = pdir;
    auto primary = Engine::Open(popts).MoveValue();
    auto spool = repl::FileTransport::Open(sdir).MoveValue();
    repl::WalShipper shipper(primary.get(), spool.get());
    Collection* coll = primary->CreateCollection("orders").value();
    for (int i = 0; i < docs; i++) {
      if (!coll->InsertDocument(nullptr, DocXml(i)).ok()) std::abort();
    }
    if (!shipper.ShipAll().ok()) std::abort();
    stream_bytes = shipper.shipped_csn();
  }

  for (auto _ : state) {
    state.PauseTiming();
    const std::string rdir = FreshDir("cold_r");
    EngineOptions ropts;
    ropts.dir = rdir;
    ropts.replica = true;
    auto replica = Engine::Open(ropts).MoveValue();
    // A fresh FileTransport over an existing spool reads from genesis.
    auto spool = repl::FileTransport::Open(sdir).MoveValue();
    auto applier =
        repl::ReplicaApplier::Attach(replica.get(), spool.get()).MoveValue();
    state.ResumeTiming();

    if (!applier->CatchUp().ok()) std::abort();
    if (replica->applied_csn() != stream_bytes) std::abort();

    state.PauseTiming();
    applier.reset();
    replica.reset();
    std::filesystem::remove_all(rdir);
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(stream_bytes) *
                          state.iterations());
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(docs) * state.iterations(),
      benchmark::Counter::kIsRate);
  std::filesystem::remove_all(pdir);
  std::filesystem::remove_all(sdir);
}
BENCHMARK(BM_ReplicationCatchUp)->Arg(200)->Unit(benchmark::kMillisecond);

// --- the freshness gate on a caught-up replica (read-your-writes path) ---

void BM_ReplicationFreshReadGate(benchmark::State& state) {
  const bool bounded = state.range(0) != 0;
  const std::string pdir = FreshDir("gate_p"), rdir = FreshDir("gate_r");
  EngineOptions popts;
  popts.dir = pdir;
  EngineOptions ropts;
  ropts.dir = rdir;
  ropts.replica = true;
  auto primary = Engine::Open(popts).MoveValue();
  auto replica = Engine::Open(ropts).MoveValue();
  repl::InProcessTransport transport;
  repl::WalShipper shipper(primary.get(), &transport);
  auto applier =
      repl::ReplicaApplier::Attach(replica.get(), &transport).MoveValue();
  Collection* coll = primary->CreateCollection("orders").value();
  for (int i = 0; i < 32; i++) {
    if (!coll->InsertDocument(nullptr, DocXml(i)).ok()) std::abort();
  }
  if (!shipper.ShipAll().ok()) std::abort();
  if (!applier->CatchUp().ok()) std::abort();
  Collection* rcoll = replica->GetCollection("orders").value();

  QueryOptions qo;
  if (bounded) qo.min_csn = replica->applied_csn();
  uint64_t results = 0;
  for (auto _ : state) {
    auto res = rcoll->Query(nullptr, "/order/sku", qo);
    if (!res.ok()) std::abort();
    results = res.value().nodes.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  std::filesystem::remove_all(pdir);
  std::filesystem::remove_all(rdir);
}
BENCHMARK(BM_ReplicationFreshReadGate)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("min_csn");

}  // namespace
}  // namespace bench
}  // namespace xdb
