// E8 — Section 4.1 / Figure 5: constructor-function optimization.
//
// Paper claims: flattening nested constructors into one tagging template
// avoids per-level copies — "very effective for generating XML for large
// numbers of repeated rows or the aggregate function XMLAGG" — and XMLAGG
// ORDER BY with in-memory quicksort on the linked list beats the external
// sort with its per-run materialization.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "construct/constructor.h"
#include "construct/xml_agg.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

using construct::CompiledConstructor;
using construct::CtorExpr;

CtorExpr EmpConstructor() {
  std::vector<CtorExpr> children;
  children.push_back(construct::XmlAttribute("id", 0));
  children.push_back(construct::XmlAttribute("name", 1));
  children.push_back(construct::XmlForestItem("HIRE", 2));
  children.push_back(construct::XmlForestItem("department", 3));
  return construct::XmlElement("Emp", std::move(children));
}

std::vector<workload::EmployeeRow> Rows(uint32_t n) {
  Random rng(21);
  return workload::GenEmployees(&rng, n);
}

void BM_ConstructorTemplate(benchmark::State& state) {
  auto rows = Rows(static_cast<uint32_t>(state.range(0)));
  auto cc = CompiledConstructor::Compile(EmpConstructor()).MoveValue();
  for (auto _ : state) {
    std::string out;
    for (const auto& row : rows) {
      std::string name = row.fname + " " + row.lname;
      if (!cc.SerializeRow({row.id, name, row.hire, row.dept}, &out).ok())
        std::abort();
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows.size()) *
                          state.iterations());
}
BENCHMARK(BM_ConstructorTemplate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ConstructorNaive(benchmark::State& state) {
  auto rows = Rows(static_cast<uint32_t>(state.range(0)));
  CtorExpr expr = EmpConstructor();
  for (auto _ : state) {
    std::string out;
    for (const auto& row : rows) {
      std::string name = row.fname + " " + row.lname;
      std::vector<Slice> args = {row.id, name, row.hire, row.dept};
      if (!construct::NaiveEvaluate(expr, args, &out).ok()) std::abort();
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows.size()) *
                          state.iterations());
}
BENCHMARK(BM_ConstructorNaive)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Deeper nesting widens the gap: the naive path copies content at every
// level; the template path never re-copies tags.
CtorExpr DeepConstructor(int depth) {
  CtorExpr inner = construct::Arg(0);
  for (int i = depth; i > 0; i--) {
    std::vector<CtorExpr> children;
    children.push_back(std::move(inner));
    inner = construct::XmlElement("level" + std::to_string(i),
                                  std::move(children));
  }
  return inner;
}

void BM_DeepNesting_Template(benchmark::State& state) {
  auto cc = CompiledConstructor::Compile(
                DeepConstructor(static_cast<int>(state.range(0))))
                .MoveValue();
  for (auto _ : state) {
    std::string out;
    for (int i = 0; i < 1000; i++) {
      if (!cc.SerializeRow({"payload-value"}, &out).ok()) std::abort();
    }
    benchmark::DoNotOptimize(out.size());
  }
}
void BM_DeepNesting_Naive(benchmark::State& state) {
  CtorExpr expr = DeepConstructor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string out;
    for (int i = 0; i < 1000; i++) {
      if (!construct::NaiveEvaluate(expr, {"payload-value"}, &out).ok())
        std::abort();
    }
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_DeepNesting_Template)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeepNesting_Naive)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// XMLAGG ORDER BY: linked-list quicksort vs external sort (run limit models
// the sort-heap size; each run is materialized like a work file).
void BM_XmlAggQuicksort(benchmark::State& state) {
  auto rows = Rows(static_cast<uint32_t>(state.range(0)));
  auto cc = CompiledConstructor::Compile(EmpConstructor()).MoveValue();
  for (auto _ : state) {
    construct::XmlAgg agg(&cc);
    for (const auto& row : rows) {
      std::string name = row.fname + " " + row.lname;
      agg.Add(row.hire + row.id,
              construct::MakeArgRecord({row.id, name, row.hire, row.dept}));
    }
    std::string out;
    if (!agg.Finish(&out).ok()) std::abort();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows.size()) *
                          state.iterations());
}
BENCHMARK(BM_XmlAggQuicksort)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_XmlAggExternalSort(benchmark::State& state) {
  auto rows = Rows(static_cast<uint32_t>(state.range(0)));
  auto cc = CompiledConstructor::Compile(EmpConstructor()).MoveValue();
  for (auto _ : state) {
    construct::ExternalSortAgg agg(&cc, /*run_limit=*/1024);
    for (const auto& row : rows) {
      std::string name = row.fname + " " + row.lname;
      agg.Add(row.hire + row.id,
              construct::MakeArgRecord({row.id, name, row.hire, row.dept}));
    }
    std::string out;
    if (!agg.Finish(&out).ok()) std::abort();
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows.size()) *
                          state.iterations());
}
BENCHMARK(BM_XmlAggExternalSort)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
