// Shared fixtures for the benchmark harness: in-memory storage stacks and
// pre-generated workloads, so each bench measures the paper's claim and not
// setup noise.
#ifndef XDB_BENCH_BENCH_UTIL_H_
#define XDB_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "btree/btree.h"
#include "common/random.h"
#include "index/nodeid_index.h"
#include "pack/record_builder.h"
#include "pack/shredded_store.h"
#include "pack/tree_cursor.h"
#include "storage/buffer_manager.h"
#include "storage/record_manager.h"
#include "storage/tablespace.h"
#include "util/workload.h"
#include "xml/name_dictionary.h"
#include "xml/parser.h"

namespace xdb {
namespace bench {

/// An in-memory storage stack (table space + buffer manager + record
/// manager + a NodeID B+tree) shared by packed and shredded stores.
struct StorageStack {
  explicit StorageStack(size_t buffer_pages = 4096) {
    TableSpaceOptions opts;
    opts.in_memory = true;
    space = TableSpace::Create("", opts).MoveValue();
    bm = std::make_unique<BufferManager>(space.get(), buffer_pages);
    records = std::make_unique<RecordManager>(bm.get());
    tree = BTree::Create(bm.get()).MoveValue();
    index = std::make_unique<NodeIdIndex>(tree.get());
  }

  std::unique_ptr<TableSpace> space;
  std::unique_ptr<BufferManager> bm;
  std::unique_ptr<RecordManager> records;
  std::unique_ptr<BTree> tree;
  std::unique_ptr<NodeIdIndex> index;
};

/// Parses `xml` and stores it tree-packed under `doc_id`; returns the number
/// of records created.
inline uint64_t StorePacked(StorageStack* st, NameDictionary* dict,
                            uint64_t doc_id, const std::string& xml,
                            size_t budget) {
  Parser parser(dict);
  TokenWriter tokens;
  Status s = parser.Parse(xml, &tokens);
  if (!s.ok()) std::abort();
  RecordBuilderOptions opts;
  opts.record_budget = budget;
  RecordBuilder builder(opts);
  uint64_t count = 0;
  s = builder.Build(tokens.data(), [&](PackedRecordOut&& rec) -> Status {
    XDB_ASSIGN_OR_RETURN(Rid rid, st->records->Insert(rec.bytes));
    XDB_RETURN_NOT_OK(st->index->AddRecord(doc_id, rec.bytes, rid));
    count++;
    return Status::OK();
  });
  if (!s.ok()) std::abort();
  return count;
}

inline std::string ParseToTokens(NameDictionary* dict,
                                 const std::string& xml) {
  Parser parser(dict);
  TokenWriter tokens;
  if (!parser.Parse(xml, &tokens).ok()) std::abort();
  return tokens.buffer();
}

}  // namespace bench
}  // namespace xdb

#endif  // XDB_BENCH_BENCH_UTIL_H_
