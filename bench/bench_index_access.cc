// E7 — Section 4.3 / Table 2: index-based access methods.
//
// The three Table-2 query/index shapes, executed as full scan vs DocID-list
// vs NodeID-list across selectivity and document-size regimes. Expected
// shapes: index access beats the scan by a widening margin as selectivity
// drops; DocID list wins for small (single-record) documents; NodeID list
// wins for large (multi-record) documents because it fetches subtree
// records instead of whole documents.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/engine.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

struct Fixture {
  // docs: number of documents; products: per document (size knob).
  Fixture(uint32_t docs, uint32_t products, size_t budget) {
    EngineOptions eopts;
    eopts.in_memory = true;
    eopts.enable_wal = false;
    engine = Engine::Open(eopts).MoveValue();
    CollectionOptions copts;
    copts.record_budget = budget;
    coll = engine->CreateCollection("catalog", copts).value();
    if (!coll->CreateValueIndex({"regprice",
                                 "/Catalog/Categories/Product/RegPrice",
                                 ValueType::kDecimal, 128})
             .ok())
      std::abort();
    if (!coll->CreateValueIndex(
                 {"discount", "//Discount", ValueType::kDecimal, 128})
             .ok())
      std::abort();
    Random rng(99);
    workload::CatalogOptions opts;
    opts.categories = 2;
    opts.products_per_category = products / 2;
    for (uint32_t i = 0; i < docs; i++) {
      if (!coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
               .ok())
        std::abort();
    }
  }

  std::unique_ptr<Engine> engine;
  Collection* coll;
};

void RunQuery(benchmark::State& state, Fixture* fx, const std::string& query,
              ForceMethod force) {
  QueryStats last;
  for (auto _ : state) {
    QueryOptions o;
    o.force = force;
    auto res = fx->coll->Query(nullptr, query, o);
    if (!res.ok()) std::abort();
    last = res.value().stats;
    benchmark::DoNotOptimize(res.value().nodes.size());
    state.counters["results"] =
        static_cast<double>(res.value().nodes.size());
  }
  state.counters["index_postings"] = static_cast<double>(last.index_postings);
  state.counters["candidate_docs"] = static_cast<double>(last.candidate_docs);
  state.counters["candidate_anchors"] =
      static_cast<double>(last.candidate_anchors);
  state.counters["docs_evaluated"] = static_cast<double>(last.docs_evaluated);
  state.counters["records_fetched"] =
      static_cast<double>(last.records_fetched);
}

// Table 2 case 1: exact-match index, selectivity sweep via the threshold.
// state.range(0): price threshold (higher = more selective).
Fixture* SmallDocs() {
  static Fixture fx(200, 10, 4096);  // single-record documents
  return &fx;
}
Fixture* LargeDocs() {
  static Fixture fx(40, 200, 512);  // many records per document
  return &fx;
}

std::string Case1Query(int64_t threshold) {
  return "/Catalog/Categories/Product[RegPrice > " +
         std::to_string(threshold) + "]";
}

void BM_Case1_Scan(benchmark::State& state) {
  RunQuery(state, SmallDocs(), Case1Query(state.range(0)),
           ForceMethod::kScan);
}
void BM_Case1_DocIdList(benchmark::State& state) {
  RunQuery(state, SmallDocs(), Case1Query(state.range(0)),
           ForceMethod::kDocIdList);
}
void BM_Case1_NodeIdList(benchmark::State& state) {
  RunQuery(state, SmallDocs(), Case1Query(state.range(0)),
           ForceMethod::kNodeIdList);
}
BENCHMARK(BM_Case1_Scan)->Arg(100)->Arg(400)->Arg(495)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Case1_DocIdList)->Arg(100)->Arg(400)->Arg(495)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Case1_NodeIdList)->Arg(100)->Arg(400)->Arg(495)->Unit(benchmark::kMicrosecond);

// Table 2 case 2: containment index (//Discount) -> filtering + recheck.
void BM_Case2_Scan(benchmark::State& state) {
  RunQuery(state, SmallDocs(),
           "/Catalog/Categories/Product[Discount > 0.45]",
           ForceMethod::kScan);
}
void BM_Case2_Filtering(benchmark::State& state) {
  RunQuery(state, SmallDocs(),
           "/Catalog/Categories/Product[Discount > 0.45]",
           ForceMethod::kDocIdList);
}
BENCHMARK(BM_Case2_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Case2_Filtering)->Unit(benchmark::kMicrosecond);

// Table 2 case 3: ANDing two indexes.
void BM_Case3_Scan(benchmark::State& state) {
  RunQuery(state, SmallDocs(),
           "/Catalog/Categories/Product[RegPrice > 400 and Discount > 0.4]",
           ForceMethod::kScan);
}
void BM_Case3_DocIdAnding(benchmark::State& state) {
  RunQuery(state, SmallDocs(),
           "/Catalog/Categories/Product[RegPrice > 400 and Discount > 0.4]",
           ForceMethod::kDocIdList);
}
void BM_Case3_NodeIdAnding(benchmark::State& state) {
  RunQuery(state, SmallDocs(),
           "/Catalog/Categories/Product[RegPrice > 400 and Discount > 0.4]",
           ForceMethod::kNodeIdList);
}
BENCHMARK(BM_Case3_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Case3_DocIdAnding)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Case3_NodeIdAnding)->Unit(benchmark::kMicrosecond);

// DocID vs NodeID crossover on LARGE documents: fetching whole documents is
// the DocID list's cost; the NodeID list touches only matching subtrees.
void BM_LargeDocs_Scan(benchmark::State& state) {
  RunQuery(state, LargeDocs(), Case1Query(480), ForceMethod::kScan);
}
void BM_LargeDocs_DocIdList(benchmark::State& state) {
  RunQuery(state, LargeDocs(), Case1Query(480), ForceMethod::kDocIdList);
}
void BM_LargeDocs_NodeIdList(benchmark::State& state) {
  RunQuery(state, LargeDocs(), Case1Query(480), ForceMethod::kNodeIdList);
}
BENCHMARK(BM_LargeDocs_Scan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LargeDocs_DocIdList)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LargeDocs_NodeIdList)->Unit(benchmark::kMicrosecond);

// The planner's own choice (kAuto) should track the better method.
void BM_SmallDocs_Auto(benchmark::State& state) {
  RunQuery(state, SmallDocs(), Case1Query(480), ForceMethod::kAuto);
}
void BM_LargeDocs_Auto(benchmark::State& state) {
  RunQuery(state, LargeDocs(), Case1Query(480), ForceMethod::kAuto);
}
BENCHMARK(BM_SmallDocs_Auto)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LargeDocs_Auto)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
