// E1 — Section 3.1's storage cost model.
//
// Paper claim: with p nodes packed per record, storage is about
// k(n + o/p + n_p) instead of k(n + o) for one-node-per-record, and the
// NodeID index needs <= 2k/p entries instead of k. Sweep the record budget
// (the packing-factor knob) and report bytes and entry counts for packed
// storage vs the shredded baseline.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace xdb {
namespace bench {
namespace {

std::string MakeDoc(uint32_t products) {
  Random rng(7);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = products / 4;
  return workload::GenCatalogXml(&rng, opts);
}

void BM_PackedStorage(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  std::string xml = MakeDoc(400);
  NameDictionary dict;

  uint64_t records = 0, nodes = 0, record_bytes = 0, entries = 0;
  for (auto _ : state) {
    StorageStack st;
    records = StorePacked(&st, &dict, 1, xml, budget);
    benchmark::DoNotOptimize(records);
    state.PauseTiming();
    // Count stored nodes and bytes from the record manager.
    nodes = 0;
    record_bytes = 0;
    Status s = st.records->ScanAll([&](Rid, Slice data) -> Status {
      record_bytes += data.size();
      XDB_ASSIGN_OR_RETURN(uint64_t n, CountRecordNodes(data));
      nodes += n;
      return Status::OK();
    });
    if (!s.ok()) std::abort();
    entries = st.tree->ComputeStats().value().entries;
    state.ResumeTiming();
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["p_nodes_per_record"] =
      static_cast<double>(nodes) / static_cast<double>(records);
  state.counters["record_bytes"] = static_cast<double>(record_bytes);
  state.counters["bytes_per_node"] =
      static_cast<double>(record_bytes) / static_cast<double>(nodes);
  state.counters["index_entries"] = static_cast<double>(entries);
  state.counters["entries_per_node"] =
      static_cast<double>(entries) / static_cast<double>(nodes);
}
BENCHMARK(BM_PackedStorage)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_ShreddedStorage(benchmark::State& state) {
  std::string xml = MakeDoc(400);
  NameDictionary dict;
  std::string tokens = ParseToTokens(&dict, xml);

  uint64_t nodes = 0, record_bytes = 0, entries = 0;
  for (auto _ : state) {
    StorageStack st;
    ShreddedStore store(st.records.get(), st.tree.get());
    uint64_t count = 0;
    if (!store.InsertDocument(1, tokens, &count).ok()) std::abort();
    benchmark::DoNotOptimize(count);
    state.PauseTiming();
    nodes = count;
    record_bytes = 0;
    Status s = st.records->ScanAll([&](Rid, Slice data) -> Status {
      record_bytes += data.size();
      return Status::OK();
    });
    if (!s.ok()) std::abort();
    entries = st.tree->ComputeStats().value().entries;
    state.ResumeTiming();
  }
  state.counters["records"] = static_cast<double>(nodes);  // one per node
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["p_nodes_per_record"] = 1.0;
  state.counters["record_bytes"] = static_cast<double>(record_bytes);
  state.counters["bytes_per_node"] =
      static_cast<double>(record_bytes) / static_cast<double>(nodes);
  state.counters["index_entries"] = static_cast<double>(entries);
  state.counters["entries_per_node"] = 1.0;
}
BENCHMARK(BM_ShreddedStorage)->Unit(benchmark::kMillisecond);

// Page-level storage footprint (includes slot/page overhead o of the model).
void BM_PackedPageFootprint(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  std::string xml = MakeDoc(400);
  NameDictionary dict;
  uint64_t pages = 0, index_pages = 0;
  for (auto _ : state) {
    StorageStack st;
    StorePacked(&st, &dict, 1, xml, budget);
    pages = st.records->StorageBytes() / st.bm->page_size();
    auto stats = st.tree->ComputeStats().value();
    index_pages = stats.leaf_pages + stats.internal_pages;
    benchmark::DoNotOptimize(pages);
  }
  state.counters["data_pages"] = static_cast<double>(pages);
  state.counters["index_pages"] = static_cast<double>(index_pages);
  state.counters["total_pages"] = static_cast<double>(pages + index_pages);
}
BENCHMARK(BM_PackedPageFootprint)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ShreddedPageFootprint(benchmark::State& state) {
  std::string xml = MakeDoc(400);
  NameDictionary dict;
  std::string tokens = ParseToTokens(&dict, xml);
  uint64_t pages = 0, index_pages = 0;
  for (auto _ : state) {
    StorageStack st;
    ShreddedStore store(st.records.get(), st.tree.get());
    uint64_t count;
    if (!store.InsertDocument(1, tokens, &count).ok()) std::abort();
    pages = st.records->StorageBytes() / st.bm->page_size();
    auto stats = st.tree->ComputeStats().value();
    index_pages = stats.leaf_pages + stats.internal_pages;
    benchmark::DoNotOptimize(pages);
  }
  state.counters["data_pages"] = static_cast<double>(pages);
  state.counters["index_pages"] = static_cast<double>(index_pages);
  state.counters["total_pages"] = static_cast<double>(pages + index_pages);
}
BENCHMARK(BM_ShreddedPageFootprint)->Unit(benchmark::kMillisecond);

// Checksum overhead on the read path: the same packed store scanned through
// a cold (tiny) buffer pool, so every fetch is a miss that re-reads the page
// — with per-page CRC verification (format v2, arg=1) vs without (legacy v1,
// arg=0). In-memory space, so the delta is pure CRC cost.
void BM_ChecksumReadOverhead(benchmark::State& state) {
  const bool checksums = state.range(0) != 0;
  std::string xml = MakeDoc(400);
  NameDictionary dict;

  TableSpaceOptions opts;
  opts.in_memory = true;
  opts.page_checksums = checksums;
  auto space = TableSpace::Create("", opts).MoveValue();
  uint64_t record_bytes = 0;
  {
    // Build once with a warm pool, then flush so scans hit "disk".
    BufferManager build_bm(space.get(), 4096);
    RecordManager build_records(&build_bm);
    auto tree = BTree::Create(&build_bm).MoveValue();
    NodeIdIndex index(tree.get());
    Parser parser(&dict);
    TokenWriter tokens;
    if (!parser.Parse(xml, &tokens).ok()) std::abort();
    RecordBuilderOptions bopts;
    bopts.record_budget = 1024;
    RecordBuilder builder(bopts);
    Status s =
        builder.Build(tokens.data(), [&](PackedRecordOut&& rec) -> Status {
          XDB_ASSIGN_OR_RETURN(Rid rid, build_records.Insert(rec.bytes));
          return index.AddRecord(1, rec.bytes, rid);
        });
    if (!s.ok() || !build_bm.FlushAll().ok()) std::abort();
  }

  for (auto _ : state) {
    BufferManager bm(space.get(), 8);  // cold pool: every fetch verifies
    RecordManager records(&bm);
    if (!records.Recover().ok()) std::abort();
    record_bytes = 0;
    Status s = records.ScanAll([&](Rid, Slice data) -> Status {
      record_bytes += data.size();
      return Status::OK();
    });
    if (!s.ok()) std::abort();
    benchmark::DoNotOptimize(record_bytes);
  }
  state.counters["format_v"] = checksums ? 2.0 : 1.0;
  state.counters["pages"] = static_cast<double>(space->page_count());
  state.counters["record_bytes"] = static_cast<double>(record_bytes);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(space->page_count()) *
                          space->page_size());
}
BENCHMARK(BM_ChecksumReadOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
