// Structural (pre, post)-interval index payoff and cost.
//
// The read side is the tentpole claim: a descendant-axis query for a rare
// element buried deep in recursive documents, answered by a B+tree interval
// scan (one posting per match, recheck on its subtree) vs re-scanning every
// stored node of every document. The fixture's documents are deep <a>
// spines and only a few carry the <t> payload — the XISS/R regime where
// full scans pay for every spine and the structural scan pays only for the
// documents that match.
//
// The write side prices maintenance: the same inserts with and without a
// covering structural index, so the delta is exactly the per-document
// derive-and-insert of (name, doc, pre) -> (post, level, node) entries.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

constexpr int kDocs = 64;
constexpr int kMatchEvery = 16;  // 4 of the 64 documents contain <t>
constexpr uint32_t kDepth = 48;
constexpr uint32_t kSiblingsPerLevel = 4;

// A deep <a> spine with off-path <x> bulk at every level; every
// kMatchEvery-th document carries a single <t> payload at the bottom. The
// full scan streams every node of every document; the structural scan reads
// one interval of <t> postings and rechecks only the few documents that
// actually match — the selective-descendant regime the index exists for.
std::string DeepDoc(int i) {
  std::string doc;
  for (uint32_t l = 0; l < kDepth; l++) {
    doc += "<a>";
    for (uint32_t s = 0; s < kSiblingsPerLevel; s++)
      doc += "<x>filler" + std::to_string(l) + "." + std::to_string(s) +
             "</x>";
  }
  if (i % kMatchEvery == 0) doc += "<t>payload" + std::to_string(i) + "</t>";
  for (uint32_t l = 0; l < kDepth; l++) doc += "</a>";
  return doc;
}

struct DeepFixture {
  explicit DeepFixture(bool with_structural_index) {
    EngineOptions eopts;
    eopts.in_memory = true;
    eopts.enable_wal = false;
    engine = Engine::Open(eopts).MoveValue();
    coll = engine->CreateCollection("deep").value();
    if (with_structural_index &&
        !coll->CreateStructuralIndex({"structure", ""}).ok())
      std::abort();
    for (int i = 0; i < kDocs; i++)
      if (!coll->InsertDocument(nullptr, DeepDoc(i)).ok()) std::abort();
  }

  std::unique_ptr<Engine> engine;
  Collection* coll = nullptr;
};

void RunDescendantQuery(benchmark::State& state, DeepFixture* fx,
                        ForceMethod force) {
  QueryOptions qopts;
  qopts.force = force;
  uint64_t results = 0;
  for (auto _ : state) {
    auto res = fx->coll->Query(nullptr, "//a//t", qopts);
    if (!res.ok()) std::abort();
    results = res.value().nodes.size();
    if (results != kDocs / kMatchEvery) std::abort();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["docs"] = kDocs;
  state.counters["depth"] = kDepth;
}

// //a//t via full scan: every iteration streams all kDocs documents,
// kDepth + 1 elements each, through QuickXScan.
void BM_DescendantQueryFullScan(benchmark::State& state) {
  static DeepFixture* fx = new DeepFixture(false);
  RunDescendantQuery(state, fx, ForceMethod::kScan);
}
BENCHMARK(BM_DescendantQueryFullScan);

// //a//t via the structural index: one interval scan over the <t> postings
// (kDocs entries), then a per-anchor subtree recheck.
void BM_DescendantQueryStructural(benchmark::State& state) {
  static DeepFixture* fx = new DeepFixture(true);
  RunDescendantQuery(state, fx, ForceMethod::kStructural);
}
BENCHMARK(BM_DescendantQueryStructural);

// The cost-based auto plan on the same fixture; with collected statistics it
// should land on the structural scan by itself (the planner_test crossover
// pins this), so auto ~ structural is the expected read.
void BM_DescendantQueryAutoPlanned(benchmark::State& state) {
  static DeepFixture* fx = new DeepFixture(true);
  RunDescendantQuery(state, fx, ForceMethod::kAuto);
}
BENCHMARK(BM_DescendantQueryAutoPlanned);

// Maintenance overhead: per-document insert cost without / with a covering
// structural index. The delta between the two is the derive + B+tree insert
// work per document (kDepth + 1 entries each).
void RunInsert(benchmark::State& state, bool with_structural_index) {
  EngineOptions eopts;
  eopts.in_memory = true;
  eopts.enable_wal = false;
  auto engine = Engine::Open(eopts).MoveValue();
  Collection* coll = engine->CreateCollection("deep").value();
  if (with_structural_index &&
      !coll->CreateStructuralIndex({"structure", ""}).ok())
    std::abort();
  const std::string doc = DeepDoc(0);
  for (auto _ : state) {
    if (!coll->InsertDocument(nullptr, doc).ok()) std::abort();
  }
  state.counters["entries_per_doc"] =
      with_structural_index ? kDepth * (1 + kSiblingsPerLevel) + 1 : 0;
  state.SetItemsProcessed(state.iterations());
}

void BM_DeepInsertNoIndex(benchmark::State& state) {
  RunInsert(state, false);
}
BENCHMARK(BM_DeepInsertNoIndex);

void BM_DeepInsertStructuralIndex(benchmark::State& state) {
  RunInsert(state, true);
}
BENCHMARK(BM_DeepInsertStructuralIndex);

}  // namespace
}  // namespace bench
}  // namespace xdb
