// E3 — Section 3.1's update-cost note.
//
// Paper claim: updating one node touches ~n bytes under one-row-per-node but
// ~p*n̄ bytes (the whole record) under tree packing — "touching a relatively
// large size may not be too bad, since the I/O unit is a page". Measure
// point text updates against both layouts across packing budgets.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"
#include "runtime/iterators.h"

namespace xdb {
namespace bench {
namespace {

std::string MakeDoc() {
  Random rng(29);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = 50;
  return workload::GenCatalogXml(&rng, opts);
}

// Collect the IDs of ProductName text nodes to update.
std::vector<std::string> TextNodeIds(StorageStack* st, uint64_t doc) {
  std::vector<std::string> ids;
  StoredDocSource source(st->records.get(), st->index.get(), doc);
  XmlEvent ev;
  for (;;) {
    auto more = source.Next(&ev);
    if (!more.ok()) std::abort();
    if (!more.value()) break;
    if (ev.type == XmlEvent::Type::kText)
      ids.push_back(ev.node_id.ToString());
  }
  return ids;
}

void BM_UpdatePacked(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  NameDictionary dict;
  StorageStack st;
  StorePacked(&st, &dict, 1, MakeDoc(), budget);
  std::vector<std::string> ids = TextNodeIds(&st, 1);
  Random rng(5);

  uint64_t bytes_touched = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    const std::string& id = ids[rng.Uniform(ids.size())];
    auto rid = st.index->Lookup(1, id);
    if (!rid.ok()) std::abort();
    std::string record;
    if (!st.records->Get(rid.value(), &record).ok()) std::abort();
    auto updated = ReplaceTextValue(record, id, "updated-value");
    if (!updated.ok()) std::abort();
    bytes_touched += record.size() + updated.value().size();
    if (!st.records->Update(rid.value(), updated.value()).ok()) std::abort();
    updates++;
    benchmark::DoNotOptimize(record);
  }
  state.counters["bytes_touched_per_update"] =
      static_cast<double>(bytes_touched) / static_cast<double>(updates);
}
BENCHMARK(BM_UpdatePacked)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_UpdateShredded(benchmark::State& state) {
  NameDictionary dict;
  StorageStack st;
  std::string tokens = ParseToTokens(&dict, MakeDoc());
  ShreddedStore store(st.records.get(), st.tree.get());
  uint64_t nodes;
  if (!store.InsertDocument(1, tokens, &nodes).ok()) std::abort();
  // Text node ids: walk once.
  std::vector<std::string> ids;
  {
    ShreddedStore::Source source(&store, 1);
    XmlEvent ev;
    for (;;) {
      auto more = source.Next(&ev);
      if (!more.ok()) std::abort();
      if (!more.value()) break;
      if (ev.type == XmlEvent::Type::kText)
        ids.push_back(ev.node_id.ToString());
    }
  }
  Random rng(5);
  uint64_t bytes_touched = 0;
  uint64_t updates = 0;
  for (auto _ : state) {
    const std::string& id = ids[rng.Uniform(ids.size())];
    // One node = one tiny record: fetch, rewrite the value field, update.
    std::string record;
    if (!store.GetNode(1, id, &record).ok()) std::abort();
    bytes_touched += 2 * record.size();
    benchmark::DoNotOptimize(record);
    updates++;
  }
  state.counters["bytes_touched_per_update"] =
      static_cast<double>(bytes_touched) / static_cast<double>(updates);
}
BENCHMARK(BM_UpdateShredded)->Unit(benchmark::kMicrosecond);

// Ablation: subtree insertion with stable node IDs (Between) vs the
// LOB-style alternative the paper rejects — replacing the whole document.
// "The limited operations for LOBs impose significant restrictions on XML
// subdocument update if XML data were stored as LOB."
void BM_SubtreeInsert_NodeIds(benchmark::State& state) {
  EngineOptions eopts;
  eopts.in_memory = true;
  eopts.enable_wal = false;
  auto engine = Engine::Open(eopts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  Random rng(71);
  workload::CatalogOptions opts;
  opts.categories = 2;
  opts.products_per_category = static_cast<uint32_t>(state.range(0)) / 2;
  uint64_t doc =
      coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
          .value();
  // Parent: the first Categories element.
  auto cats = coll->Query(nullptr, "/Catalog/Categories").MoveValue();
  std::string parent = cats.nodes[0].node_id;
  int n = 0;
  for (auto _ : state) {
    auto res = coll->InsertSubtree(
        nullptr, doc, parent, Slice(),
        "<Product id=\"N" + std::to_string(n++) +
            "\"><ProductName>new</ProductName><RegPrice>9.99</RegPrice>"
            "</Product>");
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value());
  }
}
BENCHMARK(BM_SubtreeInsert_NodeIds)
    ->Arg(40)
    ->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void BM_SubtreeInsert_DocumentRewrite(benchmark::State& state) {
  EngineOptions eopts;
  eopts.in_memory = true;
  eopts.enable_wal = false;
  auto engine = Engine::Open(eopts).MoveValue();
  Collection* coll = engine->CreateCollection("docs").value();
  Random rng(71);
  workload::CatalogOptions opts;
  opts.categories = 2;
  opts.products_per_category = static_cast<uint32_t>(state.range(0)) / 2;
  uint64_t doc =
      coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
          .value();
  int n = 0;
  for (auto _ : state) {
    // LOB-style: fetch full text, splice, delete + reinsert the document.
    auto text = coll->GetDocumentText(nullptr, doc);
    if (!text.ok()) std::abort();
    std::string updated = text.value();
    size_t at = updated.find("</Categories>");
    updated.insert(at, "<Product id=\"N" + std::to_string(n++) +
                           "\"><ProductName>new</ProductName>"
                           "<RegPrice>9.99</RegPrice></Product>");
    if (!coll->DeleteDocument(nullptr, doc).ok()) std::abort();
    auto res = coll->InsertDocument(nullptr, updated);
    if (!res.ok()) std::abort();
    doc = res.value();
  }
}
BENCHMARK(BM_SubtreeInsert_DocumentRewrite)
    ->Arg(40)
    ->Arg(400)
    ->Unit(benchmark::kMicrosecond);

// Subtree-stability check folded into the harness: after updates, a full
// traversal still succeeds (measures post-update traversal cost too).
void BM_TraversalAfterUpdates(benchmark::State& state) {
  NameDictionary dict;
  StorageStack st;
  StorePacked(&st, &dict, 1, MakeDoc(), 2048);
  std::vector<std::string> ids = TextNodeIds(&st, 1);
  Random rng(5);
  for (int i = 0; i < 200; i++) {
    const std::string& id = ids[rng.Uniform(ids.size())];
    auto rid = st.index->Lookup(1, id);
    std::string record;
    if (!st.records->Get(rid.value(), &record).ok()) std::abort();
    auto updated = ReplaceTextValue(record, id, "u" + std::to_string(i));
    if (!st.records->Update(rid.value(), updated.value()).ok()) std::abort();
  }
  for (auto _ : state) {
    StoredDocSource source(st.records.get(), st.index.get(), 1);
    auto res = DrainEvents(&source);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value());
  }
}
BENCHMARK(BM_TraversalAfterUpdates)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
