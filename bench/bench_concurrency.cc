// E9/E10 — Section 5: concurrency control.
//
// E9: document-level locking vs multiversioning. "Multiversioning can be
// applied to avoid locking by readers, which is more efficient for mostly
// read workload" — readers under MVCC never wait for the writer's X lock.
// E10: subdocument concurrency via prefix node-ID locks: writers on
// disjoint subtrees proceed in parallel; writers on the same subtree
// serialize.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "engine/engine.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

struct CcFixture {
  explicit CcFixture(bool mvcc) {
    EngineOptions eopts;
    eopts.in_memory = true;
    eopts.enable_wal = false;
    engine = Engine::Open(eopts).MoveValue();
    CollectionOptions copts;
    copts.mvcc = mvcc;
    coll = engine->CreateCollection("docs", copts).value();
    doc = coll->InsertDocument(nullptr,
                               "<a><b>one</b><c>two</c><d>three</d></a>")
              .value();
    auto res = coll->Query(nullptr, "//text()");
    for (auto& n : res.value().nodes) text_ids.push_back(n.node_id);
  }

  std::unique_ptr<Engine> engine;
  Collection* coll;
  uint64_t doc;
  std::vector<std::string> text_ids;
};

// Reader latency while a writer transaction holds its locks mid-update.
// Under kLocking the reader blocks until the writer commits (or the reader
// times out); under kSnapshot the reader proceeds against its snapshot.
void ReadersWithActiveWriter(benchmark::State& state, bool mvcc) {
  CcFixture fx(mvcc);
  // A writer transaction updates and stays open for the whole benchmark.
  Transaction writer = fx.engine->Begin(IsolationMode::kLocking);
  if (!fx.coll->UpdateTextNode(&writer, fx.doc, fx.text_ids[0], "held").ok())
    std::abort();

  uint64_t served = 0, blocked = 0;
  for (auto _ : state) {
    Transaction reader = fx.engine->Begin(mvcc ? IsolationMode::kSnapshot
                                               : IsolationMode::kLocking);
    auto res = fx.coll->GetDocumentText(&reader, fx.doc);
    if (res.ok()) {
      served++;
      benchmark::DoNotOptimize(res.value().size());
    } else {
      blocked++;  // lock timeout under kLocking
    }
    (void)fx.engine->Commit(&reader);
  }
  (void)fx.engine->Commit(&writer);
  state.counters["reads_served"] = static_cast<double>(served);
  state.counters["reads_blocked"] = static_cast<double>(blocked);
}

void BM_ReadersBlockedByWriter_Locking(benchmark::State& state) {
  ReadersWithActiveWriter(state, /*mvcc=*/false);
}
void BM_ReadersUnblocked_Snapshot(benchmark::State& state) {
  ReadersWithActiveWriter(state, /*mvcc=*/true);
}
BENCHMARK(BM_ReadersBlockedByWriter_Locking)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadersUnblocked_Snapshot)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

// Mixed workload throughput: N reader threads + 1 writer thread, write
// fraction controlled by the writer's update cadence.
void MixedWorkload(benchmark::State& state, bool mvcc) {
  CcFixture fx(mvcc);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};

  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Transaction txn = fx.engine->Begin(IsolationMode::kLocking);
      Status st = fx.coll->UpdateTextNode(&txn, fx.doc, fx.text_ids[0],
                                          "w" + std::to_string(i++));
      if (st.ok()) {
        (void)fx.engine->Commit(&txn);
        writes++;
      } else {
        (void)fx.engine->Abort(&txn);
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Transaction txn = fx.engine->Begin(mvcc ? IsolationMode::kSnapshot
                                                : IsolationMode::kLocking);
        auto res = fx.coll->GetDocumentText(&txn, fx.doc);
        if (res.ok()) reads++;
        (void)fx.engine->Commit(&txn);
      }
    });
  }
  for (auto _ : state) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  state.counters["reads"] = static_cast<double>(reads.load());
  state.counters["writes"] = static_cast<double>(writes.load());
  state.counters["reads_per_write"] =
      writes.load() == 0 ? 0.0
                         : static_cast<double>(reads.load()) /
                               static_cast<double>(writes.load());
}

void BM_MixedWorkload_Locking(benchmark::State& state) {
  MixedWorkload(state, false);
}
void BM_MixedWorkload_Snapshot(benchmark::State& state) {
  MixedWorkload(state, true);
}
BENCHMARK(BM_MixedWorkload_Locking)->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedWorkload_Snapshot)->Iterations(3)->Unit(benchmark::kMillisecond);

// E10: concurrent subtree writers — disjoint vs overlapping targets.
void SubtreeWriters(benchmark::State& state, bool disjoint) {
  CcFixture fx(/*mvcc=*/false);
  constexpr int kThreads = 4;
  for (auto _ : state) {
    std::atomic<uint64_t> committed{0};
    std::atomic<uint64_t> conflicts{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        // Disjoint: each thread owns one text node; overlapping: all fight
        // over text node 0.
        const std::string& target =
            fx.text_ids[disjoint ? (t % fx.text_ids.size()) : 0];
        for (int i = 0; i < 25; i++) {
          Transaction txn = fx.engine->Begin(IsolationMode::kLocking);
          Status st =
              fx.coll->UpdateTextNode(&txn, fx.doc, target, "x");
          if (st.ok()) {
            // Hold the subtree lock briefly (a realistic transaction does
            // more than one update) so contention is observable.
            std::this_thread::sleep_for(std::chrono::microseconds(300));
            (void)fx.engine->Commit(&txn);
            committed++;
          } else {
            (void)fx.engine->Abort(&txn);
            conflicts++;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    state.counters["committed"] = static_cast<double>(committed.load());
    state.counters["conflicts"] = static_cast<double>(conflicts.load());
  }
}

void BM_SubtreeWriters_Disjoint(benchmark::State& state) {
  SubtreeWriters(state, true);
}
void BM_SubtreeWriters_Overlapping(benchmark::State& state) {
  SubtreeWriters(state, false);
}
BENCHMARK(BM_SubtreeWriters_Disjoint)->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubtreeWriters_Overlapping)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
