// E12 — Section 3.3: XPath value index build cost and size.
//
// Paper position: "index size should be kept much smaller than data size
// for efficiency, and maintenance of too complex indexes can become a
// bottleneck" — value indexes on selective paths stay a small fraction of
// the data; key generation runs per document via QuickXScan.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/engine.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

std::unique_ptr<Engine> MemEngine() {
  EngineOptions opts;
  opts.in_memory = true;
  opts.enable_wal = false;
  return Engine::Open(opts).MoveValue();
}

// Index maintenance cost folded into inserts: with 0, 1, 2 indexes defined.
void BM_InsertWithIndexes(benchmark::State& state) {
  const int index_count = static_cast<int>(state.range(0));
  Random rng(41);
  workload::CatalogOptions opts;
  opts.categories = 2;
  opts.products_per_category = 20;
  std::vector<std::string> docs;
  for (int i = 0; i < 20; i++)
    docs.push_back(workload::GenCatalogXml(&rng, opts));

  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MemEngine();
    Collection* coll = engine->CreateCollection("c").value();
    if (index_count >= 1) {
      if (!coll->CreateValueIndex({"regprice",
                                   "/Catalog/Categories/Product/RegPrice",
                                   ValueType::kDecimal, 128})
               .ok())
        std::abort();
    }
    if (index_count >= 2) {
      if (!coll->CreateValueIndex(
                   {"name", "/Catalog/Categories/Product/ProductName",
                    ValueType::kString, 64})
               .ok())
        std::abort();
    }
    state.ResumeTiming();
    for (const auto& xml : docs) {
      if (!coll->InsertDocument(nullptr, xml).ok()) std::abort();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs.size()) *
                          state.iterations());
}
BENCHMARK(BM_InsertWithIndexes)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Backfill: CreateValueIndex over an existing corpus.
void BM_IndexBackfill(benchmark::State& state) {
  const uint32_t docs = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MemEngine();
    Collection* coll = engine->CreateCollection("c").value();
    Random rng(43);
    workload::CatalogOptions opts;
    opts.categories = 2;
    opts.products_per_category = 10;
    for (uint32_t i = 0; i < docs; i++) {
      if (!coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
               .ok())
        std::abort();
    }
    state.ResumeTiming();
    if (!coll->CreateValueIndex({"regprice",
                                 "/Catalog/Categories/Product/RegPrice",
                                 ValueType::kDecimal, 128})
             .ok())
      std::abort();
  }
}
BENCHMARK(BM_IndexBackfill)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

// Index size vs data size (the paper's "much smaller than data" position):
// entries and leaf pages for a selective path vs a catch-all path.
void BM_IndexSizeVsDataSize(benchmark::State& state) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("c").value();
  if (!coll->CreateValueIndex({"selective",
                               "/Catalog/Categories/Product/RegPrice",
                               ValueType::kDecimal, 128})
           .ok())
    std::abort();
  if (!coll->CreateValueIndex(
               {"broad", "//*", ValueType::kString, 32})
           .ok()) {
    // //* is (intentionally) rejected as an index path: it would index
    // everything. Fall back to //ProductName for the broad series.
    if (!coll->CreateValueIndex(
                 {"broad", "//ProductName", ValueType::kString, 64})
             .ok())
      std::abort();
  }
  Random rng(47);
  workload::CatalogOptions opts;
  opts.categories = 2;
  opts.products_per_category = 25;
  for (int i = 0; i < 40; i++) {
    if (!coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
             .ok())
      std::abort();
  }
  uint64_t data_bytes = coll->storage_bytes();
  uint64_t sel_entries =
      coll->FindValueIndex("selective")->tree()->ComputeStats().value().entries;
  uint64_t sel_pages = coll->FindValueIndex("selective")
                           ->tree()
                           ->ComputeStats()
                           .value()
                           .leaf_pages;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel_entries);
  }
  state.counters["data_bytes"] = static_cast<double>(data_bytes);
  state.counters["selective_entries"] = static_cast<double>(sel_entries);
  state.counters["selective_leaf_pages"] = static_cast<double>(sel_pages);
  state.counters["index_to_data_ratio"] =
      static_cast<double>(sel_pages * 4096) / static_cast<double>(data_bytes);
}
BENCHMARK(BM_IndexSizeVsDataSize)->Unit(benchmark::kMicrosecond);

// Probe throughput (the payoff side of maintenance cost).
void BM_IndexProbe(benchmark::State& state) {
  auto engine = MemEngine();
  Collection* coll = engine->CreateCollection("c").value();
  if (!coll->CreateValueIndex({"regprice",
                               "/Catalog/Categories/Product/RegPrice",
                               ValueType::kDecimal, 128})
           .ok())
    std::abort();
  Random rng(53);
  workload::CatalogOptions opts;
  opts.categories = 2;
  opts.products_per_category = 25;
  for (int i = 0; i < 40; i++) {
    if (!coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, opts))
             .ok())
      std::abort();
  }
  ValueIndex* idx = coll->FindValueIndex("regprice");
  for (auto _ : state) {
    std::string lo;
    if (!idx->EncodeKey("450", &lo).ok()) std::abort();
    std::vector<Posting> hits;
    if (!idx->Scan(KeyBound{lo, true}, std::nullopt, &hits).ok()) std::abort();
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_IndexProbe)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
