// E4 — Section 3.2, Figure 4: the insertion pipeline.
//
// Paper claims: (a) the buffered token stream avoids the "significant
// overhead of excessive procedure calls" of SAX-style per-event callbacks;
// (b) schema validation via the compiled binary schema adds modest cost on
// top of the non-validating parse; (c) tree construction is streaming
// (packed records straight from tokens — no intermediate DOM).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "schema/validator_vm.h"
#include "xdm/dom_tree.h"

namespace xdb {
namespace bench {
namespace {

std::string MakeDoc(uint32_t products) {
  Random rng(3);
  workload::CatalogOptions opts;
  opts.categories = 4;
  opts.products_per_category = products / 4;
  return workload::GenCatalogXml(&rng, opts);
}

// SAX baseline: produces the *identical* token buffer, but every event
// crosses a virtual-call boundary first — the per-event procedure-call
// overhead the paper's buffered interface removes. In a layered system each
// stage (validation, shredding, loading) would add another such boundary
// per event; the buffered stream pays for materialization once instead.
class MaterializingSax : public SaxHandler {
 public:
  void OnStartDocument() override { w_.StartDocument(); }
  void OnEndDocument() override { w_.EndDocument(); }
  void OnStartElement(NameId local, NameId ns, NameId prefix) override {
    w_.StartElement(local, ns, prefix);
  }
  void OnEndElement() override { w_.EndElement(); }
  void OnAttribute(NameId local, NameId ns, NameId prefix,
                   Slice value) override {
    w_.Attribute(local, value, ns, prefix);
  }
  void OnNamespaceDecl(NameId prefix, NameId uri) override {
    w_.NamespaceDecl(prefix, uri);
  }
  void OnText(Slice value) override { w_.Text(value); }
  void OnComment(Slice value) override { w_.Comment(value); }
  void OnProcessingInstruction(NameId target, Slice data) override {
    w_.ProcessingInstruction(target, data);
  }
  size_t size() const { return w_.size_bytes(); }

 private:
  TokenWriter w_;
};

void BM_ParseToTokenStream(benchmark::State& state) {
  std::string xml = MakeDoc(static_cast<uint32_t>(state.range(0)));
  NameDictionary dict;
  Parser parser(&dict);
  for (auto _ : state) {
    TokenWriter tokens;
    if (!parser.Parse(xml, &tokens).ok()) std::abort();
    // Consume the buffered stream (the cheap part the paper relies on).
    TokenReader reader(tokens.data());
    Token t;
    uint64_t acc = 0;
    for (;;) {
      auto more = reader.Next(&t);
      if (!more.ok()) std::abort();
      if (!more.value()) break;
      acc += t.local + t.text.size();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseToTokenStream)
    ->Arg(40)
    ->Arg(400)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_ParseViaSaxCallbacks(benchmark::State& state) {
  std::string xml = MakeDoc(static_cast<uint32_t>(state.range(0)));
  NameDictionary dict;
  Parser parser(&dict);
  for (auto _ : state) {
    MaterializingSax sax;
    if (!parser.ParseSax(xml, &sax).ok()) std::abort();
    benchmark::DoNotOptimize(sax.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseViaSaxCallbacks)
    ->Arg(40)
    ->Arg(400)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_ValidatingParse(benchmark::State& state) {
  std::string xml = MakeDoc(static_cast<uint32_t>(state.range(0)));
  NameDictionary dict;
  Parser parser(&dict);
  auto schema =
      schema::CompileSchemaText(workload::CatalogSchemaText()).MoveValue();
  for (auto _ : state) {
    TokenWriter tokens, validated;
    if (!parser.Parse(xml, &tokens).ok()) std::abort();
    schema::ValidatorVm vm(&schema, &dict);
    if (!vm.Validate(tokens.data(), &validated).ok()) std::abort();
    benchmark::DoNotOptimize(validated.size_bytes());
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_ValidatingParse)
    ->Arg(40)
    ->Arg(400)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

void BM_SchemaCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto schema = schema::CompileSchemaText(workload::CatalogSchemaText());
    if (!schema.ok()) std::abort();
    benchmark::DoNotOptimize(schema.value().elements().size());
  }
}
BENCHMARK(BM_SchemaCompile)->Unit(benchmark::kMicrosecond);

// Full insertion: parse -> pack -> store -> NodeID index (streaming, no DOM).
void BM_InsertPipeline(benchmark::State& state) {
  std::string xml = MakeDoc(static_cast<uint32_t>(state.range(0)));
  NameDictionary dict;
  uint64_t doc = 0;
  for (auto _ : state) {
    StorageStack st;
    StorePacked(&st, &dict, ++doc, xml, 3000);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_InsertPipeline)
    ->Arg(40)
    ->Arg(400)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

// The "what we avoid" datapoint: building an in-memory DOM first.
void BM_InsertViaDomDetour(benchmark::State& state) {
  std::string xml = MakeDoc(static_cast<uint32_t>(state.range(0)));
  NameDictionary dict;
  Parser parser(&dict);
  for (auto _ : state) {
    TokenWriter tokens;
    if (!parser.Parse(xml, &tokens).ok()) std::abort();
    auto dom = DomTree::FromTokens(tokens.data());
    if (!dom.ok()) std::abort();
    benchmark::DoNotOptimize(dom.value()->node_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_InsertViaDomDetour)
    ->Arg(40)
    ->Arg(400)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
