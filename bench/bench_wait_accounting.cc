// Cost of always-on wait-state attribution.
//
// Three micro shapes price the mechanism itself:
//  - recorded: a span that actually arms (TLS scope installed, sink wired) —
//    two steady_clock reads plus a histogram observe and two relaxed adds;
//  - disarmed: a span with no sink and no scope — one TLS read, no clocks;
//  - disabled: the process-wide kill switch off — the A/B control.
//
// Then the number that gates the feature: the same indexed parallel query
// with accounting enabled vs disabled. The acceptance bar (EXPERIMENTS.md)
// is <= 3% wall-time overhead on the enabled run.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "common/random.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/wait_state.h"
#include "util/workload.h"

namespace xdb {
namespace bench {
namespace {

void BM_WaitSpan_Recorded(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::WaitSink sink;
  sink.Register(&reg);
  obs::WaitStats stats;
  obs::QueryWaitScope scope(&stats);
  for (auto _ : state) {
    obs::WaitSpan span(&sink, obs::WaitState::kLatch);
    span.Finish();
  }
  state.counters["observed"] =
      static_cast<double>(stats.Count(obs::WaitState::kLatch));
}
BENCHMARK(BM_WaitSpan_Recorded);

void BM_WaitSpan_Disarmed(benchmark::State& state) {
  for (auto _ : state) {
    obs::WaitSpan span(nullptr, obs::WaitState::kLatch);
    span.Finish();
  }
}
BENCHMARK(BM_WaitSpan_Disarmed);

void BM_WaitSpan_Disabled(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::WaitSink sink;
  sink.Register(&reg);
  obs::WaitStats stats;
  obs::QueryWaitScope scope(&stats);
  obs::SetWaitAccountingEnabled(false);
  for (auto _ : state) {
    obs::WaitSpan span(&sink, obs::WaitState::kLatch);
    span.Finish();
  }
  obs::SetWaitAccountingEnabled(true);
}
BENCHMARK(BM_WaitSpan_Disabled);

// End-to-end A/B: the bench_parallel_query index-heavy shape, accounting on
// vs off. Both states run the identical query on the identical fixture; the
// only difference is whether the spans crossed (latch per evaluated doc,
// index probe, buffer I/O on any miss) read clocks and feed histograms.
struct QueryFixture {
  QueryFixture() {
    EngineOptions eopts;
    eopts.in_memory = true;
    eopts.enable_wal = false;
    eopts.num_query_threads = 4;
    engine = Engine::Open(eopts).MoveValue();
    coll = engine->CreateCollection("catalog").value();
    if (!coll->CreateValueIndex({"regprice",
                                 "/Catalog/Categories/Product/RegPrice",
                                 ValueType::kDecimal, 128})
             .ok())
      std::abort();
    Random rng(42);
    workload::CatalogOptions gen;
    gen.categories = 4;
    gen.products_per_category = 50;
    for (int i = 0; i < 32; i++) {
      if (!coll->InsertDocument(nullptr, workload::GenCatalogXml(&rng, gen))
               .ok())
        std::abort();
    }
  }
  std::unique_ptr<Engine> engine;
  Collection* coll = nullptr;
};

QueryFixture* Fixture() {
  static QueryFixture* fx = new QueryFixture();
  return fx;
}

void RunIndexedQuery(benchmark::State& state, bool enabled) {
  QueryFixture* fx = Fixture();
  obs::SetWaitAccountingEnabled(enabled);
  QueryOptions qopts;
  qopts.force = query::ForceMethod::kDocIdList;
  qopts.parallelism = 4;
  for (auto _ : state) {
    auto res = fx->coll->Query(
        nullptr, "/Catalog/Categories/Product[RegPrice > 100]/ProductName",
        qopts);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().nodes.size());
  }
  obs::SetWaitAccountingEnabled(true);
  state.counters["accounting"] = enabled ? 1 : 0;
}

void BM_IndexedQuery_AccountingOn(benchmark::State& state) {
  RunIndexedQuery(state, true);
}
BENCHMARK(BM_IndexedQuery_AccountingOn)->Unit(benchmark::kMillisecond);

void BM_IndexedQuery_AccountingOff(benchmark::State& state) {
  RunIndexedQuery(state, false);
}
BENCHMARK(BM_IndexedQuery_AccountingOff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace xdb
